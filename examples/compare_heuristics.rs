//! A miniature of the paper's §5 evaluation: sweep instance sizes,
//! run MaTCH, FastMap-GA and the extra baselines on each, and print the
//! execution-time table with improvement ratios.
//!
//! ```text
//! cargo run --release --example compare_heuristics            # sizes 10..30
//! cargo run --release --example compare_heuristics 10 50 10   # from to step
//! ```

use matchkit::core::Mapper;
use matchkit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (from, to, step) = match args.as_slice() {
        [f, t, s] => (*f, *t, *s),
        [f, t] => (*f, *t, 10),
        _ => (10, 30, 10),
    };
    let sizes: Vec<usize> = (from..=to).step_by(step.max(1)).collect();

    let matcher = Matcher::new(MatchConfig::default());
    let ga = FastMapGa::new(GaConfig {
        population: 200,
        generations: 300,
        ..GaConfig::paper_default()
    });
    let greedy = GreedyMapper;
    let hill = HillClimber::default();
    let sa = SimulatedAnnealing::default();
    let mappers: Vec<&dyn Mapper> = vec![&matcher, &ga, &greedy, &hill, &sa];

    println!(
        "{:<12} {}",
        "ET (units)",
        sizes.iter().map(|s| format!("{s:>10}")).collect::<String>()
    );
    let mut results: Vec<(String, Vec<f64>)> = Vec::new();
    for m in &mappers {
        let mut row = Vec::new();
        for (si, &size) in sizes.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(1000 + si as u64);
            let pair = InstanceGenerator::paper_family(size).generate(&mut rng);
            let inst = MappingInstance::from_pair(&pair);
            let mut run_rng = StdRng::seed_from_u64(9000 + si as u64);
            let out = m.map(&inst, &mut run_rng);
            row.push(out.cost);
        }
        println!(
            "{:<12} {}",
            m.name(),
            row.iter().map(|v| format!("{v:>10.0}")).collect::<String>()
        );
        results.push((m.name().to_string(), row));
    }

    // Improvement ratios relative to MaTCH (row 0), the paper's metric.
    println!();
    let matcher_row = results[0].1.clone();
    for (name, row) in &results[1..] {
        let ratios: String = row
            .iter()
            .zip(&matcher_row)
            .map(|(other, matched)| format!("{:>10.3}", other / matched))
            .collect();
        println!("{:<12} {ratios}", format!("{name}/MaTCH"));
    }
}
