//! The CE method's original trick (§3, Rubinstein 1997): estimating
//! rare-event probabilities where crude Monte Carlo sees nothing.
//!
//! Estimates `P(Σ Xᵢ > γ)` for i.i.d. exponentials at increasingly rare
//! thresholds and compares CE importance sampling, crude Monte Carlo
//! and the closed-form Erlang tail.
//!
//! ```text
//! cargo run --release -p matchkit --example rare_events
//! ```

use matchkit::ce::rare_event::{crude_exp_sum_tail, erlang_tail, estimate_with_seed};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let k = 5; // components
    let rates = vec![1.0; k];
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10} {:>8}",
        "gamma", "exact", "CE estimate", "crude MC", "CE rel.err", "levels"
    );
    for &gamma in &[10.0, 15.0, 20.0, 25.0, 30.0] {
        let exact = erlang_tail(k, 1.0, gamma);
        let est = estimate_with_seed(&rates, gamma, 42);
        let mut rng = StdRng::seed_from_u64(43);
        let crude = crude_exp_sum_tail(&rates, gamma, 20_000, &mut rng);
        println!(
            "{gamma:<8} {exact:>14.3e} {:>14.3e} {:>14.3e} {:>9.1}% {:>8}",
            est.probability,
            crude,
            100.0 * est.relative_error,
            est.levels.len()
        );
    }
    println!(
        "\nCrude MC with 20k samples goes blind around gamma = 20 (l ~ 1e-6);\n\
         the CE estimator keeps tracking the exact tail by tilting the\n\
         sampling rates toward the rare set (the same quantile mechanism\n\
         MaTCH uses to tilt its stochastic matrix toward good mappings)."
    );
}
