//! Convergence curves: the CE quantities the paper describes in §3–§4
//! (elite threshold γ, best sampled cost, matrix entropy) per iteration,
//! next to the GA's best-per-generation curve, plotted in the terminal.
//!
//! ```text
//! cargo run --release -p matchkit --example convergence
//! ```

use matchkit::prelude::*;
use matchkit::viz::LinePlot;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let pair = InstanceGenerator::paper_family(15).generate(&mut rng);
    let inst = MappingInstance::from_pair(&pair);

    let out = Matcher::new(MatchConfig::default()).run(&inst, &mut rng);
    let gammas: Vec<f64> = out.telemetry.iters.iter().map(|s| s.gamma).collect();
    let best = out.telemetry.best_curve();
    let means: Vec<f64> = out.telemetry.iters.iter().map(|s| s.mean).collect();

    let mut plot = LinePlot::new(format!(
        "MaTCH on |V| = 15: cost per CE iteration ({} iterations, stop {:?})",
        out.iterations, out.stop_reason
    ))
    .with_size(72, 18);
    plot.add_series("mean sampled cost", means);
    plot.add_series("elite threshold gamma", gammas);
    plot.add_series("best so far", best);
    println!("{}", plot.render());

    let entropy: Vec<f64> = out.telemetry.iters.iter().map(|s| s.entropy).collect();
    let mut eplot = LinePlot::new("stochastic-matrix mean row entropy (nats)").with_size(72, 10);
    eplot.add_series("entropy", entropy);
    println!("{}", eplot.render());

    // The GA's convergence on the same instance, same evaluation scale.
    let ga = FastMapGa::new(GaConfig {
        population: 200,
        generations: (out.evaluations / 200) as usize,
        ..GaConfig::paper_default()
    })
    .run(&inst, &mut rng);
    let mut gplot = LinePlot::new(format!(
        "FastMap-GA best per generation (equal evaluation budget: {})",
        ga.outcome.evaluations
    ))
    .with_size(72, 12);
    gplot.add_series("GA best", ga.best_per_generation.clone());
    println!("{}", gplot.render());

    println!(
        "final: MaTCH {} vs GA {}  (ratio {:.3})",
        out.cost,
        ga.outcome.cost,
        ga.outcome.cost / out.cost
    );
}
