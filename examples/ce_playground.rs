//! The generic CE framework beyond task mapping: the benchmark COPs of
//! the method's literature (max-cut, bipartition, TSP) and continuous
//! multiextremal optimisation — all driven by the same elite-update
//! loop that powers MaTCH.
//!
//! ```text
//! cargo run --release -p matchkit --example ce_playground
//! ```

use matchkit::ce::problems::bipartition::bipartition;
use matchkit::ce::problems::continuous::{minimize_continuous, rastrigin, rosenbrock};
use matchkit::ce::problems::maxcut::max_cut;
use matchkit::ce::problems::tsp::{solve_tsp, DistanceMatrix};
use matchkit::graph::gen::classic::{grid2d_graph, ring_graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    // Max-cut on an even ring: the optimum takes every edge.
    let ring = ring_graph(12, 1.0, 1.0);
    let cut = max_cut(&ring, 150, &mut rng);
    println!(
        "max-cut C12: weight {} of 12 possible ({} CE iterations)",
        cut.weight, cut.outcome.iterations
    );

    // Balanced bipartition of a 4×6 grid.
    let grid = grid2d_graph(4, 6, 1.0, 1.0);
    let part = bipartition(&grid, 50.0, 250, &mut rng);
    println!(
        "bipartition 4x6 grid: cut {} (imbalance {}), optimal balanced cut is 4",
        part.cut, part.imbalance
    );

    // TSP on a 16-city circle: optimal tour = polygon perimeter.
    let n = 16;
    let points: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            (a.cos(), a.sin())
        })
        .collect();
    let dm = DistanceMatrix::euclidean(&points);
    let optimal = dm.tour_length(&(0..n).collect::<Vec<_>>());
    let tsp = solve_tsp(&dm, None, &mut rng);
    println!(
        "TSP 16-city circle: CE tour {:.4} vs optimal {:.4} ({} iterations)",
        tsp.length, optimal, tsp.outcome.iterations
    );

    // Continuous: Rosenbrock valley and the multimodal Rastrigin.
    let rb = minimize_continuous(2, 2.0, 200, 400, &mut rng, rosenbrock);
    println!(
        "Rosenbrock 2-D: f = {:.5} at ({:.3}, {:.3}) [optimum 0 at (1, 1)]",
        rb.best_cost, rb.best_sample[0], rb.best_sample[1]
    );
    let ra = minimize_continuous(4, 2.0, 300, 300, &mut rng, rastrigin);
    println!(
        "Rastrigin 4-D: f = {:.4} [optimum 0; >1 means trapped in a local minimum]",
        ra.best_cost
    );
}
