//! Watch MaTCH's stochastic matrix converge (the paper's Figure 3):
//! starts uniform (`p_ij = 1/|V_r|`), develops per-task biases, and ends
//! degenerate — one resource per task with probability ~1.
//!
//! ```text
//! cargo run --release --example matrix_evolution        # n = 10 (paper)
//! cargo run --release --example matrix_evolution 16     # custom size
//! ```

use matchkit::core::{MappingInstance, MatchConfig, Matcher};
use matchkit::graph::gen::InstanceGenerator;
use matchkit::viz::render_heatmap;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let mut rng = StdRng::seed_from_u64(3);
    let pair = InstanceGenerator::paper_family(n).generate(&mut rng);
    let inst = MappingInstance::from_pair(&pair);

    let cfg = MatchConfig {
        snapshot_every: Some(1),
        ..MatchConfig::default()
    };
    let out = Matcher::new(cfg).run(&inst, &mut rng);

    println!(
        "MaTCH on |V| = {n}: {} iterations, stop = {:?}, best ET = {:.0}\n",
        out.iterations, out.stop_reason, out.cost
    );

    // Show six evenly spaced snapshots, like the paper's panel.
    let snaps = &out.snapshots;
    let panels = 6.min(snaps.len());
    for k in 0..panels {
        let idx = if panels == 1 {
            0
        } else {
            k * (snaps.len() - 1) / (panels - 1)
        };
        let snap = &snaps[idx];
        println!(
            "{}",
            render_heatmap(
                snap.matrix.data(),
                snap.matrix.rows(),
                snap.matrix.cols(),
                &format!(
                    "iteration {:>3}: mean row entropy {:.3} nats (uniform = {:.3})",
                    snap.iter,
                    snap.matrix.mean_entropy(),
                    (n as f64).ln()
                ),
            )
        );
    }
    println!(
        "final modal assignment (task -> resource): {:?}",
        out.snapshots.last().unwrap().matrix.mode_assignment()
    );
}
