//! The paper's motivating workload (§2, Figure 1): an overset-grid CFD
//! application. Regularly shaped grids cover the domain around an
//! irregular 3-D body and overlap in space; each grid is a task (weight =
//! grid points) and each overlap an interaction (weight = overlapping
//! points).
//!
//! This example generates such a domain geometrically, maps it with
//! MaTCH and the baselines, and then *executes* 10 solver iterations of
//! the best mapping in the discrete-event simulator — including the more
//! realistic blocking-receive mode the analytic model ignores.
//!
//! ```text
//! cargo run --release --example overset_cfd
//! ```

use matchkit::core::Mapper;
use matchkit::graph::gen::overset::OversetConfig;
use matchkit::graph::gen::paper::PaperFamilyConfig;
use matchkit::prelude::*;
use matchkit::sim::SimMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Build the overset domain: 16 grids along a random body curve.
    let cfg = OversetConfig::new(16);
    let domain = cfg.generate_domain(&mut rng);
    println!(
        "overset domain: {} grids, {} overlaps",
        domain.blocks.len(),
        domain.tig.all_interactions().count()
    );
    for (i, b) in domain.blocks.iter().take(4).enumerate() {
        println!(
            "  grid {i}: corner ({:.2}, {:.2}, {:.2}), {:.0} grid points",
            b.min[0],
            b.min[1],
            b.min[2],
            domain.tig.computation(i)
        );
    }
    println!(
        "  ... computation/communication ratio: {:.4}",
        domain.tig.comp_comm_ratio()
    );

    // 2. A heterogeneous 16-site computational grid to run it on.
    let platform = PaperFamilyConfig::new(16).generate_platform(&mut rng);
    let inst = MappingInstance::new(&domain.tig, &platform);

    // 3. Map with MaTCH and every baseline.
    let matcher = Matcher::new(MatchConfig::default());
    let ga = FastMapGa::new(GaConfig {
        population: 200,
        generations: 300,
        ..GaConfig::paper_default()
    });
    let greedy = GreedyMapper;
    let hill = HillClimber::default();
    let random = RandomSearch::new(10_000);
    let mappers: Vec<&dyn Mapper> = vec![&matcher, &ga, &greedy, &hill, &random];

    println!(
        "\n{:<12} {:>12} {:>10} {:>12}",
        "heuristic", "ET (units)", "MT", "evaluations"
    );
    let mut best: Option<(String, matchkit::core::Mapping, f64)> = None;
    for m in mappers {
        let out = m.map(&inst, &mut rng);
        println!(
            "{:<12} {:>12.0} {:>9.2?} {:>12}",
            m.name(),
            out.cost,
            out.elapsed,
            out.evaluations
        );
        if best.as_ref().is_none_or(|(_, _, c)| out.cost < *c) {
            best = Some((m.name().to_string(), out.mapping, out.cost));
        }
    }
    let (name, mapping, et) = best.expect("mappers ran");
    println!("\nbest mapping: {name} at ET = {et:.0}");

    // 4. Execute 10 CFD iterations of the best mapping.
    for mode in [
        SimMode::PaperSerial,
        SimMode::BlockingReceives,
        SimMode::LinkContention,
    ] {
        let sim = Simulator::new(
            &inst,
            SimConfig {
                rounds: 10,
                mode,
                trace: false,
            },
        );
        let rep = sim.run(&mapping);
        println!(
            "simulated 10 rounds ({mode:?}): makespan {:.0} units, mean utilisation {:.1}%",
            rep.makespan,
            100.0 * rep.mean_utilization()
        );
    }

    // 5. Timeline of one round (compute = solid, transfers = shaded).
    use matchkit::sim::engine::ItemKind;
    use matchkit::viz::{render_gantt, GanttSpan};
    let rep = Simulator::new(
        &inst,
        SimConfig {
            rounds: 1,
            mode: SimMode::PaperSerial,
            trace: true,
        },
    )
    .run(&mapping);
    let spans: Vec<GanttSpan> = rep
        .trace
        .as_ref()
        .unwrap()
        .iter()
        .map(|e| GanttSpan {
            row: e.resource,
            start: e.start,
            end: e.end,
            class: match e.kind {
                ItemKind::Compute { .. } => 0,
                ItemKind::Transfer { .. } => 1,
            },
        })
        .collect();
    println!(
        "\n{}",
        render_gantt(
            &spans,
            inst.n_resources(),
            70,
            None,
            "one solver round per resource (compute = solid, send = shaded)",
        )
    );
}
