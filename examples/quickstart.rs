//! Quickstart: generate a paper-style instance, map it with MaTCH,
//! compare against the GA baseline, and print both mappings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use matchkit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic 12-task / 12-resource instance from the paper's
    //    §5.2 family (TIG node weights 1–10, edge weights 50–100;
    //    platform node weights 1–5, link weights 10–20).
    let mut rng = StdRng::seed_from_u64(42);
    let pair = InstanceGenerator::paper_family(12).generate(&mut rng);
    let inst = MappingInstance::from_pair(&pair);
    println!(
        "instance: {} tasks ({} interactions), {} resources",
        inst.n_tasks(),
        pair.tig.all_interactions().count(),
        inst.n_resources()
    );

    // 2. Map with MaTCH (CE over GenPerm, N = 2|V|², rho = 0.1, zeta = 0.3).
    let matched = Matcher::new(MatchConfig::default()).run(&inst, &mut rng);
    println!(
        "\nMaTCH : ET = {:.0} units in {} CE iterations ({} evaluations, {:.2?}, stop: {:?})",
        matched.cost, matched.iterations, matched.evaluations, matched.elapsed, matched.stop_reason,
    );
    println!(
        "        mapping (task -> resource): {:?}",
        matched.mapping.as_slice()
    );

    // 3. Map with the FastMap-GA baseline (population 500, 1000
    //    generations, crossover 0.85, mutation 0.07, elitism).
    let ga = FastMapGa::new(GaConfig::paper_default()).run(&inst, &mut rng);
    println!(
        "\nFastMap-GA: ET = {:.0} units in {} generations ({} evaluations, {:.2?})",
        ga.outcome.cost, ga.outcome.iterations, ga.outcome.evaluations, ga.outcome.elapsed,
    );
    println!(
        "        mapping (task -> resource): {:?}",
        ga.outcome.mapping.as_slice()
    );

    // 4. The paper's headline metric.
    println!(
        "\nimprovement factor ET_GA / ET_MaTCH = {:.3}",
        ga.outcome.cost / matched.cost
    );

    // 5. Cross-check the analytic cost model by actually executing the
    //    mapped application in the discrete-event simulator.
    let sim = Simulator::new(&inst, SimConfig::default());
    let report = sim.run(&matched.mapping);
    println!(
        "simulated makespan of the MaTCH mapping: {:.0} units (analytic Eq. 2: {:.0})",
        report.makespan, matched.cost
    );
}
