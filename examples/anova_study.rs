//! A scaled-down rendition of the paper's Table 3: run MaTCH and two
//! FastMap-GA configurations repeatedly on one 10-node instance, then
//! compute descriptive statistics and a one-way ANOVA with the built-in
//! statistics crate.
//!
//! ```text
//! cargo run --release --example anova_study          # 10 runs each
//! cargo run --release --example anova_study 30       # paper's 30 runs
//! ```

use matchkit::core::Mapper;
use matchkit::prelude::*;
use matchkit::stats::{mean_confidence_interval, one_way_anova, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    let mut rng = StdRng::seed_from_u64(2005);
    let pair = InstanceGenerator::paper_family(10).generate(&mut rng);
    let inst = MappingInstance::from_pair(&pair);

    let matcher = Matcher::default();
    // Budgets scaled to example runtimes; use the table3_anova binary
    // for the paper-scale 100/10000 and 1000/1000 arms.
    let ga_long = FastMapGa::new(GaConfig {
        population: 100,
        generations: 1000,
        ..Default::default()
    });
    let ga_wide = FastMapGa::new(GaConfig {
        population: 500,
        generations: 200,
        ..Default::default()
    });
    let arms: Vec<(&str, &dyn Mapper)> = vec![
        ("MaTCH", &matcher),
        ("GA 100/1000", &ga_long),
        ("GA 500/200", &ga_wide),
    ];

    let mut groups: Vec<(String, Vec<f64>)> = Vec::new();
    for (ai, (name, mapper)) in arms.iter().enumerate() {
        let mut samples = Vec::with_capacity(runs);
        for run in 0..runs {
            let mut rng = StdRng::seed_from_u64(77_000 + (ai * 1000 + run) as u64);
            samples.push(mapper.map(&inst, &mut rng).cost);
        }
        groups.push((name.to_string(), samples));
    }

    println!(
        "{:<14} {:>10} {:>22} {:>9} {:>10}",
        "heuristic", "mean ET", "95% CI", "std dev", "median"
    );
    for (name, xs) in &groups {
        let s = Summary::of(xs);
        let ci = mean_confidence_interval(xs, 0.95).expect("runs >= 2");
        println!(
            "{name:<14} {:>10.0} {:>22} {:>9.1} {:>10.0}",
            s.mean,
            format!("{:.0} - {:.0}", ci.lo, ci.hi),
            s.std_dev,
            s.median
        );
    }

    let slices: Vec<&[f64]> = groups.iter().map(|(_, xs)| xs.as_slice()).collect();
    let anova = one_way_anova(&slices).expect("three groups");
    println!(
        "\nANOVA: F({}, {}) = {:.1}, p = {}",
        anova.df_between,
        anova.df_within,
        anova.f_statistic,
        if anova.p_value < 0.0001 {
            "< 0.0001".to_string()
        } else {
            format!("{:.4}", anova.p_value)
        }
    );
    println!(
        "null hypothesis (all heuristics equal) {} at alpha = 0.01",
        if anova.significant_at(0.01) {
            "REJECTED"
        } else {
            "not rejected"
        }
    );
}
