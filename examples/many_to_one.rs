//! The many-to-one generalisation the paper sketches in §4 ("a few
//! simple modifications … will in effect take care of other cases"):
//! mapping more tasks than resources. MaTCH switches from the GenPerm
//! permutation model to independent categorical rows; the cost model
//! (Eq. 1–2) is unchanged — co-located tasks simply stop paying
//! communication.
//!
//! ```text
//! cargo run --release --example many_to_one
//! ```

use matchkit::core::Mapper;
use matchkit::graph::gen::paper::PaperFamilyConfig;
use matchkit::graph::InstancePair;
use matchkit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // 24 tasks onto 6 resources.
    let tig = PaperFamilyConfig::new(24).generate_tig(&mut rng);
    let resources = PaperFamilyConfig::new(6).generate_platform(&mut rng);
    let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
    println!(
        "instance: {} tasks onto {} resources (many-to-one)",
        inst.n_tasks(),
        inst.n_resources()
    );

    // MaTCH, generalised.
    let out = Matcher::new(MatchConfig::default()).run_many_to_one(&inst, &mut rng);
    println!(
        "\nMaTCH (assignment model): ET = {:.0} in {} iterations ({:?})",
        out.cost, out.iterations, out.stop_reason
    );
    for s in 0..inst.n_resources() {
        let tasks = out.mapping.tasks_on(s);
        println!("  resource {s}: {} tasks {:?}", tasks.len(), tasks);
    }

    // Baselines that handle rectangular instances, including the
    // hierarchical FastMap scheme (cluster, then GA on the coarse graph).
    println!();
    let fastmap = matchkit::baselines::FastMapScheme::new(FastMapGa::new(GaConfig {
        population: 100,
        generations: 200,
        ..GaConfig::paper_default()
    }));
    for m in [
        &RandomSearch::new(20_000) as &dyn Mapper,
        &fastmap,
        &GreedyMapper,
        &HillClimber::default(),
        &SimulatedAnnealing::default(),
    ] {
        let b = m.map(&inst, &mut rng);
        println!(
            "{:<12} ET = {:>8.0}   (ratio vs MaTCH: {:.3})",
            m.name(),
            b.cost,
            b.cost / out.cost
        );
    }
}
