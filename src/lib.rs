//! `matchkit` — a facade crate re-exporting the whole MaTCH reproduction.
//!
//! This workspace reproduces *"MaTCH: Mapping Data-Parallel Tasks on a
//! Heterogeneous Computing Platform Using the Cross-Entropy Heuristic"*
//! (Sanyal & Das, 2005). Downstream users depend on this crate and get:
//!
//! * [`graph`] — task-interaction graphs (TIGs), resource graphs and
//!   synthetic generators (including the paper's workload family).
//! * [`core`] — the MaTCH cross-entropy mapping heuristic itself.
//! * [`ga`] — the FastMap-GA baseline the paper compares against.
//! * [`multilevel`] — the coarsen–solve–refine driver that scales the
//!   heuristics past the paper's n ≈ 50 sampling wall.
//! * [`baselines`] — further comparators (greedy, hill climbing, SA, …).
//! * [`ce`] — the generic cross-entropy optimisation framework.
//! * [`sim`] — a discrete-event simulator executing mapped applications
//!   (serial, blocking-receive and link-contention models).
//! * [`stats`] — ANOVA / Welch t-tests / confidence intervals used in
//!   the evaluation.
//! * [`verify`] — the differential / metamorphic / golden-trajectory
//!   correctness harness behind `matchctl verify`.
//! * [`metrics`] — live service metrics: sharded atomic registries,
//!   Prometheus text exposition, and the telemetry→metrics bridge.
//! * [`par`], [`rngutil`], [`viz`] — supporting substrates.
//! * [`cli`] — the `matchctl` command-line front end.
//!
//! ```
//! use matchkit::prelude::*;
//! use rand::SeedableRng;
//!
//! // Generate a small paper-style instance and map it with MaTCH.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let pair = InstanceGenerator::paper_family(8).generate(&mut rng);
//! let inst = MappingInstance::from_pair(&pair);
//! let outcome = Matcher::new(MatchConfig::default()).run(&inst, &mut rng);
//! assert!(outcome.cost > 0.0);
//! assert!(outcome.mapping.is_permutation());
//! ```

#![forbid(unsafe_code)]

pub use match_baselines as baselines;
pub use match_ce as ce;
pub use match_core as core;
pub use match_ga as ga;
pub use match_graph as graph;
pub use match_metrics as metrics;
pub use match_multilevel as multilevel;
pub use match_par as par;
pub use match_rngutil as rngutil;
pub use match_sim as sim;
pub use match_stats as stats;
pub use match_verify as verify;
pub use match_viz as viz;

pub use match_cli as cli;

/// The most common imports, in one place.
pub mod prelude {
    pub use match_baselines::{GreedyMapper, HillClimber, RandomSearch, SimulatedAnnealing};
    pub use match_core::{
        CostModel, IslandConfig, IslandMatcher, Mapper, MapperOutcome, Mapping, MappingInstance,
        MatchConfig, Matcher, SamplerMode,
    };
    pub use match_ga::{FastMapGa, GaConfig};
    pub use match_graph::{gen::InstanceGenerator, Graph, ResourceGraph, TaskGraph};
    pub use match_multilevel::{CoarseSolver, MultilevelConfig, MultilevelMapper};
    pub use match_sim::{SimConfig, Simulator};
}
