#!/bin/bash
# Regenerates every table and figure of the paper (MATCH_BENCH_PROFILE
# controls scale: paper | quick). Logs land in results/.
set -u
cd "$(dirname "$0")"
mkdir -p results
BIN=target/release
for exp in table1_et table2_mt fig9_atn table3_anova fig3_matrix ablations scaling_fit sim_modes family_sensitivity many_to_one_sweep; do
  echo "=== $exp start $(date +%T) ==="
  $BIN/$exp > results/${exp}_stdout.txt 2> results/${exp}_stderr.txt
  echo "=== $exp done $(date +%T) rc=$? ==="
done
echo ALL_EXPERIMENTS_DONE
