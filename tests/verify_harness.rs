//! The verification harness, driven through the `matchkit` facade: the
//! smoke corpus must come up green end to end, and the report must
//! carry all three pillars.

use matchkit::verify::{self, CorpusKind, Pillar, VerifyOptions};

fn tmp_fixture_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "matchkit-verify-harness-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    dir
}

#[test]
fn smoke_corpus_is_green_across_all_three_pillars() {
    let dir = tmp_fixture_dir("green");
    let base = VerifyOptions {
        corpus: CorpusKind::Smoke,
        fixtures_dir: Some(dir.clone()),
        update_golden: true,
        master_seed: verify::DEFAULT_MASTER_SEED,
    };
    // First pass writes the golden fixtures, second pass checks them.
    let wrote = verify::run_verify(&base);
    assert!(wrote.passed(), "{}", wrote.render());

    let report = verify::run_verify(&VerifyOptions {
        update_golden: false,
        ..base
    });
    assert!(report.passed(), "{}", report.render());

    for pillar in [Pillar::Differential, Pillar::Metamorphic, Pillar::Golden] {
        assert!(
            report.checks.iter().any(|c| c.pillar == pillar),
            "report is missing the {pillar} pillar:\n{}",
            report.render()
        );
    }
    assert!(
        report.checks.len() >= 12,
        "expected the full check battery, got {}",
        report.checks.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_fixture_is_caught_and_named() {
    let dir = tmp_fixture_dir("tamper");
    let opts = VerifyOptions {
        corpus: CorpusKind::Smoke,
        fixtures_dir: Some(dir.clone()),
        update_golden: true,
        master_seed: verify::DEFAULT_MASTER_SEED,
    };
    assert!(verify::run_verify(&opts).passed());

    // Flip the final cost of one committed trajectory.
    let victim = dir.join("ce-sequential-n8.trace");
    let text = std::fs::read_to_string(&victim).expect("read fixture");
    let tampered: Vec<String> = text
        .lines()
        .map(|l| {
            if l.starts_with("final ") {
                "final 0000000000000000 0".to_string()
            } else {
                l.to_string()
            }
        })
        .collect();
    std::fs::write(&victim, tampered.join("\n") + "\n").expect("write tampered fixture");

    let report = verify::run_verify(&VerifyOptions {
        update_golden: false,
        ..opts
    });
    assert!(!report.passed(), "tampered fixture must fail");
    let rendered = report.render();
    assert!(
        rendered.contains("ce-sequential-n8"),
        "failure must name the fixture:\n{rendered}"
    );
    assert!(
        rendered.contains("--update-golden"),
        "failure must explain how to regenerate:\n{rendered}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
