//! Reproducibility guarantees: every stochastic component in the
//! workspace is a pure function of its seed.

use matchkit::core::Mapper;
use matchkit::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(n: usize, seed: u64) -> MappingInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
}

#[test]
fn generators_are_seed_deterministic() {
    for n in [5, 10, 20] {
        let a = InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(1));
        let b = InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(a.tig, b.tig);
        assert_eq!(a.resources, b.resources);
        let c = InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(2));
        assert!(a.tig != c.tig || a.resources != c.resources);
    }
}

#[test]
fn all_mappers_are_seed_deterministic() {
    let inst = instance(10, 3);
    let matcher = Matcher::default();
    let ga = FastMapGa::new(GaConfig {
        population: 40,
        generations: 40,
        ..GaConfig::paper_default()
    });
    let rs = RandomSearch::new(50);
    let hill = HillClimber::new(2, 50_000);
    let sa = SimulatedAnnealing::new(10_000, 0.999);
    let greedy = GreedyMapper;
    let mappers: Vec<&dyn Mapper> = vec![&matcher, &ga, &rs, &hill, &sa, &greedy];
    for m in mappers {
        let a = m.map(&inst, &mut StdRng::seed_from_u64(77));
        let b = m.map(&inst, &mut StdRng::seed_from_u64(77));
        assert_eq!(a.mapping, b.mapping, "{} not deterministic", m.name());
        assert_eq!(a.cost, b.cost, "{} cost differs", m.name());
        assert_eq!(a.evaluations, b.evaluations, "{} evals differ", m.name());
    }
}

#[test]
fn matcher_thread_count_does_not_change_results() {
    // Sequential sampling mode: parallel evaluation must be
    // bit-identical to sequential — sampling stays on the driver thread
    // and evaluation is pure.
    let inst = instance(12, 4);
    let outs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            Matcher::new(MatchConfig {
                threads,
                sampler: SamplerMode::Sequential,
                ..MatchConfig::default()
            })
            .run(&inst, &mut StdRng::seed_from_u64(5))
        })
        .collect();
    assert_eq!(outs[0].mapping, outs[1].mapping);
    assert_eq!(outs[1].mapping, outs[2].mapping);
    assert_eq!(outs[0].cost, outs[2].cost);
    assert_eq!(outs[0].iterations, outs[2].iterations);
}

#[test]
fn batched_matcher_thread_count_does_not_change_results() {
    // Batched (fused sample+evaluate) mode: each sample draws from an
    // RNG derived from a per-iteration seed, so the entire outcome —
    // mapping, cost, iteration count, per-iteration telemetry — is
    // bit-identical across thread counts, including threads = 1.
    let inst = instance(12, 4);
    let outs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            Matcher::new(MatchConfig {
                threads,
                sampler: SamplerMode::Batched,
                ..MatchConfig::default()
            })
            .run(&inst, &mut StdRng::seed_from_u64(5))
        })
        .collect();
    assert_eq!(outs[0].mapping, outs[1].mapping);
    assert_eq!(outs[1].mapping, outs[2].mapping);
    assert_eq!(outs[0].cost, outs[2].cost);
    assert_eq!(outs[0].iterations, outs[2].iterations);
    assert_eq!(outs[0].telemetry.iters, outs[1].telemetry.iters);
    assert_eq!(outs[1].telemetry.iters, outs[2].telemetry.iters);
    assert!(outs[0].mapping.is_permutation());
}

#[test]
fn simulator_is_deterministic() {
    let inst = instance(9, 6);
    let mapping = matchkit::core::Mapping::identity(9);
    let run = || {
        Simulator::new(
            &inst,
            SimConfig {
                rounds: 4,
                mode: matchkit::sim::SimMode::BlockingReceives,
                trace: true,
            },
        )
        .run(&mapping)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.busy, b.busy);
    assert_eq!(a.trace.unwrap(), b.trace.unwrap());
}

#[test]
fn seed_sequences_isolate_components() {
    // Drawing more runs for one heuristic must not disturb another's
    // stream: the harness derives independent child sequences.
    use matchkit::rngutil::SeedSequence;
    let root = SeedSequence::new(99);
    let mut a1 = root.child(1);
    let before: Vec<u64> = (0..5).map(|_| a1.next_seed()).collect();
    // "Interleave" heavy use of another child.
    let mut b = root.child(2);
    for _ in 0..1000 {
        b.next_seed();
    }
    let mut a2 = root.child(1);
    let after: Vec<u64> = (0..5).map(|_| a2.next_seed()).collect();
    assert_eq!(before, after);
}
