//! Cross-crate property-based tests (proptest) on the core invariants.

use matchkit::ce::CeModel;
use matchkit::core::{exec_per_resource, exec_time, IncrementalCost, MappingInstance};
use matchkit::graph::gen::paper::PaperFamilyConfig;
use matchkit::rngutil::perm::is_permutation;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(n: usize, seed: u64) -> MappingInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    MappingInstance::from_pair(&PaperFamilyConfig::new(n).generate(&mut rng))
}

/// A permutation strategy of fixed size derived from a seed.
fn perm_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    any::<u64>().prop_map(move |seed| {
        matchkit::rngutil::random_permutation(n, &mut StdRng::seed_from_u64(seed))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 2 is the max of Eq. 1, and all loads are non-negative.
    #[test]
    fn exec_time_is_max_of_loads(seed in 0u64..500, perm in perm_strategy(11)) {
        let inst = instance(11, seed);
        let loads = exec_per_resource(&inst, &perm);
        prop_assert!(loads.iter().all(|&l| l >= 0.0));
        let max = loads.iter().copied().fold(0.0, f64::max);
        prop_assert_eq!(exec_time(&inst, &perm), max);
    }

    /// The cost is invariant under relabeling-neutral operations:
    /// evaluating twice gives the same value (purity), and the
    /// incremental tracker agrees with the full recompute after any
    /// random walk of swaps.
    #[test]
    fn incremental_agrees_after_random_walks(
        seed in 0u64..200,
        swaps in proptest::collection::vec((0usize..10, 0usize..10), 1..40),
    ) {
        let inst = instance(10, seed);
        let start = matchkit::rngutil::random_permutation(10, &mut StdRng::seed_from_u64(seed));
        let mut inc = IncrementalCost::new(&inst, start);
        for (a, b) in swaps {
            inc.apply_swap(a, b);
        }
        prop_assert!(is_permutation(inc.assign()));
        let full = exec_time(&inst, inc.assign());
        prop_assert!((inc.cost() - full).abs() <= 1e-9 * (1.0 + full));
    }

    /// Co-locating any pair of interacting tasks never increases the
    /// total communication volume charged (monotonicity of the model in
    /// co-location) — verified via the all-on-one-resource lower bound
    /// on communication.
    #[test]
    fn colocated_mapping_has_no_communication(seed in 0u64..200, res in 0usize..8) {
        let inst = instance(8, seed);
        let all_same = vec![res; 8];
        let loads = exec_per_resource(&inst, &all_same);
        let pure_compute: f64 = (0..8)
            .map(|t| inst.computation(t) * inst.processing_cost(res))
            .sum();
        prop_assert!((loads[res] - pure_compute).abs() < 1e-9);
        for (s, &l) in loads.iter().enumerate() {
            if s != res {
                prop_assert_eq!(l, 0.0);
            }
        }
    }

    /// GenPerm samples are always permutations, whatever the matrix.
    #[test]
    fn genperm_always_permutation(rows in proptest::collection::vec(
        proptest::collection::vec(0.0f64..1.0, 7), 7), seed in any::<u64>()) {
        let data: Vec<f64> = rows.into_iter().flatten().collect();
        let m = matchkit::ce::StochasticMatrix::from_rows(7, 7, data);
        let model = matchkit::ce::PermutationModel::from_matrix(m);
        let s = model.sample(&mut StdRng::seed_from_u64(seed));
        prop_assert!(is_permutation(&s));
    }

    /// Elite updates keep the matrix row-stochastic.
    #[test]
    fn updates_preserve_stochasticity(
        elites in proptest::collection::vec(perm_strategy(6), 1..10),
        zeta in 0.0f64..=1.0,
    ) {
        let mut model = matchkit::ce::PermutationModel::uniform(6);
        model.update_from_elites(&elites, zeta);
        for i in 0..6 {
            let sum: f64 = model.matrix().row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {} sums to {}", i, sum);
            prop_assert!(model.matrix().row(i).iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }

    /// The simulator's paper mode equals the analytic model for
    /// arbitrary permutations (the central cross-validation, fuzzed).
    #[test]
    fn simulator_matches_analytic(seed in 0u64..100, perm in perm_strategy(9)) {
        let inst = instance(9, seed);
        let mapping = matchkit::core::Mapping::new(perm);
        let rep = matchkit::sim::Simulator::new(&inst, matchkit::sim::SimConfig::default())
            .run(&mapping);
        let analytic = exec_time(&inst, mapping.as_slice());
        prop_assert!((rep.makespan - analytic).abs() <= 1e-9 * (1.0 + analytic));
    }

    /// The provable lower bounds hold for every mapping.
    #[test]
    fn lower_bounds_hold(seed in 0u64..100, perm in perm_strategy(10)) {
        let inst = instance(10, seed);
        let et = exec_time(&inst, &perm);
        let lb = matchkit::core::lower_bound(&inst);
        let blb = matchkit::core::bijective_lower_bound(&inst);
        prop_assert!(blb >= lb - 1e-9);
        prop_assert!(et >= blb - 1e-9, "ET {} below bijective bound {}", et, blb);
    }

    /// Quality analysis is internally consistent for any mapping.
    #[test]
    fn quality_analysis_consistent(seed in 0u64..100, perm in perm_strategy(8)) {
        let inst = instance(8, seed);
        let q = matchkit::core::analyze(&inst, &perm);
        prop_assert_eq!(q.makespan, exec_time(&inst, &perm));
        prop_assert!(q.imbalance >= 1.0 - 1e-12);
        prop_assert!((0.0..=1.0).contains(&q.comm_fraction_bottleneck));
        prop_assert!(q.total_compute >= 0.0 && q.total_comm >= 0.0);
        let total = q.total_compute + q.total_comm;
        prop_assert!((q.mean_load * 8.0 - total).abs() <= 1e-6 * (1.0 + total));
    }

    /// TIG clustering always yields dense ids within the requested
    /// count, and coarsening conserves computation weight.
    #[test]
    fn clustering_invariants(seed in 0u64..100, k in 1usize..12) {
        use matchkit::baselines::{cluster_tig, coarsen_tig};
        let mut rng = StdRng::seed_from_u64(seed);
        let tig = PaperFamilyConfig::new(12).generate_tig(&mut rng);
        let cluster = cluster_tig(&tig, k, 2.0);
        prop_assert_eq!(cluster.len(), 12);
        let kk = cluster.iter().copied().max().unwrap() + 1;
        prop_assert!(kk <= k.min(12));
        for id in 0..kk {
            prop_assert!(cluster.contains(&id));
        }
        let coarse = coarsen_tig(&tig, &cluster, kk);
        prop_assert!((coarse.total_computation() - tig.total_computation()).abs() < 1e-9);
        prop_assert!(coarse.total_comm_volume() <= tig.total_comm_volume() + 1e-9);
    }
}
