//! End-to-end integration tests: the full pipeline from instance
//! generation through mapping to simulated execution, across crates.

use matchkit::core::Mapper;
use matchkit::prelude::*;
use matchkit::sim::SimMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(n: usize, seed: u64) -> MappingInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
}

#[test]
fn matcher_beats_every_trivial_baseline() {
    let inst = instance(14, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let matched = Matcher::default().map(&inst, &mut rng);

    let round_robin = matchkit::baselines::RoundRobin.map(&inst, &mut rng);
    let single_random = RandomSearch::new(1).map(&inst, &mut rng);
    assert!(matched.cost < round_robin.cost, "vs round-robin");
    assert!(matched.cost < single_random.cost, "vs one random draw");
}

#[test]
fn matcher_competitive_with_all_heuristics() {
    // MaTCH need not win every contest, but it must land within a small
    // factor of the best heuristic in the workspace on a paper instance.
    let inst = instance(12, 3);
    let matcher = Matcher::default();
    let ga = FastMapGa::new(GaConfig {
        population: 200,
        generations: 200,
        ..GaConfig::paper_default()
    });
    let hill = HillClimber::default();
    let sa = SimulatedAnnealing::default();
    let greedy = GreedyMapper;
    let mappers: Vec<&dyn Mapper> = vec![&matcher, &ga, &hill, &sa, &greedy];
    let mut costs = Vec::new();
    for (i, m) in mappers.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        costs.push((m.name().to_string(), m.map(&inst, &mut rng).cost));
    }
    let best = costs.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
    let matcher_cost = costs[0].1;
    assert!(
        matcher_cost <= 1.10 * best,
        "MaTCH {matcher_cost} vs best {best} ({costs:?})"
    );
}

#[test]
fn every_mapper_yields_simulatable_mappings() {
    let inst = instance(10, 5);
    let matcher = Matcher::default();
    let ga = FastMapGa::new(GaConfig {
        population: 50,
        generations: 50,
        ..GaConfig::paper_default()
    });
    let rs = RandomSearch::new(100);
    let rr = matchkit::baselines::RoundRobin;
    let greedy = GreedyMapper;
    let hill = HillClimber::new(2, 100_000);
    let sa = SimulatedAnnealing::new(20_000, 0.9995);
    let mappers: Vec<&dyn Mapper> = vec![&matcher, &ga, &rs, &rr, &greedy, &hill, &sa];
    for (i, m) in mappers.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(200 + i as u64);
        let out = m.map(&inst, &mut rng);
        out.mapping.validate(&inst).unwrap_or_else(|e| {
            panic!("{} produced invalid mapping: {e}", m.name());
        });
        // Simulated single-round makespan equals the analytic ET for
        // every heuristic's mapping (PaperSerial mode).
        let rep = Simulator::new(&inst, SimConfig::default()).run(&out.mapping);
        assert!(
            (rep.makespan - out.cost).abs() <= 1e-9 * (1.0 + out.cost),
            "{}: simulated {} vs analytic {}",
            m.name(),
            rep.makespan,
            out.cost
        );
    }
}

#[test]
fn blocking_simulation_bounds_analytic_model() {
    let inst = instance(10, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let out = Matcher::default().map(&inst, &mut rng);
    let rounds = 6;
    let serial = Simulator::new(
        &inst,
        SimConfig {
            rounds,
            mode: SimMode::PaperSerial,
            trace: false,
        },
    )
    .run(&out.mapping);
    let blocking = Simulator::new(
        &inst,
        SimConfig {
            rounds,
            mode: SimMode::BlockingReceives,
            trace: false,
        },
    )
    .run(&out.mapping);
    assert!((serial.makespan - rounds as f64 * out.cost).abs() <= 1e-6 * serial.makespan);
    assert!(blocking.makespan >= serial.makespan - 1e-9);
}

#[test]
fn overset_workload_end_to_end() {
    use matchkit::graph::gen::overset::OversetConfig;
    use matchkit::graph::gen::paper::PaperFamilyConfig;
    let mut rng = StdRng::seed_from_u64(9);
    let domain = OversetConfig::new(12).generate_domain(&mut rng);
    let platform = PaperFamilyConfig::new(12).generate_platform(&mut rng);
    let inst = MappingInstance::new(&domain.tig, &platform);
    let out = Matcher::default().run(&inst, &mut rng);
    assert!(out.mapping.is_permutation());
    assert!(out.cost > 0.0 && out.cost.is_finite());
    let rep = Simulator::new(
        &inst,
        SimConfig {
            rounds: 3,
            ..Default::default()
        },
    )
    .run(&out.mapping);
    assert!(rep.makespan > 0.0);
    assert!(rep.mean_utilization() > 0.0 && rep.mean_utilization() <= 1.0);
}

#[test]
fn graph_io_roundtrip_preserves_costs() {
    use matchkit::graph::io::{from_text, to_text};
    let mut rng = StdRng::seed_from_u64(10);
    let pair = InstanceGenerator::paper_family(9).generate(&mut rng);
    // Round-trip the TIG through the text format and rebuild the
    // instance; every mapping must cost the same.
    let tig2 =
        matchkit::graph::TaskGraph::new(from_text(&to_text(pair.tig.graph())).unwrap()).unwrap();
    let inst1 = MappingInstance::new(&pair.tig, &pair.resources);
    let inst2 = MappingInstance::new(&tig2, &pair.resources);
    for seed in 0..10 {
        let mut r = StdRng::seed_from_u64(seed);
        let assign = matchkit::rngutil::random_permutation(9, &mut r);
        assert_eq!(
            matchkit::core::exec_time(&inst1, &assign),
            matchkit::core::exec_time(&inst2, &assign)
        );
    }
}
