//! End-to-end daemon tests over a real TCP socket: concurrency across
//! solver kinds, result-cache hits, admission-control backpressure,
//! deadline cancellation, drain-on-shutdown, and trace reporting.

use match_serve::{
    Client, RemapRequest, Request, Response, ServeConfig, Server, ServerHandle, SolveRequest,
};

/// The paper-family instance for `(n, seed)`, in wire (text) format.
fn instance_text(n: usize, seed: u64) -> (String, String) {
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::io::to_text;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = PaperFamilyConfig::new(n).generate(&mut rng);
    (to_text(pair.tig.graph()), to_text(pair.resources.graph()))
}

fn start(workers: usize, queue_cap: usize, cache_cap: usize) -> ServerHandle {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        cache_cap,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn solve(id: &str, algo: &str, seed: u64, tig: &str, platform: &str) -> Request {
    Request::Solve(SolveRequest {
        id: id.to_string(),
        algo: algo.to_string(),
        seed,
        deadline_ms: None,
        backend: None,
        tig: tig.to_string(),
        platform: platform.to_string(),
    })
}

fn expect_solved(resp: Response) -> match_serve::SolveResponse {
    match resp {
        Response::Solved(r) => r,
        other => panic!("expected Solved, got {other:?}"),
    }
}

#[test]
fn concurrent_requests_across_solver_kinds() {
    let handle = start(4, 64, 64);
    let addr = handle.local_addr();
    let (tig, platform) = instance_text(8, 1);

    // 8 concurrent clients across 4 solver kinds, distinct seeds.
    let algos = ["greedy", "hill", "sa", "roundrobin"];
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let algo = algos[i % algos.len()].to_string();
            let (tig, platform) = (tig.clone(), platform.clone());
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let id = format!("c{i}");
                let resp = client
                    .call(&solve(&id, &algo, 100 + i as u64, &tig, &platform))
                    .expect("call");
                let r = expect_solved(resp);
                assert_eq!(r.id, id);
                assert_eq!(r.mapping.len(), 8);
                assert!(r.cost.is_finite() && r.cost > 0.0);
                r
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let stats = handle.stats();
    assert_eq!(stats.jobs, 8);
    assert_eq!(stats.rejected, 0);
    let summary = handle.shutdown().expect("shutdown");
    assert_eq!(summary.stats.jobs, 8);
}

#[test]
fn backend_choice_is_bit_neutral_and_cache_agnostic() {
    // The evaluation backends are bit-exact, so the daemon keys its
    // result cache on (instance, algo, seed) only: a `simd` solve and a
    // `scalar` resubmission of the same job must return the identical
    // mapping, with the second one served from the cache.
    let handle = start(2, 16, 16);
    let (tig, platform) = instance_text(16, 3);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let with_backend = |id: &str, backend: Option<&str>| {
        Request::Solve(SolveRequest {
            id: id.to_string(),
            algo: "match".to_string(),
            seed: 11,
            deadline_ms: None,
            backend: backend.map(str::to_string),
            tig: tig.clone(),
            platform: platform.clone(),
        })
    };

    let simd = expect_solved(client.call(&with_backend("s", Some("simd"))).expect("simd"));
    assert!(!simd.cached);
    assert_eq!(simd.backend, "simd", "response must echo the backend");

    let scalar = expect_solved(
        client
            .call(&with_backend("c", Some("scalar")))
            .expect("scalar"),
    );
    assert!(scalar.cached, "cache key must ignore the backend");
    assert_eq!(
        scalar.backend, "scalar",
        "hit echoes the *requested* backend"
    );
    assert_eq!(scalar.mapping, simd.mapping);
    assert_eq!(scalar.cost.to_bits(), simd.cost.to_bits());

    let auto = expect_solved(client.call(&with_backend("a", None)).expect("auto"));
    assert!(auto.cached);
    assert_eq!(auto.backend, "auto", "omitted backend defaults to auto");
    assert_eq!(auto.mapping, simd.mapping);

    // Unknown backends are rejected at admission, before any solver work.
    match client
        .call(&with_backend("bad", Some("avx512")))
        .expect("bad")
    {
        Response::Error { id, error } => {
            assert_eq!(id, "bad");
            assert!(error.contains("unknown backend"), "{error}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    handle.shutdown().expect("shutdown");
}

#[test]
fn cache_hit_returns_byte_identical_mapping() {
    let handle = start(2, 16, 16);
    let (tig, platform) = instance_text(7, 2);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let first = expect_solved(
        client
            .call(&solve("a", "hill", 9, &tig, &platform))
            .expect("first"),
    );
    assert!(!first.cached);
    let second = expect_solved(
        client
            .call(&solve("b", "hill", 9, &tig, &platform))
            .expect("second"),
    );
    assert!(second.cached, "identical resubmission must hit the cache");
    assert_eq!(second.mapping, first.mapping, "cache must echo the mapping");
    assert_eq!(second.cost, first.cost);
    assert_eq!(second.evaluations, 0, "a hit does no solver work");

    // A different seed is a different job: miss, possibly different map.
    let third = expect_solved(
        client
            .call(&solve("c", "hill", 10, &tig, &platform))
            .expect("third"),
    );
    assert!(!third.cached);

    let stats = handle.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 2));
    handle.shutdown().expect("shutdown");
}

#[test]
fn per_seed_determinism_without_cache() {
    // cache_cap = 0 disables the cache, so both runs actually solve.
    let handle = start(2, 16, 0);
    let (tig, platform) = instance_text(7, 3);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let a = expect_solved(
        client
            .call(&solve("a", "sa", 42, &tig, &platform))
            .expect("a"),
    );
    let b = expect_solved(
        client
            .call(&solve("b", "sa", 42, &tig, &platform))
            .expect("b"),
    );
    assert!(!a.cached && !b.cached);
    assert_eq!(a.mapping, b.mapping, "same seed, same mapping");
    assert_eq!(a.cost, b.cost);
    let c = expect_solved(
        client
            .call(&solve("c", "sa", 43, &tig, &platform))
            .expect("c"),
    );
    assert!(!c.cached);
    // (Different seeds may legitimately coincide in the optimum; only
    // check the cost is still a valid finite objective.)
    assert!(c.cost.is_finite());
    handle.shutdown().expect("shutdown");
}

#[test]
fn backpressure_rejects_when_queue_full() {
    // One worker, queue of one: a slow blocker occupies the worker, a
    // second job fills the queue, the rest must be rejected.
    let handle = start(1, 1, 0);
    let (tig, platform) = instance_text(10, 4);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Pipeline the blocker plus a burst without reading responses.
    let n_burst = 8;
    for i in 0..=n_burst {
        client
            .send(&solve(&format!("j{i}"), "sa", i, &tig, &platform))
            .expect("send");
    }
    let mut solved = 0;
    let mut rejected = 0;
    for _ in 0..=n_burst {
        match client.recv().expect("recv") {
            Response::Solved(_) => solved += 1,
            Response::Rejected {
                queue_depth,
                queue_cap,
                ..
            } => {
                assert_eq!(queue_cap, 1);
                assert!(queue_depth >= 1);
                rejected += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(rejected >= 1, "burst past the queue bound must see 429s");
    assert!(solved >= 1, "admitted work still completes");
    assert_eq!(solved + rejected, n_burst + 1);
    let stats = handle.stats();
    assert_eq!(stats.rejected, rejected);
    handle.shutdown().expect("shutdown");
}

#[test]
fn deadline_cancellation_returns_partial_result() {
    let handle = start(1, 4, 16);
    let (tig, platform) = instance_text(10, 5);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let req = Request::Solve(SolveRequest {
        id: "dl".into(),
        algo: "sa".into(),
        seed: 6,
        deadline_ms: Some(0), // already expired at dequeue
        backend: None,
        tig: tig.clone(),
        platform: platform.clone(),
    });
    let r = expect_solved(client.call(&req).expect("call"));
    assert!(r.cancelled, "an expired deadline must be reported");
    assert_eq!(r.mapping.len(), 10, "best-so-far mapping still returned");
    assert!(r.cost.is_finite());

    // Cancelled results are not cached: resubmitting solves again.
    let r2 = expect_solved(client.call(&req).expect("recall"));
    assert!(!r2.cached);
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 2);
    assert_eq!(stats.cache_hits, 0);
    handle.shutdown().expect("shutdown");
}

#[test]
fn shutdown_drains_admitted_work() {
    let handle = start(2, 16, 0);
    let (tig, platform) = instance_text(9, 6);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let n = 6;
    for i in 0..n {
        client
            .send(&solve(&format!("d{i}"), "sa", i, &tig, &platform))
            .expect("send");
    }
    // Request shutdown immediately: everything admitted must still be
    // answered before the daemon exits.
    client.send(&Request::Shutdown).expect("send shutdown");
    let mut solved = 0;
    let mut bye = false;
    for _ in 0..=n {
        match client.recv().expect("recv during drain") {
            Response::Solved(r) => {
                assert!(!r.mapping.is_empty());
                solved += 1;
            }
            Response::Bye => bye = true,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(bye, "shutdown must be acknowledged");
    assert_eq!(solved, n, "every admitted job is drained");
    let summary = handle.wait().expect("wait");
    assert_eq!(summary.stats.jobs, n);
}

#[test]
fn bad_requests_get_protocol_errors_not_hangups() {
    let handle = start(1, 4, 4);
    let (tig, platform) = instance_text(6, 7);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Unknown algorithm.
    let resp = client
        .call(&solve("x", "quantum", 1, &tig, &platform))
        .expect("call");
    match resp {
        Response::Error { id, error } => {
            assert_eq!(id, "x");
            assert!(error.contains("unknown algorithm"), "{error}");
            assert!(error.contains("greedy"), "lists known algos: {error}");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // Unparseable instance.
    let resp = client
        .call(&solve("y", "greedy", 1, "not a graph", &platform))
        .expect("call");
    assert!(matches!(resp, Response::Error { .. }));

    // Rectangular instance for a permutation solver.
    let (tig10, _) = instance_text(10, 8);
    let resp = client
        .call(&solve("z", "match", 1, &tig10, &platform))
        .expect("call");
    match resp {
        Response::Error { error, .. } => assert!(error.contains("square"), "{error}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // The connection is still usable afterwards.
    let r = expect_solved(
        client
            .call(&solve("ok", "greedy", 1, &tig, &platform))
            .expect("call"),
    );
    assert_eq!(r.id, "ok");
    handle.shutdown().expect("shutdown");
}

#[test]
fn malformed_jsonl_line_gets_an_error_and_keeps_the_connection() {
    use match_serve::{encode_request_line, parse_response};
    use std::io::{BufRead, BufReader, Write};

    let handle = start(1, 4, 4);
    let (tig, platform) = instance_text(6, 11);

    // Talk to the daemon over a raw socket so we can violate the
    // protocol: the first line is not JSON at all.
    let stream = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(b"this is not a protocol line{{{\n")
        .expect("write garbage");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error reply");
    match parse_response(line.trim()).expect("error reply parses") {
        Response::Error { id, error } => {
            assert_eq!(id, "", "no request id is attributable to garbage");
            assert!(!error.is_empty());
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // The same connection must still serve a well-formed request.
    // encode_request_line is newline-terminated, ready for the wire.
    let req = solve("after-garbage", "greedy", 1, &tig, &platform);
    let wire = encode_request_line(&req);
    assert!(wire.ends_with('\n'), "line encoder must frame the request");
    writer.write_all(wire.as_bytes()).expect("write valid");
    line.clear();
    reader.read_line(&mut line).expect("read solve reply");
    let r = expect_solved(parse_response(line.trim()).expect("reply parses"));
    assert_eq!(r.id, "after-garbage");
    assert_eq!(r.mapping.len(), 6);
    handle.shutdown().expect("shutdown");
}

#[test]
fn deadline_fires_mid_solve_and_result_is_not_cached() {
    // One worker, a long-running GA job (paper config: population 500,
    // 1000 generations — far beyond the deadline), and a deadline that
    // expires after the solve has started: the daemon must return the
    // best-so-far mapping, flag it cancelled, and *not* cache it.
    let handle = start(1, 4, 16);
    let (tig, platform) = instance_text(12, 12);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let req = Request::Solve(SolveRequest {
        id: "mid".into(),
        algo: "ga".into(),
        seed: 3,
        deadline_ms: Some(10),
        backend: None,
        tig: tig.clone(),
        platform: platform.clone(),
    });
    let r = expect_solved(client.call(&req).expect("call"));
    assert!(r.cancelled, "deadline must truncate the GA run");
    assert!(
        r.evaluations > 0,
        "the solve started before the deadline fired"
    );
    assert!(
        r.iterations < 1000,
        "a cancelled run cannot have finished all generations"
    );
    assert_eq!(r.mapping.len(), 12, "best-so-far mapping still returned");
    assert!(r.cost.is_finite());

    // Resubmission must miss the cache (cancelled results are partial).
    let r2 = expect_solved(client.call(&req).expect("recall"));
    assert!(!r2.cached);
    assert!(r2.cancelled);
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 2);
    assert_eq!((stats.cache_hits, stats.cache_misses), (0, 2));
    handle.shutdown().expect("shutdown");
}

#[test]
fn cache_eviction_follows_lru_order() {
    // cache_cap = 2 and three distinct jobs A, B, C (same instance and
    // algorithm, different seeds). Refreshing A before inserting C must
    // evict B, not A.
    let handle = start(1, 8, 2);
    let (tig, platform) = instance_text(6, 13);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let mut submit = |id: &str, seed: u64| {
        expect_solved(
            client
                .call(&solve(id, "greedy", seed, &tig, &platform))
                .expect("call"),
        )
    };

    assert!(!submit("a1", 1).cached); // miss: cache {A}
    assert!(!submit("b1", 2).cached); // miss: cache {A, B}
    assert!(submit("a2", 1).cached); // hit, refreshes A: B is now LRU
    assert!(!submit("c1", 3).cached); // miss, evicts B: cache {A, C}
    assert!(submit("a3", 1).cached, "A must have survived the eviction");
    assert!(
        !submit("b2", 2).cached,
        "B was the least recently used entry and must have been evicted"
    );

    let stats = handle.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (2, 4));
    assert_eq!(stats.jobs, 6);
    handle.shutdown().expect("shutdown");
}

/// Pull the value of an unlabelled series out of exposition text, or
/// the sum over all label sets when the name is labelled.
fn series_value(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (series, value) = l.rsplit_once(' ')?;
            let base = series.split('{').next().unwrap_or(series);
            (base == name && !series.contains("quantile=")).then(|| value.parse::<f64>().ok())?
        })
        .sum()
}

#[test]
fn metrics_op_reports_live_series() {
    let handle = start(2, 8, 8);
    let (tig, platform) = instance_text(7, 21);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Two distinct solves plus one repeat: 3 jobs, 1 hit, 2 misses.
    for (id, seed) in [("m1", 1u64), ("m2", 2), ("m3", 1)] {
        expect_solved(
            client
                .call(&solve(id, "hill", seed, &tig, &platform))
                .expect("call"),
        );
    }
    // The worker marks the job not-in-flight just *after* sending the
    // response, so poll until the gauge settles instead of racing it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let text = loop {
        let text = match client.metrics().expect("metrics op") {
            Response::Metrics { text } => text,
            other => panic!("expected Metrics, got {other:?}"),
        };
        if series_value(&text, "match_serve_in_flight") == 0.0 {
            break text;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "in_flight never settled:\n{text}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };

    assert_eq!(series_value(&text, "match_serve_jobs_total"), 3.0, "{text}");
    assert_eq!(series_value(&text, "match_serve_cache_hits_total"), 1.0);
    assert_eq!(series_value(&text, "match_serve_cache_misses_total"), 2.0);
    assert!(series_value(&text, "match_serve_requests_total") >= 4.0);
    assert_eq!(series_value(&text, "match_serve_queue_wait_ns_count"), 3.0);
    // Per-algo latency summary: count matches jobs, p50 <= p99.
    assert!(
        text.contains("match_serve_solve_latency_ns{algo=\"hill\",shard=\"0\",quantile=\"0.5\"}"),
        "{text}"
    );
    assert_eq!(
        series_value(&text, "match_serve_solve_latency_ns_count"),
        3.0
    );
    // Solver-side series bridged through the recorder seam.
    assert!(
        series_value(&text, "match_solver_evaluations_total") > 0.0,
        "bridged solver evaluations missing:\n{text}"
    );
    handle.shutdown().expect("shutdown");
}

#[test]
fn multilevel_solve_carries_trace_id_and_labelled_series() {
    // n = 64 exceeds the default coarsen target (48), so the daemon-side
    // multilevel solver actually coarsens, solves coarse, and refines.
    let handle = start(2, 8, 8);
    let (tig, platform) = instance_text(64, 31);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let r = expect_solved(
        client
            .call(&solve("ml", "multilevel", 5, &tig, &platform))
            .expect("call"),
    );
    assert_eq!(r.algo, "multilevel");
    assert!(r.trace_id.starts_with("ml#"), "{}", r.trace_id);
    assert!(r.cost.is_finite() && r.cost > 0.0);
    assert!(r.evaluations > 0);
    // Square instance: the mapping must be a permutation.
    let mut seen = [false; 64];
    for &s in &r.mapping {
        assert!(!seen[s], "duplicate resource {s} in multilevel mapping");
        seen[s] = true;
    }
    // The telemetry→metrics bridge labels solver series by algo.
    let text = match client.metrics().expect("metrics op") {
        Response::Metrics { text } => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    assert!(
        text.contains("match_solver_iterations_total{algo=\"multilevel\",backend=\"auto\"}"),
        "{text}"
    );
    assert!(
        text.contains("match_solver_evaluations_total{algo=\"multilevel\",backend=\"auto\"}"),
        "{text}"
    );
    assert!(series_value(&text, "match_solver_evaluations_total") > 0.0);
    handle.shutdown().expect("shutdown");
}

#[test]
fn remap_op_reports_migrations_and_labelled_series() {
    let handle = start(2, 8, 8);
    let (tig, platform) = instance_text(12, 51);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Cold solve first: its mapping becomes the remap's prior.
    let base = expect_solved(
        client
            .call(&solve("base", "match", 5, &tig, &platform))
            .expect("base solve"),
    );
    assert!(!base.cached && base.mapping.len() == 12);
    assert_eq!(base.migrated_tasks, 0, "plain solves carry no prior");

    // Mutate the instance — bump one task's computation weight — and
    // submit a remap carrying the prior mapping.
    let mutated = tig
        .lines()
        .map(|l| {
            if l.starts_with("node 0 ") {
                "node 0 99".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_ne!(mutated, tig, "the mutation must change the instance");
    let remap = |id: &str, algo: &str, prior: Vec<usize>| {
        Request::Remap(RemapRequest {
            solve: SolveRequest {
                id: id.to_string(),
                algo: algo.to_string(),
                seed: 6,
                deadline_ms: None,
                backend: None,
                tig: mutated.clone(),
                platform: platform.clone(),
            },
            prior,
            mu: 1,
        })
    };
    let r = expect_solved(
        client
            .call(&remap("re", "match", base.mapping.clone()))
            .expect("remap"),
    );
    assert_eq!(r.id, "re");
    assert!(r.warm, "a valid prior must warm-start the re-map");
    assert!(!r.cached, "remap results never enter the cache");
    assert!(r.cost.is_finite() && r.cost > 0.0);
    // The mapping stays a permutation and migrated_tasks is exactly the
    // Hamming distance from the submitted prior.
    let mut seen = [false; 12];
    for &s in &r.mapping {
        assert!(!seen[s], "duplicate resource {s} in remap mapping");
        seen[s] = true;
    }
    let moved = r
        .mapping
        .iter()
        .zip(&base.mapping)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(r.migrated_tasks as usize, moved);

    // Solver series split out by op="remap"; the request counter too.
    let text = match client.metrics().expect("metrics") {
        Response::Metrics { text } => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    assert!(
        text.contains(
            "match_solver_iterations_total{algo=\"match\",backend=\"auto\",op=\"remap\"}"
        ),
        "{text}"
    );
    assert!(
        text.contains(
            "match_solver_evaluations_total{algo=\"match\",backend=\"auto\",op=\"remap\"}"
        ),
        "{text}"
    );
    assert!(
        text.contains("match_serve_requests_total{op=\"remap\",shard=\"0\"} 1"),
        "{text}"
    );

    // Remap is CE-family only, and the prior must match the instance.
    match client
        .call(&remap("bad-algo", "hill", base.mapping.clone()))
        .expect("bad algo")
    {
        Response::Error { id, error } => {
            assert_eq!(id, "bad-algo");
            assert!(error.contains("CE-family"), "{error}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    match client
        .call(&remap("bad-prior", "match", vec![0, 1, 2]))
        .expect("bad prior")
    {
        Response::Error { id, error } => {
            assert_eq!(id, "bad-prior");
            assert!(error.contains("3 entries"), "{error}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    handle.shutdown().expect("shutdown");
}

#[test]
fn http_side_port_serves_prometheus_scrape() {
    let handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        cache_cap: 8,
        metrics_addr: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    })
    .expect("start");
    let metrics_addr = handle.metrics_addr().expect("side port bound");
    let (tig, platform) = instance_text(6, 22);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    expect_solved(
        client
            .call(&solve("h1", "greedy", 1, &tig, &platform))
            .expect("call"),
    );

    let body = match_serve::http_get(&metrics_addr.to_string(), "/metrics").expect("scrape");
    assert!(
        body.contains("# TYPE match_serve_jobs_total counter"),
        "{body}"
    );
    assert_eq!(series_value(&body, "match_serve_jobs_total"), 1.0);
    assert!(body
        .contains("match_serve_solve_latency_ns{algo=\"greedy\",shard=\"0\",quantile=\"0.99\"}"));

    // Scrapes are repeatable and consistent with the JSONL view.
    let again = match_serve::http_get(&metrics_addr.to_string(), "/metrics").expect("rescrape");
    assert_eq!(
        series_value(&again, "match_serve_jobs_total"),
        1.0,
        "scraping must not perturb counters"
    );
    match client.metrics().expect("metrics op") {
        Response::Metrics { text } => {
            assert_eq!(
                series_value(&text, "match_serve_jobs_total"),
                series_value(&again, "match_serve_jobs_total")
            );
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    // Unknown routes are refused without wedging the scrape thread.
    assert!(match_serve::http_get(&metrics_addr.to_string(), "/nope").is_err());
    let after = match_serve::http_get(&metrics_addr.to_string(), "/metrics").expect("survives");
    assert!(!after.is_empty());
    handle.shutdown().expect("shutdown");
}

#[test]
fn trace_ids_name_request_scoped_spans() {
    use match_telemetry::{read_trace_file, Event};
    let dir = std::env::temp_dir().join(format!(
        "match-serve-traceid-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let trace = dir.join("serve.jsonl");
    let handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        cache_cap: 8,
        trace: Some(trace.clone()),
        ..ServeConfig::default()
    })
    .expect("start");
    let (tig, platform) = instance_text(6, 23);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let r1 = expect_solved(
        client
            .call(&solve("alpha", "greedy", 1, &tig, &platform))
            .expect("a"),
    );
    let r2 = expect_solved(
        client
            .call(&solve("beta", "greedy", 2, &tig, &platform))
            .expect("b"),
    );
    assert!(r1.trace_id.starts_with("alpha#"), "{}", r1.trace_id);
    assert!(r2.trace_id.starts_with("beta#"), "{}", r2.trace_id);
    assert_ne!(r1.trace_id, r2.trace_id);
    handle.shutdown().expect("shutdown");

    // Each response's trace_id names exactly its own span pair.
    let events = read_trace_file(&trace).expect("trace parses");
    for tid in [&r1.trace_id, &r2.trace_id] {
        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) if s.name.starts_with(&format!("req:{tid}:")) => {
                    Some(s.name.to_string())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            vec![format!("req:{tid}:queue_wait"), format!("req:{tid}:solve")],
            "request {tid} must own one queue_wait + one solve span"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn trace_run_summarises() {
    use match_telemetry::{read_trace_file, Event, TraceSummary};
    let dir = std::env::temp_dir().join(format!(
        "match-serve-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let trace = dir.join("serve.jsonl");
    let handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        cache_cap: 8,
        trace: Some(trace.clone()),
        ..ServeConfig::default()
    })
    .expect("start");
    let (tig, platform) = instance_text(7, 9);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for (i, algo) in ["greedy", "hill", "greedy"].iter().enumerate() {
        // The third request repeats the first: one cache hit in trace.
        let r = expect_solved(
            client
                .call(&solve(&format!("t{i}"), algo, 5, &tig, &platform))
                .expect("call"),
        );
        assert_eq!(r.cached, i == 2);
    }
    let summary = handle.shutdown().expect("shutdown");
    assert!(summary.trace_lines.unwrap() > 0);

    let events = read_trace_file(&trace).expect("trace parses");
    assert!(matches!(
        events.first(),
        Some(Event::RunStart { solver, .. }) if solver == "match-serve"
    ));
    assert!(matches!(events.last(), Some(Event::RunEnd { .. })));
    let hits = events
        .iter()
        .filter(|e| matches!(e, Event::Counter { name, .. } if name == "cache_hit"))
        .count();
    assert_eq!(hits, 1);
    let rendered = TraceSummary::from_events(&events).render();
    assert!(rendered.contains("match-serve"), "{rendered}");
    std::fs::remove_dir_all(dir).ok();
}

/// The paper-family instance for `(n, seed)`, as text plus the parsed
/// [`match_core::MappingInstance`] (for client-side ring routing).
fn instance_with_text(n: usize, seed: u64) -> (String, String, match_core::MappingInstance) {
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::io::to_text;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = PaperFamilyConfig::new(n).generate(&mut rng);
    let inst = match_core::MappingInstance::new(&pair.tig, &pair.resources);
    (
        to_text(pair.tig.graph()),
        to_text(pair.resources.graph()),
        inst,
    )
}

#[test]
fn warm_repeat_saves_iterations_and_is_reported() {
    let handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        warm_alpha: 0.5,
        ..ServeConfig::default()
    })
    .expect("start");
    let (tig, platform) = instance_text(16, 41);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Same structure, different seed: a result-cache miss (the job key
    // includes the seed) but a warm-store hit (the structure hash does
    // not), so the second solve starts from the first one's prior.
    let cold = expect_solved(
        client
            .call(&solve("cold", "match-batched", 1, &tig, &platform))
            .expect("cold"),
    );
    assert!(!cold.cached && !cold.warm);
    assert_eq!(cold.iterations_saved, 0);

    let warm = expect_solved(
        client
            .call(&solve("warm", "match-batched", 2, &tig, &platform))
            .expect("warm"),
    );
    assert!(!warm.cached, "different seed must miss the result cache");
    assert!(warm.warm, "same structure must hit the warm store");
    assert!(
        warm.iterations < cold.iterations,
        "warm start must converge in fewer CE iterations ({} vs {})",
        warm.iterations,
        cold.iterations
    );
    assert_eq!(warm.iterations_saved, cold.iterations - warm.iterations);
    // Quality parity: warm may not degrade the objective materially.
    assert!(
        warm.cost <= cold.cost * 1.02,
        "warm cost {} vs cold {}",
        warm.cost,
        cold.cost
    );

    // The warm hit shows up on the shard-labelled metrics surface.
    let text = match client.metrics().expect("metrics") {
        Response::Metrics { text } => text,
        other => panic!("expected Metrics, got {other:?}"),
    };
    assert!(
        text.contains("match_serve_warm_hits_total{shard=\"0\"} 1"),
        "{text}"
    );
    assert!(
        series_value(&text, "match_serve_warm_iterations_saved_total") >= 1.0,
        "{text}"
    );
    let summary = handle.shutdown().expect("shutdown");
    assert_eq!(summary.warm_hits, 1);
}

#[test]
fn first_warm_path_solve_is_bit_identical_to_cold_daemon() {
    // With no prior in the store the warm path seeds the CE matrix with
    // the exact uniform cold start, so a warm-enabled daemon's first
    // solve must be bit-identical to a warm-disabled daemon's.
    let warm_handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        warm_alpha: 0.5,
        ..ServeConfig::default()
    })
    .expect("start warm");
    let cold_handle = start(1, 8, 8);
    let (tig, platform) = instance_text(12, 42);
    let mut warm_client = Client::connect(warm_handle.local_addr()).expect("connect");
    let mut cold_client = Client::connect(cold_handle.local_addr()).expect("connect");

    let a = expect_solved(
        warm_client
            .call(&solve("a", "match-batched", 7, &tig, &platform))
            .expect("warm daemon"),
    );
    let b = expect_solved(
        cold_client
            .call(&solve("b", "match-batched", 7, &tig, &platform))
            .expect("cold daemon"),
    );
    assert!(!a.warm, "an empty store cannot produce a warm hit");
    assert_eq!(a.mapping, b.mapping, "warm seam must not perturb the RNG");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.evaluations, b.evaluations);
    warm_handle.shutdown().expect("shutdown warm");
    cold_handle.shutdown().expect("shutdown cold");
}

#[test]
fn warm_store_survives_daemon_restart() {
    let dir = std::env::temp_dir().join(format!(
        "match-serve-warm-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let store = dir.join("warm.log");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        warm_alpha: 0.5,
        warm_store: Some(store.clone()),
        ..ServeConfig::default()
    };
    let (tig, platform) = instance_text(16, 43);

    // First daemon: one cold solve, then a drain that must flush and
    // fsync the store.
    let handle = Server::start(config.clone()).expect("start 1");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let cold = expect_solved(
        client
            .call(&solve("c", "match-batched", 1, &tig, &platform))
            .expect("cold"),
    );
    assert!(!cold.warm);
    handle.shutdown().expect("shutdown 1");
    assert!(store.exists(), "shutdown must have persisted the log");

    // Second daemon on the same log: the prior is already there.
    let handle = Server::start(config).expect("start 2");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let warm = expect_solved(
        client
            .call(&solve("w", "match-batched", 2, &tig, &platform))
            .expect("warm"),
    );
    assert!(warm.warm, "restarted daemon must warm-start from disk");
    assert!(warm.iterations < cold.iterations);
    handle.shutdown().expect("shutdown 2");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn drain_deadline_bounds_shutdown_of_a_long_job() {
    let handle = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 4,
        cache_cap: 0,
        drain_deadline: Some(std::time::Duration::from_millis(50)),
        ..ServeConfig::default()
    })
    .expect("start");
    let (tig, platform) = instance_text(12, 44);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    // A paper-config GA run takes far longer than the drain bound.
    client
        .send(&solve("long", "ga", 3, &tig, &platform))
        .expect("send");
    // Let the worker pick the job up before shutting down.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let reader = std::thread::spawn(move || client.recv().expect("drained response"));
    let begun = std::time::Instant::now();
    handle.shutdown().expect("shutdown");
    assert!(
        begun.elapsed() < std::time::Duration::from_secs(10),
        "drain deadline must bound shutdown"
    );
    let r = expect_solved(reader.join().expect("reader"));
    assert!(r.cancelled, "the overrunning job is cancelled, not lost");
    assert_eq!(r.mapping.len(), 12, "best-so-far mapping still returned");
}

#[test]
fn shard_pool_routes_consistently_and_aggregates() {
    use match_serve::{instance_hash, ShardPool};
    let pool = ShardPool::start(
        2,
        &ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("pool");
    assert_eq!(pool.len(), 2);

    let mut per_shard = [0u64; 2];
    for seed in 0..6u64 {
        let (tig, platform, inst) = instance_with_text(6, 100 + seed);
        let key = instance_hash(&inst);
        let addr = pool.route_addr(key);
        let shard = (0..2).find(|&i| pool.addr(i) == addr).expect("pool addr");
        per_shard[shard] += 1;
        // Routing is a pure function of the key: re-route agrees.
        assert_eq!(pool.route_addr(key), addr);
        let mut client = Client::connect(addr).expect("connect shard");
        let r = expect_solved(
            client
                .call(&solve(&format!("s{seed}"), "greedy", 1, &tig, &platform))
                .expect("call"),
        );
        assert_eq!(r.mapping.len(), 6);
        // The same instance re-submitted to the same shard hits its cache.
        let again = expect_solved(
            client
                .call(&solve(&format!("r{seed}"), "greedy", 1, &tig, &platform))
                .expect("recall"),
        );
        assert!(again.cached, "instance affinity must keep the cache hot");
    }
    let stats = pool.stats();
    assert_eq!(stats.jobs, 12);
    assert_eq!(stats.cache_hits, 6);
    assert_eq!(stats.workers, 2);

    // Each shard carries its own metrics label.
    for i in 0..2 {
        let mut client = Client::connect(pool.addr(i)).expect("connect");
        let text = match client.metrics().expect("metrics") {
            Response::Metrics { text } => text,
            other => panic!("expected Metrics, got {other:?}"),
        };
        assert!(
            text.contains(&format!("match_serve_jobs_total{{shard=\"{i}\"}}")),
            "shard {i}: {text}"
        );
    }
    let summaries = pool.shutdown().expect("shutdown");
    assert_eq!(summaries.len(), 2);
    assert_eq!(summaries.iter().map(|s| s.stats.jobs).sum::<u64>(), 12);
    assert_eq!(per_shard[0] + per_shard[1], 6);
}

#[test]
fn router_forwards_merges_and_survives_a_backend_death() {
    use match_serve::{Router, RouterConfig};
    let backend_a = start(1, 8, 8);
    let backend_b = start(1, 8, 8);
    let router = Router::start(RouterConfig {
        addr: "127.0.0.1:0".into(),
        backends: vec![
            backend_a.local_addr().to_string(),
            backend_b.local_addr().to_string(),
        ],
        health_interval: std::time::Duration::from_millis(100),
    })
    .expect("router");
    assert_eq!(router.healthy(), vec![true, true]);

    let mut client = Client::connect(router.local_addr()).expect("connect router");
    for seed in 0..4u64 {
        let (tig, platform) = instance_text(6, 200 + seed);
        let r = expect_solved(
            client
                .call(&solve(&format!("v{seed}"), "greedy", 1, &tig, &platform))
                .expect("via router"),
        );
        assert_eq!(r.mapping.len(), 6);
    }
    // stats through the router merges both backends' counters.
    match client.stats().expect("stats") {
        Response::Stats(s) => {
            assert_eq!(s.jobs, 4);
            assert_eq!(s.workers, 2);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    // metrics through the router carries both shard labels.
    match client.metrics().expect("metrics") {
        Response::Metrics { text } => {
            assert!(text.contains("shard=\"0\""), "{text}");
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    // Kill one backend out from under the router: after a health tick
    // every request lands on the survivor.
    backend_b.shutdown().expect("kill backend b");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while router.healthy()[1] {
        assert!(
            std::time::Instant::now() < deadline,
            "health probe never noticed the dead backend"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    for seed in 0..4u64 {
        let (tig, platform) = instance_text(6, 300 + seed);
        let r = expect_solved(
            client
                .call(&solve(&format!("f{seed}"), "greedy", 1, &tig, &platform))
                .expect("failover"),
        );
        assert_eq!(r.mapping.len(), 6);
    }

    // Shutdown through the router reaches the surviving backend.
    match client.shutdown().expect("shutdown") {
        Response::Bye => {}
        other => panic!("expected Bye, got {other:?}"),
    }
    let summary = router.shutdown().expect("router shutdown");
    assert!(summary.routed >= 8);
    backend_a.wait().expect("backend a drained");
}
