//! Property-based tests for the canonical instance hash: the cache key
//! must be invariant under representation details (edge declaration
//! order, endpoint order) and sensitive to anything that changes the
//! cost tables.

use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::io::{from_text, to_text};
use match_graph::{ResourceGraph, TaskGraph};
use match_serve::{instance_hash, job_key};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn build(tig_text: &str, platform_text: &str) -> match_core::MappingInstance {
    let tig = TaskGraph::new(from_text(tig_text).expect("tig parses")).expect("valid tig");
    let platform = ResourceGraph::new(from_text(platform_text).expect("platform parses"))
        .expect("valid platform");
    match_core::MappingInstance::new(&tig, &platform)
}

/// Shuffle the `edge` lines of an instance text, leaving the header and
/// `node` lines in place — a different declaration of the same graph.
fn shuffle_edges(text: &str, seed: u64, swap_endpoints: bool) -> String {
    let mut head: Vec<String> = Vec::new();
    let mut edges: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("edge ") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if swap_endpoints {
                edges.push(format!("edge {} {} {}", fields[1], fields[0], fields[2]));
            } else {
                edges.push(line.to_string());
            }
        } else {
            head.push(line.to_string());
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    edges.shuffle(&mut rng);
    let mut out = head;
    out.extend(edges);
    out.join("\n") + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_invariant_under_edge_reordering(
        n in 2usize..16,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        swap in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pair = PaperFamilyConfig::new(n).generate(&mut rng);
        let tig_text = to_text(pair.tig.graph());
        let plat_text = to_text(pair.resources.graph());

        let a = build(&tig_text, &plat_text);
        let b = build(&shuffle_edges(&tig_text, perm_seed, swap), &plat_text);
        prop_assert_eq!(instance_hash(&a), instance_hash(&b));
        prop_assert_eq!(job_key(&a, "match", 7), job_key(&b, "match", 7));

        // Reordering the platform's link declarations is equally inert.
        let c = build(&tig_text, &shuffle_edges(&plat_text, perm_seed, swap));
        prop_assert_eq!(instance_hash(&a), instance_hash(&c));
    }

    #[test]
    fn job_key_separates_algo_and_seed(
        n in 2usize..12,
        seed in any::<u64>(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pair = PaperFamilyConfig::new(n).generate(&mut rng);
        let inst = match_core::MappingInstance::from_pair(&pair);
        if s1 != s2 {
            prop_assert_ne!(job_key(&inst, "match", s1), job_key(&inst, "match", s2));
        }
        prop_assert_ne!(job_key(&inst, "match", s1), job_key(&inst, "sa", s1));
        prop_assert_eq!(job_key(&inst, "hill", s1), job_key(&inst, "hill", s1));
    }

    #[test]
    fn hash_sensitive_to_instance_identity(
        n in 3usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = match_core::MappingInstance::from_pair(
            &PaperFamilyConfig::new(n).generate(&mut rng),
        );
        // A freshly drawn instance of the same family and size almost
        // surely has different weights; its digest must differ.
        let b = match_core::MappingInstance::from_pair(
            &PaperFamilyConfig::new(n).generate(&mut rng),
        );
        prop_assert_ne!(instance_hash(&a), instance_hash(&b));
    }
}

mod ring {
    //! Properties of the consistent-hash ring: bounded remap on
    //! membership change and survivor stability.

    use match_serve::{SlotRing, SLOTS};
    use proptest::prelude::*;

    /// Keys 0..SLOTS cover every slot exactly once, so routing these K
    /// keys measures slot movement exactly: "remaps ≤ ⌈K/N⌉" for the
    /// full key space follows from the slot bound.
    fn routes(ring: &SlotRing<usize>) -> Vec<usize> {
        (0..SLOTS as u64).map(|k| *ring.route(k)).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn join_remaps_at_most_fair_share(
            n in 1usize..12,
            churn in proptest::collection::vec(any::<bool>(), 0..6),
        ) {
            let mut ring = SlotRing::from_members((0..n).collect::<Vec<_>>());
            let mut next = n;
            // Arbitrary join/leave churn first: the bound must hold from
            // any reachable ring state, not just the balanced initial one.
            for join in churn {
                if join {
                    ring.join(next);
                    next += 1;
                } else if ring.len() > 1 {
                    ring.leave(ring.len() / 2);
                }
            }
            let before = routes(&ring);
            let n_before = ring.len();
            let moved = ring.join(next);
            prop_assert_eq!(moved, SLOTS.div_ceil(n_before + 1));
            let after = routes(&ring);
            let remapped = before.iter().zip(&after).filter(|(a, b)| a != b).count();
            prop_assert!(
                remapped <= SLOTS.div_ceil(n_before + 1),
                "{} of {} keys remapped on join into {} members",
                remapped, SLOTS, n_before
            );
            // Every remapped key moved *to* the joiner, none between survivors.
            for (a, b) in before.iter().zip(&after) {
                prop_assert!(a == b || *b == next);
            }
        }

        #[test]
        fn leave_remaps_at_most_fair_share(
            n in 2usize..12,
            victim_seed in any::<u64>(),
        ) {
            let mut ring = SlotRing::from_members((0..n).collect::<Vec<_>>());
            let victim = (victim_seed % n as u64) as usize;
            let before = routes(&ring);
            let moved = ring.leave(victim);
            prop_assert!(moved <= SLOTS.div_ceil(n));
            let after = routes(&ring);
            let remapped = before.iter().zip(&after).filter(|(a, b)| a != b).count();
            prop_assert!(
                remapped <= SLOTS.div_ceil(n),
                "{} of {} keys remapped on leave from {} members",
                remapped, SLOTS, n
            );
            // Only the leaver's keys moved; survivors kept theirs.
            for (a, b) in before.iter().zip(&after) {
                if *a != victim {
                    prop_assert_eq!(a, b);
                }
            }
        }

        #[test]
        fn ownership_stays_balanced_under_churn(
            n in 1usize..8,
            churn in proptest::collection::vec(any::<bool>(), 1..20),
        ) {
            let mut ring = SlotRing::from_members((0..n).collect::<Vec<_>>());
            let mut next = n;
            for join in churn {
                if join {
                    ring.join(next);
                    next += 1;
                } else if ring.len() > 1 {
                    ring.leave(0);
                }
                let counts = ring.slot_counts();
                let (min, max) = (
                    *counts.iter().min().expect("nonempty"),
                    *counts.iter().max().expect("nonempty"),
                );
                prop_assert!(
                    max - min <= 1,
                    "ownership skewed after churn: {:?}", counts
                );
                prop_assert_eq!(counts.iter().sum::<usize>(), SLOTS);
            }
        }
    }
}
