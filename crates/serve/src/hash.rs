//! Canonical instance hashing for the result cache.
//!
//! Two requests describe "the same work" when their cost tables are
//! identical — same task weights, same interaction volumes, same
//! resource and link costs — regardless of the order in which the
//! instance text listed its `edge` lines. `match-graph`'s parser builds
//! adjacency in declaration order, so a naive hash over the CSR arrays
//! would treat reordered-but-equal instances as distinct and miss the
//! cache. [`instance_hash`] therefore hashes each task's adjacency
//! *sorted by neighbour index*, making the digest invariant under edge
//! reordering while still distinguishing any change to a weight, a
//! volume, or the graph shape.
//!
//! The digest is 64-bit FNV-1a — not cryptographic, but the cache key
//! space (instance × algorithm × seed) is tiny compared to 2⁶⁴ and a
//! spurious collision merely returns a valid mapping for the colliding
//! instance, never corrupts state.

use match_core::MappingInstance;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a over byte chunks.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        // Bit-exact: 1.0 and 1.0000000000000002 must hash differently,
        // and the text format round-trips weights exactly ({:.17}).
        self.write(&v.to_bits().to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Canonical digest of an instance's cost tables: task weights,
/// per-task interaction lists (sorted by neighbour), resource
/// processing costs, and the full link-cost matrix.
pub fn instance_hash(inst: &MappingInstance) -> u64 {
    let mut h = Fnv::new();
    let (t, r) = (inst.n_tasks(), inst.n_resources());
    h.write_u64(t as u64);
    h.write_u64(r as u64);
    for task in 0..t {
        h.write_f64(inst.computation(task));
        let mut adj: Vec<(usize, f64)> = inst.interactions(task).collect();
        adj.sort_by_key(|a| a.0);
        h.write_u64(adj.len() as u64);
        for (neighbour, volume) in adj {
            h.write_u64(neighbour as u64);
            h.write_f64(volume);
        }
    }
    for s in 0..r {
        h.write_f64(inst.processing_cost(s));
    }
    for s in 0..r {
        for b in 0..r {
            h.write_f64(inst.link_cost(s, b));
        }
    }
    h.finish()
}

/// Quantize a strictly-positive cost to its log2 bucket; zero and
/// negative values get sentinel buckets. Instances whose costs differ
/// by < 2× land in the same bucket, so near-duplicate templates share
/// a structure hash.
fn log2_bucket(v: f64) -> i64 {
    if v > 0.0 && v.is_finite() {
        v.log2().floor() as i64
    } else if v == 0.0 {
        i64::MIN + 1
    } else {
        i64::MIN
    }
}

/// Structure digest for the warm-start store: graph **shape** plus
/// coarse cost scale, deliberately insensitive to the exact weights.
///
/// Unlike [`instance_hash`] this excludes edge volumes entirely and
/// quantizes computation/processing costs to log2 buckets, so the
/// resubmit-with-tweaked-weights traffic that dominates real arrival
/// streams hits the same stored prior. A collision only mis-seeds the
/// CE start distribution — the solver still converges on the true
/// instance, and the verify pillar's quality-parity gate bounds the
/// damage.
pub fn structure_hash(inst: &MappingInstance) -> u64 {
    let mut h = Fnv::new();
    let (t, r) = (inst.n_tasks(), inst.n_resources());
    h.write_u64(t as u64);
    h.write_u64(r as u64);
    for task in 0..t {
        h.write_u64(log2_bucket(inst.computation(task)) as u64);
        let mut adj: Vec<usize> = inst.interactions(task).map(|(n, _)| n).collect();
        adj.sort_unstable();
        h.write_u64(adj.len() as u64);
        for neighbour in adj {
            h.write_u64(neighbour as u64);
        }
    }
    for s in 0..r {
        h.write_u64(log2_bucket(inst.processing_cost(s)) as u64);
    }
    h.finish()
}

/// Cache key for one request: instance digest × algorithm × seed.
/// Deterministic solvers make this a complete identity for the result.
pub fn job_key(inst: &MappingInstance, algo: &str, seed: u64) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(instance_hash(inst));
    h.write(algo.as_bytes());
    // Separator prevents ("ab", 1)-style ambiguity with algo suffixes.
    h.write(&[0]);
    h.write_u64(seed);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::io::from_text;
    use match_graph::TaskGraph;

    fn inst_from(tig: &str, platform: &str) -> MappingInstance {
        let tig = TaskGraph::new(from_text(tig).expect("tig parses")).expect("valid tig");
        let res = match_graph::ResourceGraph::new(from_text(platform).expect("platform parses"))
            .expect("valid platform");
        MappingInstance::new(&tig, &res)
    }

    const PLATFORM: &str = "# matchkit instance v1\n\
         graph 3\n\
         node 0 2\n node 1 1\n node 2 1.5\n\
         edge 0 1 1\n edge 0 2 2\n edge 1 2 1\n";

    #[test]
    fn edge_order_does_not_change_hash() {
        let a = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 1 2 5\nedge 0 2 6\n",
            PLATFORM,
        );
        let b = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 2 6\nedge 0 1 4\nedge 1 2 5\n",
            PLATFORM,
        );
        assert_eq!(instance_hash(&a), instance_hash(&b));
    }

    #[test]
    fn weight_change_changes_hash() {
        let a = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 1 2 5\n",
            PLATFORM,
        );
        let b = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 1 2 5.000001\n",
            PLATFORM,
        );
        assert_ne!(instance_hash(&a), instance_hash(&b));
    }

    #[test]
    fn topology_change_changes_hash() {
        let a = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 1 2 5\n",
            PLATFORM,
        );
        let b = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 0 2 5\n",
            PLATFORM,
        );
        assert_ne!(instance_hash(&a), instance_hash(&b));
    }

    #[test]
    fn structure_hash_ignores_edge_volumes() {
        let a = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 1 2 5\n",
            PLATFORM,
        );
        let b = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 7\nedge 1 2 9\n",
            PLATFORM,
        );
        assert_ne!(instance_hash(&a), instance_hash(&b));
        assert_eq!(structure_hash(&a), structure_hash(&b));
    }

    #[test]
    fn structure_hash_sees_topology() {
        let a = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 1 2 5\n",
            PLATFORM,
        );
        let b = inst_from(
            "# matchkit instance v1\ngraph 3\nedge 0 1 4\nedge 0 2 5\n",
            PLATFORM,
        );
        assert_ne!(structure_hash(&a), structure_hash(&b));
    }

    #[test]
    fn structure_hash_buckets_node_costs() {
        // 2.0 vs 3.0 share a log2 bucket; 2.0 vs 5.0 do not.
        let near = inst_from(
            "# matchkit instance v1\ngraph 3\nnode 0 3\nedge 0 1 4\n",
            PLATFORM,
        );
        let base = inst_from(
            "# matchkit instance v1\ngraph 3\nnode 0 2\nedge 0 1 4\n",
            PLATFORM,
        );
        let far = inst_from(
            "# matchkit instance v1\ngraph 3\nnode 0 5\nedge 0 1 4\n",
            PLATFORM,
        );
        assert_eq!(structure_hash(&base), structure_hash(&near));
        assert_ne!(structure_hash(&base), structure_hash(&far));
    }

    #[test]
    fn job_key_separates_algo_and_seed() {
        let inst = inst_from("# matchkit instance v1\ngraph 3\nedge 0 1 4\n", PLATFORM);
        assert_ne!(job_key(&inst, "match", 1), job_key(&inst, "match", 2));
        assert_ne!(job_key(&inst, "match", 1), job_key(&inst, "sa", 1));
        assert_eq!(job_key(&inst, "match", 1), job_key(&inst, "match", 1));
    }
}
