//! `matchctl router` — a consistent-hashing front door over N serve
//! backends.
//!
//! The router speaks the same JSONL protocol as the daemon, so clients
//! do not know it is there. Every solve is keyed by the canonical
//! [`instance_hash`](crate::hash::instance_hash) and routed through a
//! [`SlotRing`] to one backend; repeated submissions of the same
//! instance therefore land on the same shard, where its result cache
//! and warm-start store live. Control operations fan out:
//!
//! - `stats` queries every healthy backend and merges the counters,
//! - `metrics` concatenates the backends' Prometheus snapshots (the
//!   per-backend `shard` label keeps the series distinct),
//! - `shutdown` forwards to every backend, answers `bye`, and stops
//!   the router itself.
//!
//! A health thread probes each configured backend on a fixed interval.
//! A backend that stops accepting connections leaves the ring — moving
//! only its own slots, per the [`SlotRing`] bound — and rejoins when it
//! answers again, so a restarted shard reclaims exactly one fair share.
//!
//! Forwarding is synchronous per client connection (one request, one
//! reply); clients that want concurrency open several connections, as
//! `matchctl submit --concurrency` does. Each client thread keeps one
//! lazily-opened connection per backend, so steady-state routing adds
//! one socket hop and no connection setup.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::client::Client;
use crate::hash::instance_hash;
use crate::protocol::{
    encode_response_line, parse_request, RemapRequest, Request, Response, StatsResponse,
};
use crate::server::parse_instance;
use crate::shard::SlotRing;

/// Router configuration; see `matchctl router` for the CLI surface.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`:0` picks an ephemeral port).
    pub addr: String,
    /// Backend daemon addresses, e.g. `127.0.0.1:7117`.
    pub backends: Vec<String>,
    /// Health-probe interval.
    pub health_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7207".to_string(),
            backends: Vec::new(),
            health_interval: Duration::from_millis(500),
        }
    }
}

/// Final router counters returned at shutdown.
#[derive(Debug, Clone)]
pub struct RouterSummary {
    /// Solve requests forwarded to a backend.
    pub routed: u64,
    /// Requests answered with a router-level error (no healthy backend,
    /// backend failure, parse error).
    pub errors: u64,
    /// Router lifetime.
    pub wall: Duration,
}

/// Ring membership under one lock: the health vector and the ring must
/// change together or routing could pick a dead backend forever.
struct Membership {
    healthy: Vec<bool>,
    /// `None` while no backend is healthy.
    ring: Option<SlotRing<SocketAddr>>,
}

struct Shared {
    backends: Vec<SocketAddr>,
    membership: Mutex<Membership>,
    shutdown: AtomicBool,
    routed: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    /// Route a key to a healthy backend, if any.
    fn route(&self, key: u64) -> Option<SocketAddr> {
        let m = self.membership.lock().expect("membership poisoned");
        m.ring.as_ref().map(|r| *r.route(key))
    }

    fn healthy_addrs(&self) -> Vec<SocketAddr> {
        let m = self.membership.lock().expect("membership poisoned");
        self.backends
            .iter()
            .zip(&m.healthy)
            .filter(|(_, &h)| h)
            .map(|(&a, _)| a)
            .collect()
    }

    /// Record a probe (or forwarding) result for one backend, adjusting
    /// ring membership when its health flips.
    fn set_health(&self, addr: SocketAddr, up: bool) {
        let Some(idx) = self.backends.iter().position(|&a| a == addr) else {
            return;
        };
        let mut m = self.membership.lock().expect("membership poisoned");
        if m.healthy[idx] == up {
            return;
        }
        m.healthy[idx] = up;
        if up {
            match &mut m.ring {
                Some(ring) => {
                    ring.join(addr);
                }
                None => m.ring = Some(SlotRing::new(addr)),
            }
        } else if let Some(ring) = &mut m.ring {
            match ring.members().iter().position(|&a| a == addr) {
                Some(pos) if ring.len() > 1 => {
                    ring.leave(pos);
                }
                Some(_) => m.ring = None,
                None => {}
            }
        }
    }
}

/// The routing front door.
pub struct Router;

impl Router {
    /// Bind, probe the configured backends once, and start routing.
    pub fn start(config: RouterConfig) -> io::Result<RouterHandle> {
        if config.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let mut backends = Vec::with_capacity(config.backends.len());
        for spec in &config.backends {
            let addr = spec.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("backend `{spec}` resolves to no address"),
                )
            })?;
            backends.push(addr);
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            backends: backends.clone(),
            membership: Mutex::new(Membership {
                healthy: vec![false; backends.len()],
                ring: None,
            }),
            shutdown: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        // Synchronous first probe so the ring is populated before the
        // first request can arrive.
        for &addr in &backends {
            shared.set_health(addr, probe(addr));
        }

        let clients: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let health = {
            let shared = Arc::clone(&shared);
            let interval = config.health_interval;
            thread::spawn(move || health_loop(&shared, interval))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            let clients = Arc::clone(&clients);
            thread::spawn(move || accept_loop(listener, &shared, &clients))
        };

        Ok(RouterHandle {
            shared,
            local_addr,
            started: Instant::now(),
            accept: Some(accept),
            health: Some(health),
            clients,
        })
    }
}

/// Owner's view of a running router.
pub struct RouterHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    started: Instant,
    accept: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
    clients: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Per-backend health, in configuration order.
    pub fn healthy(&self) -> Vec<bool> {
        self.shared
            .membership
            .lock()
            .expect("membership poisoned")
            .healthy
            .clone()
    }

    /// Whether shutdown has been requested (by a client or the owner).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the router to stop accepting and wind down.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until a client requests shutdown, then exit.
    pub fn wait(self) -> io::Result<RouterSummary> {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(20));
        }
        self.finish()
    }

    /// Request shutdown and exit. Does **not** stop the backends —
    /// send a protocol `shutdown` through the router for that.
    pub fn shutdown(self) -> io::Result<RouterSummary> {
        self.request_shutdown();
        self.finish()
    }

    fn finish(mut self) -> io::Result<RouterSummary> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(health) = self.health.take() {
            let _ = health.join();
        }
        let handles: Vec<_> = {
            let mut clients = self.clients.lock().expect("clients poisoned");
            clients.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        Ok(RouterSummary {
            routed: self.shared.routed.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            wall: self.started.elapsed(),
        })
    }
}

/// One connection attempt decides liveness; the serve daemon accepts
/// instantly even when its workers are saturated.
fn probe(addr: SocketAddr) -> bool {
    TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_ok()
}

fn health_loop(shared: &Shared, interval: Duration) {
    let tick = Duration::from_millis(50);
    while !shared.shutdown.load(Ordering::SeqCst) {
        for &addr in &shared.backends {
            shared.set_health(addr, probe(addr));
        }
        // Sleep in short ticks so shutdown is prompt.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.shutdown.load(Ordering::SeqCst) {
            thread::sleep(tick);
            slept += tick;
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    clients: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = thread::spawn(move || client_loop(stream, &shared));
                clients.lock().expect("clients poisoned").push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// A lazily-opened forwarding connection to one backend.
struct BackendConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl BackendConn {
    fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(BackendConn { stream, reader })
    }

    /// Forward one raw request line and read the single reply line.
    fn round_trip(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut reply = String::new();
        loop {
            reply.clear();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "backend closed the connection",
                ));
            }
            if !reply.trim().is_empty() {
                return Ok(reply.trim().to_string());
            }
        }
    }
}

fn client_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut conns: HashMap<SocketAddr, BackendConn> = HashMap::new();
    let mut line = String::new();

    let send = |writer: &mut TcpStream, resp: &Response| {
        writer
            .write_all(encode_response_line(resp).as_bytes())
            .and_then(|()| writer.flush())
            .is_ok()
    };
    let send_error = |writer: &mut TcpStream, shared: &Shared, id: String, error: String| {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        send(writer, &Response::Error { id, error })
    };

    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let raw = line.trim().to_string();
        if raw.is_empty() {
            continue;
        }
        match parse_request(&raw) {
            Err(e) => {
                if !send_error(&mut writer, shared, String::new(), e.to_string()) {
                    return;
                }
            }
            Ok(Request::Stats) => {
                let merged = merge_stats(&shared.healthy_addrs());
                if !send(&mut writer, &Response::Stats(merged)) {
                    return;
                }
            }
            Ok(Request::Metrics) => {
                let text = concat_metrics(&shared.healthy_addrs());
                if !send(&mut writer, &Response::Metrics { text }) {
                    return;
                }
            }
            Ok(Request::Shutdown) => {
                for addr in shared.healthy_addrs() {
                    if let Ok(mut client) = Client::connect(addr) {
                        let _ = client.shutdown();
                    }
                }
                let _ = send(&mut writer, &Response::Bye);
                shared.shutdown.store(true, Ordering::SeqCst);
                return;
            }
            // Remaps route exactly like solves — by instance hash — so a
            // re-map lands on the shard that warm-started the original.
            Ok(Request::Solve(req)) | Ok(Request::Remap(RemapRequest { solve: req, .. })) => {
                let key = match parse_instance(&req.tig, &req.platform) {
                    Ok(inst) => instance_hash(&inst),
                    Err(e) => {
                        if !send_error(&mut writer, shared, req.id, e) {
                            return;
                        }
                        continue;
                    }
                };
                let Some(addr) = shared.route(key) else {
                    if !send_error(
                        &mut writer,
                        shared,
                        req.id,
                        "no healthy backends".to_string(),
                    ) {
                        return;
                    }
                    continue;
                };
                // One retry through a fresh connection covers a backend
                // that restarted between health probes.
                let reply = forward(&mut conns, addr, &raw).or_else(|_| {
                    conns.remove(&addr);
                    forward(&mut conns, addr, &raw)
                });
                match reply {
                    Ok(reply) => {
                        shared.routed.fetch_add(1, Ordering::Relaxed);
                        if writer
                            .write_all(reply.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(e) => {
                        conns.remove(&addr);
                        shared.set_health(addr, false);
                        if !send_error(
                            &mut writer,
                            shared,
                            req.id,
                            format!("backend {addr} failed: {e}"),
                        ) {
                            return;
                        }
                    }
                }
            }
        }
    }
}

fn forward(
    conns: &mut HashMap<SocketAddr, BackendConn>,
    addr: SocketAddr,
    raw: &str,
) -> io::Result<String> {
    let conn = match conns.entry(addr) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => e.insert(BackendConn::connect(addr)?),
    };
    conn.round_trip(raw)
}

/// Fan `stats` out to every healthy backend and merge the counters.
/// Unreachable backends contribute nothing (the next health probe will
/// drop them from the ring).
fn merge_stats(addrs: &[SocketAddr]) -> StatsResponse {
    let mut total = StatsResponse {
        jobs: 0,
        cache_hits: 0,
        cache_misses: 0,
        rejected: 0,
        cancelled: 0,
        queue_depth: 0,
        queue_cap: 0,
        workers: 0,
    };
    for &addr in addrs {
        let Ok(mut client) = Client::connect(addr) else {
            continue;
        };
        if let Ok(Response::Stats(s)) = client.stats() {
            total.jobs += s.jobs;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.rejected += s.rejected;
            total.cancelled += s.cancelled;
            total.queue_depth += s.queue_depth;
            total.queue_cap += s.queue_cap;
            total.workers += s.workers;
        }
    }
    total
}

/// Concatenate the backends' Prometheus snapshots. The per-backend
/// `shard` label keeps every series distinct, so the only redundancy is
/// repeated `# TYPE` comment lines.
fn concat_metrics(addrs: &[SocketAddr]) -> String {
    let mut out = String::new();
    for &addr in addrs {
        let Ok(mut client) = Client::connect(addr) else {
            continue;
        };
        if let Ok(Response::Metrics { text }) = client.metrics() {
            out.push_str(&text);
        }
    }
    out
}
