//! Consistent hashing across serve backends, with a **provable** remap
//! bound on membership change.
//!
//! The router keys every solve request by its canonical
//! [`instance_hash`](crate::hash::instance_hash), so each backend's LRU
//! result cache and warm-start store shard naturally: the same instance
//! always lands on the same backend. The failure mode to engineer
//! against is membership change — when a shard joins or leaves, every
//! remapped key is a cold cache somewhere else.
//!
//! [`SlotRing`] uses explicit slots rather than hashed vnode points: `S`
//! fixed slots, each owned by one member, with ownership kept balanced
//! (any two members' slot counts differ by at most one). A join steals
//! exactly `⌈S/(N+1)⌉` slots — taken from the currently largest owners —
//! and a leave redistributes only the leaver's `≤ ⌈S/N⌉` slots. Keys
//! route by `key mod S`, so the fraction of keys that move is *exactly*
//! the fraction of slots that move: at most `⌈K/N⌉` of `K` keys for an
//! `N`-member ring, the classic consistent-hashing bound — here a
//! deterministic guarantee, not an expectation over hash positions.
//!
//! [`ShardPool`] runs N in-process daemons behind one ring — the test
//! and bench deployment mode; `matchctl router` is the out-of-process
//! equivalent.

use std::io;
use std::net::SocketAddr;

use crate::protocol::StatsResponse;
use crate::server::{ServeConfig, ServeSummary, Server, ServerHandle};

/// Number of slots in a ring. A power of two, comfortably larger than
/// any realistic shard count, so per-member ownership stays within one
/// slot of ideal while `key % SLOTS` stays cheap.
pub const SLOTS: usize = 256;

/// An explicit-slot consistent-hash ring over generic member handles.
#[derive(Debug, Clone)]
pub struct SlotRing<T> {
    members: Vec<T>,
    /// `slots[s]` = index into `members` owning slot `s`.
    slots: Vec<usize>,
}

impl<T> SlotRing<T> {
    /// A ring owned entirely by one first member.
    pub fn new(first: T) -> Self {
        SlotRing {
            members: vec![first],
            slots: vec![0; SLOTS],
        }
    }

    /// Build a ring over several members (round-robin initial slot
    /// assignment — balanced by construction). Panics on empty input.
    pub fn from_members(members: Vec<T>) -> Self {
        assert!(!members.is_empty(), "a ring needs at least one member");
        let n = members.len();
        let slots = (0..SLOTS).map(|s| s % n).collect();
        SlotRing { members, slots }
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false — a ring holds at least one member.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in join order.
    pub fn members(&self) -> &[T] {
        &self.members
    }

    /// Route a key to its owning member.
    pub fn route(&self, key: u64) -> &T {
        &self.members[self.slots[(key % SLOTS as u64) as usize]]
    }

    /// Index of the member a key routes to.
    pub fn route_index(&self, key: u64) -> usize {
        self.slots[(key % SLOTS as u64) as usize]
    }

    /// Per-member slot counts (diagnostics and tests).
    pub fn slot_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.members.len()];
        for &owner in &self.slots {
            counts[owner] += 1;
        }
        counts
    }

    /// Add a member, stealing exactly `⌈S/(N+1)⌉` slots from the
    /// currently largest owners — the minimum any balanced assignment
    /// must move. Returns the number of slots remapped.
    pub fn join(&mut self, member: T) -> usize {
        let new_idx = self.members.len();
        self.members.push(member);
        let n = self.members.len();
        let take = SLOTS.div_ceil(n);
        let mut counts = self.slot_counts();
        let mut moved = 0;
        while moved < take {
            // Steal one slot from the current largest owner, so no
            // member is drained below the post-join fair share.
            let donor = (0..n - 1)
                .max_by_key(|&m| counts[m])
                .expect("ring had members before the join");
            let slot = self
                .slots
                .iter()
                .position(|&o| o == donor)
                .expect("donor owns at least one slot");
            self.slots[slot] = new_idx;
            counts[donor] -= 1;
            moved += 1;
        }
        moved
    }

    /// Remove the member at `index`, redistributing only its slots
    /// (`≤ ⌈S/N⌉` for an `N`-member ring) to the remaining members,
    /// smallest owners first. Panics when removing the last member.
    /// Returns the number of slots remapped.
    pub fn leave(&mut self, index: usize) -> usize {
        assert!(index < self.members.len(), "no such member");
        assert!(self.members.len() > 1, "cannot empty the ring");
        self.members.remove(index);
        let n = self.members.len();
        // Mark the leaver's slots before shifting the indices above it
        // down — afterwards `index` would also match the member that
        // slid into the leaver's position.
        let mut orphans = Vec::new();
        for (s, owner) in self.slots.iter_mut().enumerate() {
            if *owner == index {
                *owner = usize::MAX;
                orphans.push(s);
            } else if *owner > index {
                *owner -= 1;
            }
        }
        let mut counts = vec![0usize; n];
        for &owner in &self.slots {
            if owner != usize::MAX {
                counts[owner] += 1;
            }
        }
        let moved = orphans.len();
        for s in orphans {
            let adoptive = (0..n)
                .min_by_key(|&m| counts[m])
                .expect("ring still has members");
            self.slots[s] = adoptive;
            counts[adoptive] += 1;
        }
        moved
    }
}

/// N in-process daemons behind one [`SlotRing`] — the deployment mode
/// tests and the serve bench use (client-side routing, no router hop).
pub struct ShardPool {
    handles: Vec<ServerHandle>,
    ring: SlotRing<SocketAddr>,
}

impl ShardPool {
    /// Start `n` daemons from a config template. Each shard gets
    /// `addr` rewritten to an ephemeral port and its metrics `shard`
    /// label set to its index.
    pub fn start(n: usize, template: &ServeConfig) -> io::Result<ShardPool> {
        assert!(n > 0, "a pool needs at least one shard");
        let mut handles = Vec::with_capacity(n);
        for shard in 0..n {
            let mut config = template.clone();
            config.addr = "127.0.0.1:0".to_string();
            config.shard = shard.to_string();
            if let Some(path) = &template.warm_store {
                // One log per shard — stores shard with the traffic.
                config.warm_store = Some(path.with_extension(format!("shard{shard}")));
            }
            handles.push(Server::start(config)?);
        }
        let ring = SlotRing::from_members(handles.iter().map(|h| h.local_addr()).collect());
        Ok(ShardPool { handles, ring })
    }

    /// Shard count.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Always false — a pool holds at least one shard.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The ring, for client-side routing.
    pub fn ring(&self) -> &SlotRing<SocketAddr> {
        &self.ring
    }

    /// Address of the shard a key routes to.
    pub fn route_addr(&self, key: u64) -> SocketAddr {
        *self.ring.route(key)
    }

    /// Address of shard `i`.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.handles[i].local_addr()
    }

    /// Aggregated live stats across all shards.
    pub fn stats(&self) -> StatsResponse {
        let mut total = StatsResponse {
            jobs: 0,
            cache_hits: 0,
            cache_misses: 0,
            rejected: 0,
            cancelled: 0,
            queue_depth: 0,
            queue_cap: 0,
            workers: 0,
        };
        for h in &self.handles {
            let s = h.stats();
            total.jobs += s.jobs;
            total.cache_hits += s.cache_hits;
            total.cache_misses += s.cache_misses;
            total.rejected += s.rejected;
            total.cancelled += s.cancelled;
            total.queue_depth += s.queue_depth;
            total.queue_cap += s.queue_cap;
            total.workers += s.workers;
        }
        total
    }

    /// Shut every shard down, returning per-shard summaries.
    pub fn shutdown(self) -> io::Result<Vec<ServeSummary>> {
        self.handles.into_iter().map(|h| h.shutdown()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_member_owns_everything() {
        let ring = SlotRing::new("a");
        assert_eq!(ring.slot_counts(), vec![SLOTS]);
        assert_eq!(*ring.route(123), "a");
    }

    #[test]
    fn from_members_is_balanced() {
        for n in 1..=9 {
            let ring = SlotRing::from_members((0..n).collect::<Vec<_>>());
            let counts = ring.slot_counts();
            let (min, max) = (counts.iter().min(), counts.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1, "n={n}: {counts:?}");
        }
    }

    #[test]
    fn join_moves_exactly_the_fair_share() {
        for n in 1..=8 {
            let mut ring = SlotRing::from_members((0..n).collect::<Vec<_>>());
            let before = ring.slots.clone();
            let moved = ring.join(n);
            assert_eq!(moved, SLOTS.div_ceil(n + 1), "n={n}");
            let diff = before
                .iter()
                .zip(&ring.slots)
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, moved, "only stolen slots changed owners");
            let counts = ring.slot_counts();
            let (min, max) = (counts.iter().min(), counts.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1, "n={n}: {counts:?}");
        }
    }

    #[test]
    fn leave_moves_only_the_leavers_slots() {
        for n in 2..=8 {
            let mut ring = SlotRing::from_members((0..n).collect::<Vec<_>>());
            let share = ring.slot_counts()[1];
            let moved = ring.leave(1);
            assert_eq!(moved, share, "n={n}");
            assert!(moved <= SLOTS.div_ceil(n), "n={n}");
            let counts = ring.slot_counts();
            let (min, max) = (counts.iter().min(), counts.iter().max());
            assert!(max.unwrap() - min.unwrap() <= 1, "n={n}: {counts:?}");
            assert_eq!(
                ring.members(),
                &(0..n).filter(|&m| m != 1).collect::<Vec<_>>()[..]
            );
        }
    }

    #[test]
    fn routing_is_stable_for_survivors() {
        let mut ring = SlotRing::from_members(vec!["a", "b", "c"]);
        let before: Vec<&str> = (0..SLOTS as u64).map(|k| *ring.route(k)).collect();
        ring.join("d");
        for (k, &owner) in before.iter().enumerate() {
            let now = *ring.route(k as u64);
            assert!(
                now == owner || now == "d",
                "key {k} moved between survivors: {owner} -> {now}"
            );
        }
    }
}
