//! Minimal HTTP/1.1 surface for Prometheus scrapes.
//!
//! The daemon's primary protocol is JSONL-over-TCP, but scrapers speak
//! HTTP — so `match-serve` optionally binds a *side port* that answers
//! exactly one route, `GET /metrics`, with the text exposition render
//! of the live registry. This is not a web server: one thread accepts,
//! reads the request head, writes one response, and closes. A scrape
//! every few seconds is the design load.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use match_metrics::Metrics;

/// Content type mandated by the Prometheus text exposition format.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Serve scrapes until `stop()` returns true. The listener must already
/// be bound; it is switched to non-blocking so the loop can poll.
pub(crate) fn serve_scrapes(listener: TcpListener, metrics: Metrics, stop: impl Fn() -> bool) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if stop() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_scrape(stream, &metrics),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

/// Answer one HTTP exchange and close the connection.
fn handle_scrape(stream: TcpStream, metrics: &Metrics) {
    // A stuck client must not wedge the scrape thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so the client sees a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut out = stream;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let path = path.split('?').next().unwrap_or("");
    if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        let body = metrics.snapshot().to_prometheus();
        let _ = write!(
            out,
            "HTTP/1.1 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = out.write_all(body.as_bytes());
    } else {
        let body = "only GET /metrics lives here\n";
        let status = if method == "GET" {
            "404 Not Found"
        } else {
            "405 Method Not Allowed"
        };
        let _ = write!(
            out,
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
    }
    let _ = out.flush();
}

/// Blocking one-shot scrape helper: connect, `GET path`, return the
/// body. Used by `matchctl` and the e2e tests; also a convenient
/// stand-in for `curl` in environments without it.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some((head, body)) = raw.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response: no header terminator",
        ));
    };
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(std::io::Error::other(format!("HTTP error: {status_line}")));
    }
    Ok(body.to_string())
}
