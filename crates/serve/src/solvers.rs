//! Algorithm registry: protocol `algo` strings → boxed [`Mapper`]s.
//!
//! Mirrors the CLI's solver table so a request can name any mapper the
//! command line can. Mappers are cheap to construct (plain config
//! structs), so workers build one per job rather than sharing instances
//! across threads.

use match_baselines::{
    FastMapScheme, GreedyMapper, HillClimber, PolishedMatcher, RandomSearch, RecursiveBisection,
    RoundRobin, SimulatedAnnealing,
};
use match_core::{
    EvalBackend, IslandMatcher, Mapper, MatchConfig, Matcher, MultilevelConfig, SamplerMode,
};
use match_ga::{FastMapGa, GaConfig};
use match_multilevel::MultilevelMapper;

/// All names the registry accepts, for error messages and docs.
pub const KNOWN_ALGOS: &[&str] = &[
    "match",
    "match-batched",
    "match-sequential",
    "islands",
    "multilevel",
    "ga",
    "fastmap-ga",
    "ga-batched",
    "ga-sequential",
    "greedy",
    "hill",
    "hillclimb",
    "sa",
    "random",
    "roundrobin",
    "polish",
    "bisect",
    "fastmap",
];

/// Construct the solver a request named with the default (`Auto`)
/// evaluation backend, or `None` for an unknown name.
pub fn build_mapper(name: &str) -> Option<Box<dyn Mapper>> {
    build_mapper_with(name, EvalBackend::Auto)
}

/// Construct the solver a request named, pinning the evaluation backend
/// on the solvers with a batched pipeline (`match*`, `ga*`,
/// `multilevel`); backends are bit-exact, so the other solvers can
/// ignore it. `None` for an unknown name.
pub fn build_mapper_with(name: &str, backend: EvalBackend) -> Option<Box<dyn Mapper>> {
    Some(match name {
        // `match` resolves the sampler by thread count (`SamplerMode::Auto`);
        // the suffixed names pin one pipeline for A/B runs through the daemon.
        "match" => Box::new(Matcher::new(MatchConfig {
            backend,
            ..MatchConfig::default()
        })),
        "match-batched" => Box::new(Matcher::new(MatchConfig {
            sampler: SamplerMode::Batched,
            backend,
            ..MatchConfig::default()
        })),
        "match-sequential" => Box::new(Matcher::new(MatchConfig {
            sampler: SamplerMode::Sequential,
            backend,
            ..MatchConfig::default()
        })),
        "islands" => Box::new(IslandMatcher::default()),
        // Coarsen–solve–refine driver: handles square and rectangular
        // instances alike, so it is deliberately absent from
        // `requires_square`.
        "multilevel" => Box::new(MultilevelMapper::new(MultilevelConfig {
            backend,
            ..MultilevelConfig::default()
        })),
        // Plain `ga` keeps the library default (sequential, historical
        // stream); the suffixed names pin one generation pipeline for
        // A/B runs through the daemon, like the match-* pair above.
        "ga" | "fastmap-ga" => Box::new(FastMapGa::new(GaConfig {
            backend,
            ..GaConfig::paper_default()
        })),
        "ga-batched" => Box::new(FastMapGa::new(GaConfig {
            backend,
            ..GaConfig::batched_paper()
        })),
        "ga-sequential" => Box::new(FastMapGa::new(GaConfig {
            sampler: SamplerMode::Sequential,
            backend,
            ..GaConfig::paper_default()
        })),
        "greedy" => Box::new(GreedyMapper),
        "hill" | "hillclimb" => Box::new(HillClimber::default()),
        "sa" => Box::new(SimulatedAnnealing::default()),
        "random" => Box::new(RandomSearch::new(100_000)),
        "roundrobin" => Box::new(RoundRobin),
        "polish" => Box::new(PolishedMatcher::default()),
        "bisect" => Box::new(RecursiveBisection::default()),
        "fastmap" => Box::new(FastMapScheme::new(
            FastMapGa::new(GaConfig::paper_default()),
        )),
        _ => return None,
    })
}

/// The solvers that run the CE permutation pipeline and can be
/// warm-started from a stored stochastic matrix.
pub fn ce_family(name: &str) -> bool {
    matches!(name, "match" | "match-batched" | "match-sequential")
}

/// The [`MatchConfig`] behind a CE-family algo name, with the
/// evaluation backend pinned and the solver thread count optionally
/// overridden — the daemon caps per-solve parallelism so co-located
/// shards don't oversubscribe one host. `None` for non-CE names.
pub fn match_config_for(
    name: &str,
    backend: EvalBackend,
    threads: Option<usize>,
) -> Option<MatchConfig> {
    let sampler = match name {
        "match" => SamplerMode::Auto,
        "match-batched" => SamplerMode::Batched,
        "match-sequential" => SamplerMode::Sequential,
        _ => return None,
    };
    let mut cfg = MatchConfig {
        sampler,
        backend,
        ..MatchConfig::default()
    };
    if let Some(t) = threads {
        cfg.threads = t.max(1);
    }
    Some(cfg)
}

/// Whether a solver only accepts square instances (|tasks| == |resources|).
///
/// Permutation-model solvers assert squareness; checking here lets the
/// daemon refuse a mismatched request at admission with a clear error
/// instead of poisoning a worker thread.
pub fn requires_square(name: &str) -> bool {
    matches!(
        name,
        "match"
            | "match-batched"
            | "match-sequential"
            | "islands"
            | "ga"
            | "fastmap-ga"
            | "ga-batched"
            | "ga-sequential"
            | "polish"
            | "fastmap"
    )
}

/// A human-readable list of known algorithm names for error payloads.
pub fn known_algos_list() -> String {
    KNOWN_ALGOS.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_known_name_builds() {
        for name in KNOWN_ALGOS {
            assert!(build_mapper(name).is_some(), "registry missing {name}");
            for backend in [EvalBackend::Auto, EvalBackend::Scalar, EvalBackend::Simd] {
                assert!(
                    build_mapper_with(name, backend).is_some(),
                    "registry missing {name} with backend {backend}"
                );
            }
        }
    }

    #[test]
    fn unknown_name_is_refused() {
        assert!(build_mapper("quantum-annealer").is_none());
    }

    #[test]
    fn ce_family_matches_match_config_for() {
        for name in KNOWN_ALGOS {
            assert_eq!(
                ce_family(name),
                match_config_for(name, EvalBackend::Auto, None).is_some(),
                "{name}"
            );
        }
        let cfg = match_config_for("match-batched", EvalBackend::Auto, Some(3)).unwrap();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.sampler, SamplerMode::Batched);
        // threads = 0 is clamped, not passed through to validate().
        let cfg = match_config_for("match", EvalBackend::Auto, Some(0)).unwrap();
        assert_eq!(cfg.threads, 1);
    }

    #[test]
    fn multilevel_is_registered_and_not_square_only() {
        assert!(build_mapper("multilevel").is_some());
        assert!(!requires_square("multilevel"));
    }

    #[test]
    fn square_only_solvers_are_flagged() {
        assert!(requires_square("match"));
        assert!(requires_square("match-batched"));
        assert!(requires_square("ga"));
        assert!(requires_square("ga-batched"));
        assert!(requires_square("ga-sequential"));
        assert!(!requires_square("greedy"));
        assert!(!requires_square("sa"));
    }
}
