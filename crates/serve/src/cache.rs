//! LRU result cache.
//!
//! Every registered solver is deterministic given (instance, seed), so
//! a completed solve can be replayed from memory: the cache maps the
//! canonical [`job_key`](crate::hash::job_key) to the stored mapping
//! and cost, and a repeat submission returns in microseconds with a
//! byte-identical mapping. Deadline-truncated results are *not* cached
//! by the daemon — a truncated search depends on wall-clock timing, so
//! caching it would leak nondeterminism into later identical requests.
//!
//! Recency is tracked with a monotonic stamp per entry; eviction scans
//! for the minimum stamp. That is O(capacity) per eviction, which is
//! irrelevant at daemon cache sizes (hundreds of entries, microseconds
//! per scan) and keeps the structure a plain `HashMap` — no unsafe
//! linked lists in a `#![forbid(unsafe_code)]` workspace.

use std::collections::HashMap;

/// A cached solve result.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// The stored task→resource assignment.
    pub mapping: Vec<usize>,
    /// Its execution time (ET, Eq. 2).
    pub cost: f64,
    /// Display name of the solver that produced it.
    pub algo: String,
}

#[derive(Debug)]
struct Entry {
    value: CachedResult,
    stamp: u64,
}

/// A fixed-capacity least-recently-used map from job key to result.
#[derive(Debug)]
pub struct LruCache {
    map: HashMap<u64, Entry>,
    cap: usize,
    clock: u64,
}

impl LruCache {
    /// An empty cache holding at most `cap` entries. `cap == 0`
    /// disables caching (every `get` misses, every `put` is dropped).
    pub fn new(cap: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(cap.min(1024)),
            cap,
            clock: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<CachedResult> {
        self.clock += 1;
        let stamp = self.clock;
        self.map.get_mut(&key).map(|e| {
            e.stamp = stamp;
            e.value.clone()
        })
    }

    /// Insert (or refresh) a key, evicting the least-recently-used
    /// entry when over capacity. Returns `true` when an entry was
    /// evicted to make room — the signal behind the daemon's
    /// `match_serve_cache_evictions_total` metric.
    pub fn put(&mut self, key: u64, value: CachedResult) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.clock += 1;
        let stamp = self.clock;
        self.map.insert(key, Entry { value, stamp });
        if self.map.len() > self.cap {
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                self.map.remove(&oldest);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: usize) -> CachedResult {
        CachedResult {
            mapping: vec![tag, tag + 1],
            cost: tag as f64,
            algo: "t".into(),
        }
    }

    #[test]
    fn hit_returns_stored_value() {
        let mut c = LruCache::new(4);
        assert!(c.get(1).is_none());
        c.put(1, result(7));
        assert_eq!(c.get(1), Some(result(7)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(!c.put(1, result(1)));
        assert!(!c.put(2, result(2)));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1).is_some());
        assert!(c.put(3, result(3)), "over capacity must report eviction");
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_some(), "recently used survives");
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.put(1, result(1));
        c.put(2, result(2));
        c.put(1, result(10)); // refresh + overwrite
        c.put(3, result(3));
        assert_eq!(c.get(1), Some(result(10)));
        assert!(c.get(2).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put(1, result(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }
}
