//! `match-serve` — a long-running mapping service.
//!
//! Turns the workspace's one-shot solvers into a daemon: clients submit
//! mapping instances over a JSONL-over-TCP protocol, a bounded job
//! queue applies admission control with explicit backpressure, a worker
//! pool dispatches to any registered [`match_core::Mapper`], and an LRU
//! cache keyed by a canonical instance hash answers repeated requests
//! in microseconds. Per-request deadlines cancel solves cooperatively
//! via [`match_core::StopToken`]; shutdown drains in-flight work before
//! exiting.
//!
//! The crate follows the workspace's zero-external-dependency
//! discipline: `std::net` sockets, `std::sync` primitives, and
//! hand-rolled JSON framing in the style of `match-telemetry`.
//!
//! ```no_run
//! use match_serve::{Client, Request, Server, ServeConfig, SolveRequest};
//!
//! let handle = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! })?;
//! let mut client = Client::connect(handle.local_addr())?;
//! let resp = client.call(&Request::Solve(SolveRequest {
//!     id: "job-1".into(),
//!     algo: "match".into(),
//!     seed: 7,
//!     deadline_ms: None,
//!     backend: None,
//!     tig: std::fs::read_to_string("app.tig")?,
//!     platform: std::fs::read_to_string("cluster.res")?,
//! }))?;
//! println!("{resp:?}");
//! handle.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod http;
mod io;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod server;
pub mod shard;
pub mod solvers;

pub use cache::{CachedResult, LruCache};
pub use client::Client;
pub use hash::{instance_hash, job_key, structure_hash};
pub use http::http_get;
pub use protocol::{
    encode_request, encode_request_line, encode_response, encode_response_line, parse_request,
    parse_response, ProtoError, RemapRequest, Request, Response, SolveRequest, SolveResponse,
    StatsResponse,
};
pub use queue::{JobQueue, PushError};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use shard::{ShardPool, SlotRing, SLOTS};
