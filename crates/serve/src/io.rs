//! Non-blocking connection front-end: a few I/O threads multiplex every
//! client socket instead of two threads per connection.
//!
//! The previous front-end spawned a reader and a writer thread per
//! client, so a thousand idle JSONL connections cost two thousand parked
//! threads. Here each I/O thread owns a set of non-blocking sockets and
//! runs a poll loop in the zero-heavy-dependency spirit of the
//! workspace: read until `WouldBlock`, split complete lines, dispatch
//! them to the server's request handler, drain the per-connection
//! response channel into a write buffer, write until `WouldBlock`.
//! Solver work never runs on an I/O thread — dispatch only parses and
//! enqueues, exactly like the old reader threads, so admission control,
//! deadlines and metrics seams are unchanged.
//!
//! Thread 0 additionally owns the listener and deals new connections
//! round-robin across the pool. Responses still travel through one mpsc
//! channel per connection, preserving the out-of-order reply contract
//! (workers answer jobs at their own pace; clients match on `id`).
//!
//! Lifecycle: a connection is dropped once its peer is gone — read EOF
//! or error — *and* every response owed to it has been written. The
//! owed-responses condition falls out of channel semantics: the
//! connection's own sender is dropped at EOF, every admitted job holds a
//! sender clone until answered, so `try_recv` returning `Disconnected`
//! with an empty write buffer means nothing is outstanding. On shutdown
//! the server joins its workers first (all responses are then in the
//! channels), flips the exit flag, and each I/O thread performs a final
//! blocking flush before closing its sockets.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::protocol::{encode_response_line, Response};

/// Parsed-line handler supplied by the server: dispatch one request
/// line, sending any responses through the connection's channel.
pub(crate) type Dispatch = Arc<dyn Fn(&str, &mpsc::Sender<Response>) + Send + Sync>;

/// How long an I/O thread sleeps when a full pass made no progress.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Per-pass read chunk; connections buffer partial lines across passes.
const READ_CHUNK: usize = 16 * 1024;

/// One multiplexed client connection.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet split into complete lines.
    rbuf: Vec<u8>,
    /// Encoded responses not yet fully written.
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written to the socket.
    wpos: usize,
    /// Our clone of the response sender; dropped at read-EOF so that
    /// `rx` disconnects once the last in-flight job answers.
    tx: Option<mpsc::Sender<Response>>,
    rx: mpsc::Receiver<Response>,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel();
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            tx: Some(tx),
            rx,
            dead: false,
        })
    }

    /// One non-blocking pass: read, dispatch, drain, write. Returns
    /// true when any byte or message moved.
    fn poll(&mut self, dispatch: &Dispatch, exiting: bool) -> bool {
        let mut progress = false;

        // Read until WouldBlock, then hand every complete line to the
        // dispatcher. Partial trailing lines stay buffered.
        if self.tx.is_some() {
            let mut eof = false;
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        progress = true;
                        break;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Peer reset: nothing we still owe is deliverable.
                        self.dead = true;
                        return true;
                    }
                }
            }
            while let Some(nl) = self.rbuf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.rbuf.drain(..=nl).collect();
                progress = true;
                if let Ok(text) = std::str::from_utf8(&line) {
                    let text = text.trim();
                    if !text.is_empty() {
                        if let Some(tx) = &self.tx {
                            dispatch(text, tx);
                        }
                    }
                }
            }
            if eof {
                // Half-close: stop reading, keep writing what we owe.
                self.tx = None;
            }
        }

        // Drain finished responses into the write buffer.
        loop {
            match self.rx.try_recv() {
                Ok(resp) => {
                    self.wbuf
                        .extend_from_slice(encode_response_line(&resp).as_bytes());
                    progress = true;
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Reader closed and no job holds a sender: once the
                    // write buffer empties the connection is complete.
                    if self.wpos == self.wbuf.len() {
                        self.dead = true;
                    }
                    break;
                }
            }
        }

        // Write until WouldBlock.
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(n) => {
                    self.wpos += n;
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
        if self.wpos == self.wbuf.len() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }

        if self.dead {
            return true;
        }
        if exiting {
            // Workers are already joined, so everything owed is in
            // `wbuf` by now. One blocking flush, then close.
            let _ = self.stream.set_nonblocking(false);
            if self.wpos < self.wbuf.len() {
                let _ = self.stream.write_all(&self.wbuf[self.wpos..]);
            }
            let _ = self.stream.flush();
            self.dead = true;
            progress = true;
        }
        progress
    }
}

/// Spawn the I/O pool: `threads` poll loops, with thread 0 accepting
/// from `listener` and dealing streams round-robin across the pool.
pub(crate) fn spawn(
    listener: TcpListener,
    threads: usize,
    exit: Arc<AtomicBool>,
    dispatch: Dispatch,
) -> Vec<JoinHandle<()>> {
    let threads = threads.max(1);
    let mut senders = Vec::with_capacity(threads);
    let mut receivers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers
        .into_iter()
        .enumerate()
        .map(|(i, injector)| {
            let exit = Arc::clone(&exit);
            let dispatch = Arc::clone(&dispatch);
            let acceptor = (i == 0).then(|| (listener.try_clone(), senders.clone()));
            thread::spawn(move || match acceptor {
                Some((Ok(listener), senders)) => {
                    io_loop(Some((listener, senders)), injector, &exit, &dispatch)
                }
                _ => io_loop(None, injector, &exit, &dispatch),
            })
        })
        .collect()
}

fn io_loop(
    mut acceptor: Option<(TcpListener, Vec<mpsc::Sender<TcpStream>>)>,
    injector: mpsc::Receiver<TcpStream>,
    exit: &AtomicBool,
    dispatch: &Dispatch,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next = 0usize;
    loop {
        // Latch the flag once per pass so every connection gets exactly
        // one final-flush poll after it flips.
        let exiting = exit.load(Ordering::SeqCst);
        let mut progress = false;

        if let Some((listener, senders)) = &mut acceptor {
            if exiting {
                acceptor = None;
            } else {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            progress = true;
                            let _ = senders[next % senders.len()].send(stream);
                            next += 1;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            acceptor = None;
                            break;
                        }
                    }
                }
            }
        }

        while let Ok(stream) = injector.try_recv() {
            if let Ok(conn) = Conn::new(stream) {
                conns.push(conn);
                progress = true;
            }
        }

        for conn in &mut conns {
            if conn.poll(dispatch, exiting) {
                progress = true;
            }
        }
        conns.retain(|c| !c.dead);

        if exiting && conns.is_empty() {
            break;
        }
        if !progress {
            thread::sleep(IDLE_SLEEP);
        }
    }
}
