//! The daemon: non-blocking I/O front-end, solver worker pool, and the
//! warm-start seam.
//!
//! ## Thread structure
//!
//! ```text
//!   I/O threads (few) ── poll every client socket ──► parse line → admit job
//!     │      ▲                                             │
//!     │      └── per-connection mpsc ◄── responses ────────┤
//!     │                                                    ▼
//!     │                                  bounded JobQueue (admission control)
//!     │                                                    │
//!     └── thread 0 also accepts            worker pool (N threads)
//!                                            pop → solve → reply
//! ```
//!
//! Admission happens on an I/O thread: parse the instance, validate the
//! algorithm, then [`JobQueue::try_push`]. A full queue is answered
//! immediately with the protocol's `rejected` backpressure response —
//! the connection never blocks on a busy solver pool. Responses travel
//! back through a per-connection mpsc channel drained by the owning I/O
//! thread, so a worker finishing job 3 can reply before job 1 is done
//! (clients match on `id`). Thousands of idle connections cost buffer
//! space, not parked threads — see [`crate::io`].
//!
//! ## Warm starts
//!
//! With [`ServeConfig::warm_alpha`] > 0, CE-family solves on square
//! instances run through [`Matcher::run_warm_controlled`]: the daemon
//! looks up the instance's *structure hash* (weights quantized/excluded,
//! so near-duplicate graphs hit) in a [`WarmStore`], seeds the CE
//! stochastic matrix as `α·P_prior + (1 − α)·uniform` on a hit, and
//! persists the converged matrix after every *cold* solve. Warm hits
//! report `warm:true` and `iterations_saved` against the stored cold
//! baseline; the baseline entry is never overwritten by a warm solve, so
//! savings stay measured against a true cold start.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or [`ServerHandle::request_shutdown`]) flips
//! the shutdown flag and closes the queue. Closing the queue refuses new
//! admissions but lets workers drain everything already queued — with
//! [`ServeConfig::drain_deadline`] set, a watchdog trips the drain
//! [`StopFlag`] when the drain overruns, cancelling in-flight solves
//! cooperatively instead of blocking shutdown on a slow solve. The warm
//! store is flushed **and fsynced** before the daemon exits.
//!
//! ## Telemetry
//!
//! With a trace path configured the daemon records service-level events
//! through `match-telemetry`: a `queue_wait` and `solve` span plus one
//! `iter` event per job (`iter` = job sequence number), `cache_hit` /
//! `cache_miss` / `rejected` / `cancelled` / `warm_hit` /
//! `iterations_saved` counters, and a `queue_depth` gauge sample at
//! every admission, plus request-scoped `req:{trace_id}:…` spans keyed
//! by the `trace_id` echoed in each solve response.
//!
//! ## Metrics
//!
//! Independent of tracing, every daemon carries a live `match-metrics`
//! registry. All `match_serve_*` series carry a `shard` label
//! ([`ServeConfig::shard`], default `"0"`) so a router can scrape many
//! backends into one dashboard without series collisions. Snapshots are
//! served two ways: the JSONL `{"op":"metrics"}` command and, when
//! [`ServeConfig::metrics_addr`] is set, an HTTP `GET /metrics` side
//! port in Prometheus text format.

use std::fs::File;
use std::io::{self, BufWriter};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use match_core::{
    remap_incremental, EvalBackend, MappingInstance, Matcher, RemapConfig, RemapStrategy, StopFlag,
    StopToken,
};
use match_graph::io::from_text;
use match_graph::{ResourceGraph, TaskGraph};
use match_metrics::{Counter, Gauge, LatencyHistogram, Metrics, MetricsRecorder};
use match_telemetry::{Event, IterEvent, JsonlRecorder, Recorder, SpanEvent};
use match_warmstore::{WarmEntry, WarmStore};

use crate::cache::{CachedResult, LruCache};
use crate::hash::{job_key, structure_hash};
use crate::http;
use crate::io as serve_io;
use crate::protocol::{
    parse_request, RemapRequest, Request, Response, SolveRequest, SolveResponse, StatsResponse,
};
use crate::queue::{JobQueue, PushError};
use crate::solvers;

/// Daemon configuration; see `matchctl serve` for the CLI surface.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7117` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Connection I/O threads multiplexing all client sockets.
    pub io_threads: usize,
    /// Job queue capacity — the admission-control bound.
    pub queue_cap: usize,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Optional JSONL trace file for service telemetry.
    pub trace: Option<PathBuf>,
    /// Optional HTTP side port serving `GET /metrics` Prometheus
    /// scrapes, e.g. `127.0.0.1:9117` (`:0` picks an ephemeral port).
    /// The JSONL `{"op":"metrics"}` command works regardless.
    pub metrics_addr: Option<String>,
    /// Value of the `shard` label on every `match_serve_*` metric
    /// series — set per backend in a sharded deployment.
    pub shard: String,
    /// Warm-start mixing weight `α` in `α·P_prior + (1 − α)·uniform`.
    /// `0` (the default) disables warm starts entirely; the cold path
    /// is then bit-identical to previous releases.
    pub warm_alpha: f64,
    /// Warm-store log path. `None` with `warm_alpha > 0` keeps priors
    /// in memory only (lost at exit).
    pub warm_store: Option<PathBuf>,
    /// Warm-store capacity in entries (LRU beyond this).
    pub warm_cap: usize,
    /// Per-solve thread cap for CE-family solves — lets co-located
    /// shards split one host's cores instead of oversubscribing it.
    /// `None` keeps each solver's own default.
    pub solver_threads: Option<usize>,
    /// Bound on the shutdown drain: when draining queued work takes
    /// longer than this, in-flight solves are cancelled cooperatively
    /// (they still answer, marked `cancelled`). `None` drains without
    /// a bound, as previous releases did.
    pub drain_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7117".to_string(),
            workers: match_par::default_threads(),
            io_threads: 2,
            queue_cap: 16,
            cache_cap: 256,
            trace: None,
            metrics_addr: None,
            shard: "0".to_string(),
            warm_alpha: 0.0,
            warm_store: None,
            warm_cap: 512,
            solver_threads: None,
            drain_deadline: None,
        }
    }
}

/// Final service counters returned when the daemon exits.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Counter snapshot at shutdown.
    pub stats: StatsResponse,
    /// Daemon lifetime.
    pub wall: Duration,
    /// Trace lines written, when tracing was enabled.
    pub trace_lines: Option<u64>,
    /// Warm-start hits served, when warm starts were enabled.
    pub warm_hits: u64,
}

/// Remap-specific parameters carried alongside a solve job.
struct RemapParams {
    /// The prior task→resource assignment to re-map from.
    prior: Vec<usize>,
    /// Migration-cost weight μ.
    mu: u64,
}

/// One admitted unit of work.
struct Job {
    seq: u64,
    id: String,
    algo: String,
    seed: u64,
    deadline: Option<Duration>,
    backend: EvalBackend,
    inst: MappingInstance,
    key: u64,
    /// Structure hash for the warm store — `Some` only for CE-family
    /// solves on square instances with warm starts enabled.
    skey: Option<u64>,
    /// `Some` for `remap` requests: the prior mapping to warm-start from
    /// and the migration weight. Remap jobs bypass the result cache —
    /// the cache key does not cover the prior.
    remap: Option<RemapParams>,
    enqueued: Instant,
    resp: mpsc::Sender<Response>,
}

/// Trace sink shared across worker and connection threads.
struct TraceSink {
    rec: Mutex<Option<JsonlRecorder<BufWriter<File>>>>,
}

impl TraceSink {
    fn disabled() -> Self {
        TraceSink {
            rec: Mutex::new(None),
        }
    }

    fn create(path: &Path) -> io::Result<Self> {
        Ok(TraceSink {
            rec: Mutex::new(Some(JsonlRecorder::create(path)?)),
        })
    }

    fn record(&self, event: Event) {
        if let Some(rec) = self.rec.lock().expect("trace sink poisoned").as_mut() {
            rec.record(event);
        }
    }

    /// Flush and close the sink; returns lines written (None if disabled).
    fn finish(&self) -> io::Result<Option<u64>> {
        match self.rec.lock().expect("trace sink poisoned").take() {
            Some(rec) => {
                let lines = rec.lines();
                rec.finish()?;
                Ok(Some(lines))
            }
            None => Ok(None),
        }
    }
}

/// Lock-free service counters.
#[derive(Default)]
struct Counters {
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    evaluations: AtomicU64,
    warm_hits: AtomicU64,
}

/// Handles into the live [`Metrics`] registry, resolved once at
/// startup so the request path never takes the registration lock.
/// Per-algorithm latency histograms are the exception: they are keyed
/// by request content, so workers resolve them per job (one short
/// mutex hold against a full solve).
struct ServeMetrics {
    req_solve: Counter,
    req_remap: Counter,
    req_stats: Counter,
    req_metrics: Counter,
    req_shutdown: Counter,
    jobs: Counter,
    rejected: Counter,
    cancelled: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    warm_hits: Counter,
    warm_iterations_saved: Counter,
    queue_depth: Gauge,
    in_flight: Gauge,
    queue_wait: LatencyHistogram,
}

impl ServeMetrics {
    fn new(metrics: &Metrics, shard: &str) -> Self {
        let labelled = |name: &'static str| metrics.counter_with(name, &[("shard", shard)]);
        let req = |op: &str| {
            metrics.counter_with(
                "match_serve_requests_total",
                &[("op", op), ("shard", shard)],
            )
        };
        ServeMetrics {
            req_solve: req("solve"),
            req_remap: req("remap"),
            req_stats: req("stats"),
            req_metrics: req("metrics"),
            req_shutdown: req("shutdown"),
            jobs: labelled("match_serve_jobs_total"),
            rejected: labelled("match_serve_rejected_total"),
            cancelled: labelled("match_serve_cancelled_total"),
            cache_hits: labelled("match_serve_cache_hits_total"),
            cache_misses: labelled("match_serve_cache_misses_total"),
            cache_evictions: labelled("match_serve_cache_evictions_total"),
            warm_hits: labelled("match_serve_warm_hits_total"),
            warm_iterations_saved: labelled("match_serve_warm_iterations_saved_total"),
            queue_depth: metrics.gauge_with("match_serve_queue_depth", &[("shard", shard)]),
            in_flight: metrics.gauge_with("match_serve_in_flight", &[("shard", shard)]),
            queue_wait: metrics.histogram_with("match_serve_queue_wait_ns", &[("shard", shard)]),
        }
    }
}

/// State shared by every thread in the daemon.
struct Ctx {
    queue: JobQueue<Job>,
    cache: Mutex<LruCache>,
    counters: Counters,
    best: Mutex<f64>,
    sink: TraceSink,
    metrics: Metrics,
    sm: ServeMetrics,
    shutdown: AtomicBool,
    seq: AtomicU64,
    workers: usize,
    shard: String,
    warm: Option<WarmStore>,
    warm_alpha: f64,
    solver_threads: Option<usize>,
    drain_flag: StopFlag,
}

impl Ctx {
    fn stats_snapshot(&self) -> StatsResponse {
        StatsResponse {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_cap: self.queue.capacity() as u64,
            workers: self.workers as u64,
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }
}

/// Parse the embedded instance text into a [`MappingInstance`].
pub(crate) fn parse_instance(tig: &str, platform: &str) -> Result<MappingInstance, String> {
    let tig = from_text(tig)
        .map_err(|e| format!("tig: {e}"))
        .and_then(|g| TaskGraph::new(g).map_err(|e| format!("tig: {e}")))?;
    let platform = from_text(platform)
        .map_err(|e| format!("platform: {e}"))
        .and_then(|g| ResourceGraph::new(g).map_err(|e| format!("platform: {e}")))?;
    Ok(MappingInstance::new(&tig, &platform))
}

/// The mapping-service daemon.
pub struct Server;

impl Server {
    /// Bind, spawn the worker pool and I/O threads, and return a handle.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let sink = match &config.trace {
            Some(path) => TraceSink::create(path)?,
            None => TraceSink::disabled(),
        };
        sink.record(Event::RunStart {
            solver: "match-serve".into(),
            tasks: 0,
            resources: 0,
        });

        let metrics = Metrics::new();
        let sm = ServeMetrics::new(&metrics, &config.shard);
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let warm = if config.warm_alpha > 0.0 {
            Some(match &config.warm_store {
                Some(path) => WarmStore::open(path, config.warm_cap.max(1))?,
                None => WarmStore::in_memory(config.warm_cap.max(1)),
            })
        } else {
            None
        };

        let workers = config.workers.max(1);
        let ctx = Arc::new(Ctx {
            queue: JobQueue::new(config.queue_cap.max(1)),
            cache: Mutex::new(LruCache::new(config.cache_cap)),
            counters: Counters::default(),
            best: Mutex::new(f64::INFINITY),
            sink,
            metrics,
            sm,
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            workers,
            shard: config.shard.clone(),
            warm,
            warm_alpha: config.warm_alpha,
            solver_threads: config.solver_threads,
            drain_flag: StopFlag::new(),
        });

        let scrape_thread = metrics_listener.map(|listener| {
            let metrics = ctx.metrics.clone();
            let ctx = Arc::clone(&ctx);
            thread::spawn(move || {
                http::serve_scrapes(listener, metrics, move || {
                    ctx.shutdown.load(Ordering::SeqCst)
                })
            })
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                thread::spawn(move || {
                    while let Some(job) = ctx.queue.pop() {
                        ctx.sm.queue_depth.set(ctx.queue.len() as i64);
                        ctx.sm.in_flight.inc();
                        process_job(job, &ctx);
                        ctx.sm.in_flight.dec();
                    }
                })
            })
            .collect();

        let io_exit = Arc::new(AtomicBool::new(false));
        let dispatch: serve_io::Dispatch = {
            let ctx = Arc::clone(&ctx);
            Arc::new(move |line, tx| handle_request_line(line, &ctx, tx))
        };
        let io_threads = serve_io::spawn(
            listener,
            config.io_threads.max(1),
            Arc::clone(&io_exit),
            dispatch,
        );

        Ok(ServerHandle {
            ctx,
            local_addr,
            metrics_addr,
            started: Instant::now(),
            drain_deadline: config.drain_deadline,
            worker_handles,
            io_threads,
            io_exit,
            scrape_thread,
        })
    }
}

/// Owner's view of a running daemon.
pub struct ServerHandle {
    ctx: Arc<Ctx>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    started: Instant,
    drain_deadline: Option<Duration>,
    worker_handles: Vec<JoinHandle<()>>,
    io_threads: Vec<JoinHandle<()>>,
    io_exit: Arc<AtomicBool>,
    scrape_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound HTTP `/metrics` side-port address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A clone of the daemon's live metrics handle (always enabled).
    pub fn metrics(&self) -> Metrics {
        self.ctx.metrics.clone()
    }

    /// Live counter snapshot.
    pub fn stats(&self) -> StatsResponse {
        self.ctx.stats_snapshot()
    }

    /// Warm-start hits served so far.
    pub fn warm_hits(&self) -> u64 {
        self.ctx.counters.warm_hits.load(Ordering::Relaxed)
    }

    /// Whether shutdown has been requested (by a client or the owner).
    pub fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::SeqCst)
    }

    /// Ask the daemon to stop: no new admissions, drain queued work.
    pub fn request_shutdown(&self) {
        self.ctx.request_shutdown();
    }

    /// Block until a client requests shutdown, then drain and exit.
    pub fn wait(self) -> io::Result<ServeSummary> {
        while !self.ctx.shutdown.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(20));
        }
        self.finish()
    }

    /// Request shutdown, drain in-flight work, and exit.
    pub fn shutdown(self) -> io::Result<ServeSummary> {
        self.ctx.request_shutdown();
        self.finish()
    }

    fn finish(mut self) -> io::Result<ServeSummary> {
        // Bound the drain: if joining the workers overruns the deadline,
        // trip the shared drain flag — every in-flight and queued job's
        // stop token carries it, so solves cancel cooperatively and
        // still answer their clients (marked `cancelled`).
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let watchdog = self.drain_deadline.map(|deadline| {
            let flag = self.ctx.drain_flag.clone();
            thread::spawn(move || {
                if done_rx.recv_timeout(deadline).is_err() {
                    flag.trip();
                }
            })
        });
        // Workers first: they drain the closed queue, completing (and
        // answering) everything admitted before shutdown.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        let _ = done_tx.send(());
        if let Some(watchdog) = watchdog {
            let _ = watchdog.join();
        }
        // All responses are now sitting in per-connection channels; the
        // I/O threads flush them on their way out.
        self.io_exit.store(true, Ordering::SeqCst);
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(scrape) = self.scrape_thread.take() {
            let _ = scrape.join();
        }
        // Durability point: everything learned this run is on disk
        // before the process can exit.
        if let Some(warm) = &self.ctx.warm {
            warm.flush()?;
        }
        let stats = self.ctx.stats_snapshot();
        let wall = self.started.elapsed();
        let best = *self.ctx.best.lock().expect("best poisoned");
        self.ctx.sink.record(Event::RunEnd {
            best: if best.is_finite() { best } else { 0.0 },
            iterations: stats.jobs,
            evaluations: self.ctx.counters.evaluations.load(Ordering::Relaxed),
            wall_ns: wall.as_nanos() as u64,
        });
        let trace_lines = self.ctx.sink.finish()?;
        Ok(ServeSummary {
            stats,
            wall,
            trace_lines,
            warm_hits: self.ctx.counters.warm_hits.load(Ordering::Relaxed),
        })
    }
}

/// Dispatch one parsed request line from an I/O thread. Control ops
/// answer inline; solves go through admission control. Never blocks on
/// solver work.
fn handle_request_line(line: &str, ctx: &Arc<Ctx>, tx: &mpsc::Sender<Response>) {
    match parse_request(line) {
        Err(e) => {
            let _ = tx.send(Response::Error {
                id: String::new(),
                error: e.to_string(),
            });
        }
        Ok(Request::Stats) => {
            ctx.sm.req_stats.inc();
            let _ = tx.send(Response::Stats(ctx.stats_snapshot()));
        }
        Ok(Request::Metrics) => {
            ctx.sm.req_metrics.inc();
            let _ = tx.send(Response::Metrics {
                text: ctx.metrics.snapshot().to_prometheus(),
            });
        }
        Ok(Request::Shutdown) => {
            ctx.sm.req_shutdown.inc();
            let _ = tx.send(Response::Bye);
            ctx.request_shutdown();
            // The connection stays open: later solves on it get a
            // clean "shutting down" error instead of a hangup.
        }
        Ok(Request::Solve(req)) => {
            ctx.sm.req_solve.inc();
            admit(req, None, ctx, tx)
        }
        Ok(Request::Remap(RemapRequest { solve, prior, mu })) => {
            ctx.sm.req_remap.inc();
            admit(solve, Some(RemapParams { prior, mu }), ctx, tx)
        }
    }
}

/// Validate a solve or remap request and push it through admission
/// control.
fn admit(req: SolveRequest, remap: Option<RemapParams>, ctx: &Ctx, tx: &mpsc::Sender<Response>) {
    let reject = |error: String| {
        let _ = tx.send(Response::Error {
            id: req.id.clone(),
            error,
        });
    };
    if solvers::build_mapper(&req.algo).is_none() {
        reject(format!(
            "unknown algorithm `{}` (known: {})",
            req.algo,
            solvers::known_algos_list()
        ));
        return;
    }
    if remap.is_some() && !solvers::ce_family(&req.algo) {
        reject(format!(
            "op `remap` needs a CE-family algorithm, got `{}`",
            req.algo
        ));
        return;
    }
    let backend = match req.backend.as_deref() {
        None => EvalBackend::Auto,
        Some(name) => match EvalBackend::parse(name) {
            Some(b) => b,
            None => {
                reject(format!(
                    "unknown backend `{name}` (known: auto, scalar, simd)"
                ));
                return;
            }
        },
    };
    let inst = match parse_instance(&req.tig, &req.platform) {
        Ok(inst) => inst,
        Err(e) => {
            reject(e);
            return;
        }
    };
    if solvers::requires_square(&req.algo) && !inst.is_square() {
        reject(format!(
            "algorithm `{}` needs a square instance, got {} tasks on {} resources",
            req.algo,
            inst.n_tasks(),
            inst.n_resources()
        ));
        return;
    }
    if let Some(rm) = &remap {
        if rm.prior.len() != inst.n_tasks() {
            reject(format!(
                "prior mapping has {} entries, instance has {} tasks",
                rm.prior.len(),
                inst.n_tasks()
            ));
            return;
        }
    }
    let key = job_key(&inst, &req.algo, req.seed);
    // Remap jobs warm-start from the request's prior, not the store.
    let skey = (remap.is_none()
        && ctx.warm.is_some()
        && solvers::ce_family(&req.algo)
        && inst.is_square())
    .then(|| structure_hash(&inst));
    let job = Job {
        seq: ctx.seq.fetch_add(1, Ordering::Relaxed),
        id: req.id.clone(),
        algo: req.algo.clone(),
        seed: req.seed,
        deadline: req.deadline_ms.map(Duration::from_millis),
        backend,
        inst,
        key,
        skey,
        remap,
        enqueued: Instant::now(),
        resp: tx.clone(),
    };
    match ctx.queue.try_push(job) {
        Ok(depth) => {
            ctx.sm.queue_depth.set(depth as i64);
            ctx.sink.record(Event::Sample {
                name: "queue_depth".into(),
                value: depth as u64,
            });
        }
        Err(PushError::Full(depth)) => {
            ctx.counters.rejected.fetch_add(1, Ordering::Relaxed);
            ctx.sm.rejected.inc();
            ctx.sink.record(Event::Counter {
                name: "rejected".into(),
                value: 1,
            });
            let _ = tx.send(Response::Rejected {
                id: req.id.clone(),
                queue_depth: depth as u64,
                queue_cap: ctx.queue.capacity() as u64,
            });
        }
        Err(PushError::Closed) => reject("shutting down".to_string()),
    }
}

/// What one solve produced, however it ran.
struct Solved {
    algo: String,
    cost: f64,
    iterations: u64,
    evaluations: u64,
    mapping: Vec<usize>,
    warm: bool,
    iterations_saved: u64,
}

/// Solve one admitted job on a worker thread.
fn process_job(job: Job, ctx: &Ctx) {
    if job.remap.is_some() {
        return process_remap(job, ctx);
    }
    let queue_wait_ns = job.enqueued.elapsed().as_nanos() as u64;
    let solve_start = Instant::now();
    let trace_id = format!("{}#{}", job.id, job.seq);
    ctx.sm.queue_wait.record(queue_wait_ns);
    let latency = ctx.metrics.histogram_with(
        "match_serve_solve_latency_ns",
        &[("algo", &job.algo), ("shard", &ctx.shard)],
    );

    // Cache first: a hit answers in microseconds with a byte-identical
    // mapping (every registered solver is deterministic in the seed).
    let hit = ctx.cache.lock().expect("cache poisoned").get(job.key);
    if let Some(hit) = hit {
        let solve_ns = solve_start.elapsed().as_nanos() as u64;
        ctx.counters.jobs.fetch_add(1, Ordering::Relaxed);
        ctx.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        ctx.sm.jobs.inc();
        ctx.sm.cache_hits.inc();
        latency.record(solve_ns);
        record_job_events(
            ctx,
            &trace_id,
            job.seq,
            queue_wait_ns,
            solve_ns,
            hit.cost,
            "cache_hit",
        );
        let _ = job.resp.send(Response::Solved(SolveResponse {
            id: job.id,
            trace_id,
            algo: hit.algo,
            seed: job.seed,
            backend: job.backend.as_str().to_string(),
            cost: hit.cost,
            cached: true,
            cancelled: false,
            warm: false,
            iterations_saved: 0,
            evaluations: 0,
            iterations: 0,
            queue_wait_ns,
            solve_ns,
            migrated_tasks: 0,
            mapping: hit.mapping,
        }));
        return;
    }

    // Deadline and drain cancellation share one token: whichever fires
    // first stops the solve cooperatively.
    let stop = {
        let base = StopToken::with_flag(ctx.drain_flag.clone());
        match job.deadline {
            Some(d) => base.and_deadline(job.enqueued + d),
            None => base,
        }
    };
    let mut rng = StdRng::seed_from_u64(job.seed);
    // Bridge solver telemetry (iterations, evaluations, full-vs-delta
    // counters) into the live registry. The recorder seam guarantees
    // the RNG stream is identical with or without a listener, so cached
    // and fresh results stay byte-identical.
    let mut solver_metrics =
        MetricsRecorder::with_backend(&ctx.metrics, &job.algo, job.backend.as_str());

    let solved: Result<Solved, String> = match (job.skey, &ctx.warm) {
        (Some(skey), Some(store)) => {
            // Warm-start seam: CE-family solve through the Matcher's
            // warm API, seeded from the structure-keyed prior when one
            // exists.
            let cfg = solvers::match_config_for(&job.algo, job.backend, ctx.solver_threads)
                .expect("skey is only set for CE-family algos");
            let matcher = Matcher::new(cfg);
            let prior = store.get(skey);
            let alpha = ctx.warm_alpha;
            let n = job.inst.n_tasks();
            let warm = matches!(&prior, Some(e) if e.n == n);
            let run = catch_unwind(AssertUnwindSafe(|| {
                matcher.run_warm_controlled(
                    &job.inst,
                    &mut rng,
                    &mut solver_metrics,
                    &stop,
                    prior.as_ref().map(|e| &e.matrix),
                    alpha,
                )
            }));
            match run {
                Ok((out, converged)) => {
                    let iterations = out.iterations as u64;
                    let iterations_saved = if warm {
                        prior
                            .as_ref()
                            .map_or(0, |e| e.cold_iterations.saturating_sub(iterations))
                    } else {
                        0
                    };
                    // Persist only cold, complete solves: the stored
                    // baseline stays a true cold start, so later warm
                    // hits measure real savings — and truncated runs
                    // never poison the prior.
                    if !warm && !stop.should_stop() {
                        let _ = store.put(
                            skey,
                            WarmEntry {
                                n,
                                cold_iterations: iterations,
                                cost: out.cost,
                                matrix: converged,
                            },
                        );
                    }
                    Ok(Solved {
                        algo: "MaTCH".to_string(),
                        cost: out.cost,
                        iterations,
                        evaluations: out.evaluations,
                        mapping: out.mapping.as_slice().to_vec(),
                        warm,
                        iterations_saved,
                    })
                }
                Err(payload) => Err(panic_message(payload)),
            }
        }
        _ => {
            let Some(mapper) = solvers::build_mapper_with(&job.algo, job.backend) else {
                // Unreachable: admission validated the name. Answer anyway.
                let _ = job.resp.send(Response::Error {
                    id: job.id,
                    error: format!("unknown algorithm `{}`", job.algo),
                });
                return;
            };
            let run = catch_unwind(AssertUnwindSafe(|| {
                mapper.map_controlled(&job.inst, &mut rng, &mut solver_metrics, &stop)
            }));
            match run {
                Ok(outcome) => Ok(Solved {
                    algo: mapper.name().to_string(),
                    cost: outcome.cost,
                    iterations: outcome.iterations as u64,
                    evaluations: outcome.evaluations,
                    mapping: outcome.mapping.as_slice().to_vec(),
                    warm: false,
                    iterations_saved: 0,
                }),
                Err(payload) => Err(panic_message(payload)),
            }
        }
    };
    let solved = match solved {
        Ok(solved) => solved,
        Err(msg) => {
            // A solver panic must not kill the worker thread; surface it
            // as a protocol error instead.
            let _ = job.resp.send(Response::Error {
                id: job.id,
                error: format!("solver panicked: {msg}"),
            });
            return;
        }
    };
    let solve_ns = solve_start.elapsed().as_nanos() as u64;
    // Over-approximation: a solve finishing naturally just past its
    // deadline is reported cancelled. That only skips a cache insert,
    // never corrupts a result.
    let cancelled = stop.should_stop();

    ctx.counters.jobs.fetch_add(1, Ordering::Relaxed);
    ctx.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    ctx.counters
        .evaluations
        .fetch_add(solved.evaluations, Ordering::Relaxed);
    ctx.sm.jobs.inc();
    ctx.sm.cache_misses.inc();
    latency.record(solve_ns);
    if solved.warm {
        ctx.counters.warm_hits.fetch_add(1, Ordering::Relaxed);
        ctx.sm.warm_hits.inc();
        ctx.sm.warm_iterations_saved.add(solved.iterations_saved);
        ctx.sink.record(Event::Counter {
            name: "warm_hit".into(),
            value: 1,
        });
        ctx.sink.record(Event::Counter {
            name: "iterations_saved".into(),
            value: solved.iterations_saved,
        });
    }
    if cancelled {
        ctx.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        ctx.sm.cancelled.inc();
        ctx.sink.record(Event::Counter {
            name: "cancelled".into(),
            value: 1,
        });
    } else {
        // Deadline-truncated results depend on wall-clock timing and
        // would leak nondeterminism into the cache — skip them.
        let evicted = ctx.cache.lock().expect("cache poisoned").put(
            job.key,
            CachedResult {
                mapping: solved.mapping.clone(),
                cost: solved.cost,
                algo: solved.algo.clone(),
            },
        );
        if evicted {
            ctx.sm.cache_evictions.inc();
        }
    }
    {
        let mut best = ctx.best.lock().expect("best poisoned");
        if solved.cost < *best {
            *best = solved.cost;
        }
    }
    record_job_events(
        ctx,
        &trace_id,
        job.seq,
        queue_wait_ns,
        solve_ns,
        solved.cost,
        "cache_miss",
    );
    let _ = job.resp.send(Response::Solved(SolveResponse {
        id: job.id,
        trace_id,
        algo: solved.algo,
        seed: job.seed,
        backend: job.backend.as_str().to_string(),
        cost: solved.cost,
        cached: false,
        cancelled,
        warm: solved.warm,
        iterations_saved: solved.iterations_saved,
        evaluations: solved.evaluations,
        iterations: solved.iterations,
        queue_wait_ns,
        solve_ns,
        migrated_tasks: 0,
        mapping: solved.mapping,
    }));
}

/// Incrementally re-map one admitted `remap` job on a worker thread.
///
/// The prior comes from the request (not the warm store) and the result
/// never enters the cache — the cache key does not cover the prior, and
/// two remaps of the same instance from different priors legitimately
/// differ. Solver telemetry lands in `match_solver_*` series carrying an
/// extra `op="remap"` label so dashboards can split re-maps from solves.
fn process_remap(job: Job, ctx: &Ctx) {
    let queue_wait_ns = job.enqueued.elapsed().as_nanos() as u64;
    let solve_start = Instant::now();
    let trace_id = format!("{}#{}", job.id, job.seq);
    ctx.sm.queue_wait.record(queue_wait_ns);
    let latency = ctx.metrics.histogram_with(
        "match_serve_solve_latency_ns",
        &[("algo", &job.algo), ("shard", &ctx.shard)],
    );
    let rm = job
        .remap
        .as_ref()
        .expect("process_remap needs remap params");

    let stop = {
        let base = StopToken::with_flag(ctx.drain_flag.clone());
        match job.deadline {
            Some(d) => base.and_deadline(job.enqueued + d),
            None => base,
        }
    };
    let mut rng = StdRng::seed_from_u64(job.seed);
    let mut solver_metrics =
        MetricsRecorder::with_op(&ctx.metrics, &job.algo, job.backend.as_str(), "remap");
    let cfg = RemapConfig {
        match_config: solvers::match_config_for(&job.algo, job.backend, ctx.solver_threads)
            .expect("admission restricts remap to CE-family algos"),
        strategy: RemapStrategy::WarmCe,
        mu: rm.mu as f64,
        ..RemapConfig::default()
    };
    // The wire carries no change-list, so refine over every task; the
    // CE warm start already concentrates probability near the prior.
    let changed: Vec<usize> = (0..job.inst.n_tasks()).collect();
    let run = catch_unwind(AssertUnwindSafe(|| {
        remap_incremental(
            &job.inst,
            Some(&rm.prior),
            &changed,
            &cfg,
            &mut rng,
            &mut solver_metrics,
            &stop,
        )
    }));
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(payload) => {
            let _ = job.resp.send(Response::Error {
                id: job.id,
                error: format!("solver panicked: {}", panic_message(payload)),
            });
            return;
        }
    };
    let solve_ns = solve_start.elapsed().as_nanos() as u64;
    let cancelled = stop.should_stop();

    ctx.counters.jobs.fetch_add(1, Ordering::Relaxed);
    ctx.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    ctx.counters
        .evaluations
        .fetch_add(outcome.evaluations, Ordering::Relaxed);
    ctx.sm.jobs.inc();
    ctx.sm.cache_misses.inc();
    latency.record(solve_ns);
    if cancelled {
        ctx.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        ctx.sm.cancelled.inc();
        ctx.sink.record(Event::Counter {
            name: "cancelled".into(),
            value: 1,
        });
    }
    {
        let mut best = ctx.best.lock().expect("best poisoned");
        if outcome.cost < *best {
            *best = outcome.cost;
        }
    }
    record_job_events(
        ctx,
        &trace_id,
        job.seq,
        queue_wait_ns,
        solve_ns,
        outcome.cost,
        "remap",
    );
    let _ = job.resp.send(Response::Solved(SolveResponse {
        id: job.id,
        trace_id,
        algo: "MaTCH".to_string(),
        seed: job.seed,
        backend: job.backend.as_str().to_string(),
        cost: outcome.cost,
        cached: false,
        cancelled,
        warm: outcome.warm,
        iterations_saved: 0,
        evaluations: outcome.evaluations,
        iterations: outcome.iterations as u64,
        queue_wait_ns,
        solve_ns,
        migrated_tasks: outcome.migrated as u64,
        mapping: outcome.mapping.as_slice().to_vec(),
    }));
}

/// Best-effort text from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string())
}

/// Service-level telemetry for one completed job.
///
/// Aggregate spans (`queue_wait`, `solve`) feed `matchctl report`'s
/// per-phase totals; the request-scoped `req:{trace_id}:…` twins let
/// `matchctl report --request` pull one request's timeline back out of
/// a shared trace file.
#[allow(clippy::too_many_arguments)]
fn record_job_events(
    ctx: &Ctx,
    trace_id: &str,
    seq: u64,
    queue_wait_ns: u64,
    solve_ns: u64,
    cost: f64,
    counter: &'static str,
) {
    ctx.sink.record(Event::Span(SpanEvent {
        name: "queue_wait".into(),
        iter: seq,
        wall_ns: queue_wait_ns,
    }));
    ctx.sink.record(Event::Span(SpanEvent {
        name: "solve".into(),
        iter: seq,
        wall_ns: solve_ns,
    }));
    ctx.sink.record(Event::Span(SpanEvent {
        name: format!("req:{trace_id}:queue_wait").into(),
        iter: seq,
        wall_ns: queue_wait_ns,
    }));
    ctx.sink.record(Event::Span(SpanEvent {
        name: format!("req:{trace_id}:solve").into(),
        iter: seq,
        wall_ns: solve_ns,
    }));
    ctx.sink.record(Event::Iter(IterEvent {
        iter: seq,
        best: cost,
        mean: cost,
        gamma: None,
        elite_size: 0,
        wall_ns: solve_ns,
    }));
    ctx.sink.record(Event::Counter {
        name: counter.into(),
        value: 1,
    });
}
