//! Blocking client for the mapping service.
//!
//! Thin wrapper over a `TcpStream`: encode a [`Request`] per line, read
//! a [`Response`] per line. Requests may be pipelined — send several,
//! then collect the replies and match them on `id`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{encode_request_line, parse_response, Request, Response};

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Send one request line (does not wait for the reply).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let line = encode_request_line(req);
        self.stream.write_all(line.as_bytes())?;
        self.stream.flush()
    }

    /// Read the next response line, blocking until one arrives.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return parse_response(trimmed)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
        }
    }

    /// Send one request and wait for its reply.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Convenience: request service counters.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.call(&Request::Stats)
    }

    /// Convenience: request a Prometheus metrics snapshot.
    pub fn metrics(&mut self) -> io::Result<Response> {
        self.call(&Request::Metrics)
    }

    /// Convenience: request graceful shutdown (expects `bye`).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
