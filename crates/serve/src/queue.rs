//! Bounded MPMC job queue with admission control.
//!
//! Connection readers push, solver workers pop. The queue enforces the
//! daemon's backpressure contract at the push side: [`JobQueue::try_push`]
//! never blocks — a full queue returns [`PushError::Full`] carrying the
//! observed depth, which the server turns into the protocol's
//! `rejected` response. Pops block on a condvar until an item arrives
//! or the queue is closed; close-with-drain semantics (pop keeps
//! returning queued items after close, then `None`) are exactly what
//! graceful shutdown needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity; carries the depth observed at
    /// rejection (== the capacity) for the backpressure payload.
    Full(usize),
    /// The queue has been closed (shutdown in progress).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// An open queue admitting at most `cap` queued items.
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0` — a zero-capacity queue could never
    /// admit work.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current queue depth (racy by nature; informational).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueue and return the depth *after*
    /// the push, or refuse with [`PushError`].
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(inner.items.len()));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocking pop: waits for an item, returns `None` only once the
    /// queue is closed *and* drained — queued work always completes.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Close the queue: no further admissions; blocked poppers drain
    /// the remaining items and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn full_queue_rejects_with_depth() {
        let q = JobQueue::new(2);
        assert_eq!(q.try_push('a'), Ok(1));
        assert_eq!(q.try_push('b'), Ok(2));
        assert_eq!(q.try_push('c'), Err(PushError::Full(2)));
        // Popping frees a slot.
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.try_push('c'), Ok(2));
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "queued work survives close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let q = Arc::new(JobQueue::<u64>::new(64));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        // Spin until admitted: the test queue is small.
                        loop {
                            if q.try_push(p * 1000 + i).is_ok() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..4u64)
            .map(|p| (0..100u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect, "every produced item consumed exactly once");
    }
}
