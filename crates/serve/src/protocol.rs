//! The JSONL-over-TCP wire protocol.
//!
//! One request per line, one response per line. Requests and responses
//! are flat JSON objects (the only nesting is the `"mapping"` array of
//! resource indices in a solve response), hand-encoded and hand-parsed
//! in the same zero-dependency style as `match-telemetry`'s trace
//! format. Responses carry the request `id`, so clients may pipeline
//! requests on one connection and match replies out of order.
//!
//! ## Requests
//!
//! ```json
//! {"op":"solve","id":"job-1","algo":"match","seed":7,"deadline_ms":500,
//!  "tig":"# matchkit instance v1\n...","platform":"..."}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! `tig` and `platform` embed the plain-text instance format of
//! `match-graph` (`graph n` / `node i w` / `edge u v w` lines) as JSON
//! strings. `deadline_ms` is optional; when present the solver is
//! cancelled cooperatively once the deadline (measured from admission)
//! expires, and the best-so-far mapping is returned with
//! `"cancelled":true`.
//!
//! ## Responses
//!
//! ```json
//! {"status":"ok","id":"job-1","trace_id":"job-1#0","algo":"MaTCH","seed":7,"cost":41.25,
//!  "cached":false,"cancelled":false,"warm":true,"iterations_saved":37,
//!  "evaluations":20000,"iterations":100,
//!  "queue_wait_ns":1200,"solve_ns":150000000,"mapping":[0,2,1]}
//! {"status":"rejected","id":"job-2","error":"queue full","queue_depth":8,"queue_cap":8}
//! {"status":"error","id":"job-3","error":"unknown algorithm `zen`"}
//! {"status":"stats","jobs":5,"cache_hits":2,"cache_misses":3,"rejected":1,
//!  "cancelled":0,"queue_depth":0,"queue_cap":8,"workers":4}
//! {"status":"metrics","text":"# TYPE match_serve_jobs_total counter\n..."}
//! {"status":"bye"}
//! ```
//!
//! `trace_id` is the daemon-assigned request identity (`{id}#{seq}`):
//! it names the `req:{trace_id}:queue_wait` / `req:{trace_id}:solve`
//! spans in the service trace, so `matchctl report --request` can
//! correlate one response with its trace events. The `metrics` response
//! carries a full Prometheus text exposition snapshot — the same bytes
//! the HTTP `/metrics` side port serves.
//!
//! `rejected` is the admission-control backpressure signal (the HTTP
//! analogue would be 429): the queue was at capacity, and the payload
//! reports the observed depth and the cap so clients can back off
//! proportionally.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Errors produced when decoding a protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line is not a flat JSON object of the expected shape.
    Syntax(String),
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong type.
    BadType(&'static str),
    /// The `"op"` / `"status"` tag names no known message.
    UnknownTag(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Syntax(m) => write!(f, "protocol syntax error: {m}"),
            ProtoError::MissingField(name) => write!(f, "missing field `{name}`"),
            ProtoError::BadType(name) => write!(f, "field `{name}` has the wrong type"),
            ProtoError::UnknownTag(tag) => write!(f, "unknown message `{tag}`"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A solve request: one instance, one algorithm, one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen identifier echoed back in the response.
    pub id: String,
    /// Registered algorithm name (`match`, `ga`, `sa`, `hill`, `polish`,
    /// `greedy`, `random`, `roundrobin`, …).
    pub algo: String,
    /// RNG seed; identical instance + algo + seed is deterministic and
    /// therefore cacheable.
    pub seed: u64,
    /// Optional cooperative deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
    /// Optional evaluation backend (`auto` | `scalar` | `simd`) for the
    /// batched pipelines; absent means `auto`. Backends are bit-exact,
    /// so this never changes the returned mapping — or the cache key.
    pub backend: Option<String>,
    /// Task-interaction graph in `match-graph` plain-text form.
    pub tig: String,
    /// Resource graph in `match-graph` plain-text form.
    pub platform: String,
}

/// An incremental re-mapping request: a solve plus a prior mapping to
/// warm-start from and a migration-cost weight μ.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapRequest {
    /// The embedded solve fields (id, algo, seed, deadline, backend,
    /// instance text). Only CE-family algorithms accept `remap`.
    pub solve: SolveRequest,
    /// The prior task→resource assignment to re-map from.
    pub prior: Vec<usize>,
    /// Migration-cost weight: the refined objective is
    /// `ET + μ·(tasks moved off their prior resource)`. Integer on the
    /// wire (the protocol's numbers are `u64`).
    pub mu: u64,
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve one instance.
    Solve(SolveRequest),
    /// Incrementally re-map an instance from a prior mapping.
    Remap(RemapRequest),
    /// Report service counters.
    Stats,
    /// Dump the live metrics registry in Prometheus text format.
    Metrics,
    /// Begin graceful shutdown: stop admitting, drain in-flight work.
    Shutdown,
}

/// A completed solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Echo of the request id.
    pub id: String,
    /// Daemon-assigned request identity (`{id}#{seq}`), the key for
    /// correlating this solve with its spans in a service trace.
    pub trace_id: String,
    /// The solver's display name (`Mapper::name`).
    pub algo: String,
    /// Echo of the request seed.
    pub seed: u64,
    /// The evaluation backend the solve ran under (`auto` | `scalar` |
    /// `simd`; a cache hit echoes the *requesting* backend — backends
    /// are bit-exact, so cached results are backend-agnostic).
    pub backend: String,
    /// Execution time of the returned mapping (ET, Eq. 2).
    pub cost: f64,
    /// Whether the result came from the LRU cache.
    pub cached: bool,
    /// Whether the solve was truncated by its deadline.
    pub cancelled: bool,
    /// Whether the solve was warm-started from a stored prior
    /// (structure-hash hit in the warm store with `α > 0`).
    pub warm: bool,
    /// CE iterations saved versus the stored cold baseline for this
    /// structure (0 when not warm, or when the warm solve was slower).
    pub iterations_saved: u64,
    /// Objective evaluations performed (0 on a cache hit).
    pub evaluations: u64,
    /// Solver iterations executed (0 on a cache hit).
    pub iterations: u64,
    /// Nanoseconds the job waited in the queue.
    pub queue_wait_ns: u64,
    /// Nanoseconds spent solving (cache lookup time on a hit).
    pub solve_ns: u64,
    /// Tasks assigned to a different resource than the request's prior
    /// mapping (always 0 for plain `solve` requests, which carry no
    /// prior).
    pub migrated_tasks: u64,
    /// Task→resource assignment.
    pub mapping: Vec<usize>,
}

/// Service counters returned by a `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsResponse {
    /// Jobs completed (cache hits included).
    pub jobs: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses (full solves).
    pub cache_misses: u64,
    /// Admissions rejected by backpressure.
    pub rejected: u64,
    /// Solves truncated by their deadline.
    pub cancelled: u64,
    /// Queue depth at the time of the request.
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_cap: u64,
    /// Configured worker count.
    pub workers: u64,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A finished solve (fresh, cached, or deadline-truncated).
    Solved(SolveResponse),
    /// Backpressure: the job queue was full at admission.
    Rejected {
        /// Echo of the request id.
        id: String,
        /// Queue depth observed at rejection.
        queue_depth: u64,
        /// Configured queue capacity.
        queue_cap: u64,
    },
    /// The request could not be processed (parse failure, unknown
    /// algorithm, malformed instance, shutdown in progress, …).
    Error {
        /// Echo of the request id ("" when the id itself was unreadable).
        id: String,
        /// Human-readable reason.
        error: String,
    },
    /// Service counters.
    Stats(StatsResponse),
    /// A Prometheus text exposition snapshot of the live metrics.
    Metrics {
        /// The rendered exposition text (may be empty).
        text: String,
    },
    /// Acknowledgement of a shutdown request.
    Bye,
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn push_solve_fields(s: &mut String, op: &str, r: &SolveRequest) {
    let _ = write!(s, "{{\"op\":\"{op}\",\"id\":");
    push_escaped(s, &r.id);
    s.push_str(",\"algo\":");
    push_escaped(s, &r.algo);
    let _ = write!(s, ",\"seed\":{}", r.seed);
    if let Some(d) = r.deadline_ms {
        let _ = write!(s, ",\"deadline_ms\":{d}");
    }
    if let Some(b) = &r.backend {
        s.push_str(",\"backend\":");
        push_escaped(s, b);
    }
    s.push_str(",\"tig\":");
    push_escaped(s, &r.tig);
    s.push_str(",\"platform\":");
    push_escaped(s, &r.platform);
}

/// Encode a request as a single JSON line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let mut s = String::with_capacity(128);
    match req {
        Request::Solve(r) => {
            push_solve_fields(&mut s, "solve", r);
            s.push('}');
        }
        Request::Remap(r) => {
            push_solve_fields(&mut s, "remap", &r.solve);
            let _ = write!(s, ",\"mu\":{},\"prior\":[", r.mu);
            for (i, p) in r.prior.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{p}");
            }
            s.push_str("]}");
        }
        Request::Stats => s.push_str("{\"op\":\"stats\"}"),
        Request::Metrics => s.push_str("{\"op\":\"metrics\"}"),
        Request::Shutdown => s.push_str("{\"op\":\"shutdown\"}"),
    }
    s
}

/// Encode a request as a newline-terminated wire line, ready to write
/// to a socket as-is. Prefer this over [`encode_request`] when framing:
/// the bare encoder's missing `\n` was an easy way to hang both peers
/// on a read.
pub fn encode_request_line(req: &Request) -> String {
    let mut s = encode_request(req);
    s.push('\n');
    s
}

/// Encode a response as a newline-terminated wire line; the response
/// counterpart of [`encode_request_line`].
pub fn encode_response_line(resp: &Response) -> String {
    let mut s = encode_response(resp);
    s.push('\n');
    s
}

/// Encode a response as a single JSON line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let mut s = String::with_capacity(128);
    match resp {
        Response::Solved(r) => {
            s.push_str("{\"status\":\"ok\",\"id\":");
            push_escaped(&mut s, &r.id);
            s.push_str(",\"trace_id\":");
            push_escaped(&mut s, &r.trace_id);
            s.push_str(",\"algo\":");
            push_escaped(&mut s, &r.algo);
            let _ = write!(s, ",\"seed\":{}", r.seed);
            s.push_str(",\"backend\":");
            push_escaped(&mut s, &r.backend);
            s.push_str(",\"cost\":");
            push_f64(&mut s, r.cost);
            let _ = write!(
                s,
                ",\"cached\":{},\"cancelled\":{},\"warm\":{},\"iterations_saved\":{},\
                 \"evaluations\":{},\"iterations\":{},\
                 \"queue_wait_ns\":{},\"solve_ns\":{},\"migrated_tasks\":{},\"mapping\":[",
                r.cached,
                r.cancelled,
                r.warm,
                r.iterations_saved,
                r.evaluations,
                r.iterations,
                r.queue_wait_ns,
                r.solve_ns,
                r.migrated_tasks
            );
            for (i, m) in r.mapping.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{m}");
            }
            s.push_str("]}");
        }
        Response::Rejected {
            id,
            queue_depth,
            queue_cap,
        } => {
            s.push_str("{\"status\":\"rejected\",\"id\":");
            push_escaped(&mut s, id);
            let _ = write!(
                s,
                ",\"error\":\"queue full\",\"queue_depth\":{queue_depth},\"queue_cap\":{queue_cap}}}"
            );
        }
        Response::Error { id, error } => {
            s.push_str("{\"status\":\"error\",\"id\":");
            push_escaped(&mut s, id);
            s.push_str(",\"error\":");
            push_escaped(&mut s, error);
            s.push('}');
        }
        Response::Stats(st) => {
            let _ = write!(
                s,
                "{{\"status\":\"stats\",\"jobs\":{},\"cache_hits\":{},\"cache_misses\":{},\
                 \"rejected\":{},\"cancelled\":{},\"queue_depth\":{},\"queue_cap\":{},\
                 \"workers\":{}}}",
                st.jobs,
                st.cache_hits,
                st.cache_misses,
                st.rejected,
                st.cancelled,
                st.queue_depth,
                st.queue_cap,
                st.workers
            );
        }
        Response::Metrics { text } => {
            s.push_str("{\"status\":\"metrics\",\"text\":");
            push_escaped(&mut s, text);
            s.push('}');
        }
        Response::Bye => s.push_str("{\"status\":\"bye\"}"),
    }
    s
}

/// A decoded flat JSON value. Numbers keep their raw text so `u64`
/// fields round-trip exactly; the only composite shape is an array of
/// non-negative integers (the mapping vector).
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(String),
    Bool(bool),
    Arr(Vec<u64>),
    Null,
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> ProtoError {
        ProtoError::Syntax(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ProtoError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn keyword(&mut self, word: &'static [u8]) -> Result<(), ProtoError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!(
                "expected `{}`",
                std::str::from_utf8(word).unwrap_or("?")
            )))
        }
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<String, ProtoError> {
        let start = self.pos;
        self.pos += 1;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(str::to_string)
            .map_err(|_| self.err("invalid number"))
    }

    fn value(&mut self) -> Result<Val, ProtoError> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'n') => self.keyword(b"null").map(|()| Val::Null),
            Some(b't') => self.keyword(b"true").map(|()| Val::Bool(true)),
            Some(b'f') => self.keyword(b"false").map(|()| Val::Bool(false)),
            Some(b'[') => {
                self.pos += 1;
                let mut arr = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Val::Arr(arr));
                }
                loop {
                    match self.peek() {
                        Some(b) if b.is_ascii_digit() => {
                            let raw = self.number()?;
                            arr.push(
                                raw.parse()
                                    .map_err(|_| self.err("non-integer array element"))?,
                            );
                        }
                        _ => return Err(self.err("expected integer array element")),
                    }
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
                Ok(Val::Arr(arr))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => Ok(Val::Num(self.number()?)),
            _ => Err(self.err("expected string, number, bool, array, or null")),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Val>, ProtoError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                let value = self.value()?;
                map.insert(key, value);
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected `,` or `}`")),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data after object"));
        }
        Ok(map)
    }
}

fn get_string(map: &BTreeMap<String, Val>, field: &'static str) -> Result<String, ProtoError> {
    match map.get(field) {
        Some(Val::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ProtoError::BadType(field)),
        None => Err(ProtoError::MissingField(field)),
    }
}

fn get_u64(map: &BTreeMap<String, Val>, field: &'static str) -> Result<u64, ProtoError> {
    match map.get(field) {
        Some(Val::Num(raw)) => raw.parse().map_err(|_| ProtoError::BadType(field)),
        Some(_) => Err(ProtoError::BadType(field)),
        None => Err(ProtoError::MissingField(field)),
    }
}

fn get_opt_string(
    map: &BTreeMap<String, Val>,
    field: &'static str,
) -> Result<Option<String>, ProtoError> {
    match map.get(field) {
        Some(Val::Null) | None => Ok(None),
        Some(Val::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtoError::BadType(field)),
    }
}

fn get_opt_u64(
    map: &BTreeMap<String, Val>,
    field: &'static str,
) -> Result<Option<u64>, ProtoError> {
    match map.get(field) {
        Some(Val::Null) | None => Ok(None),
        Some(Val::Num(raw)) => raw
            .parse()
            .map(Some)
            .map_err(|_| ProtoError::BadType(field)),
        Some(_) => Err(ProtoError::BadType(field)),
    }
}

fn get_f64(map: &BTreeMap<String, Val>, field: &'static str) -> Result<f64, ProtoError> {
    match map.get(field) {
        Some(Val::Num(raw)) => raw.parse().map_err(|_| ProtoError::BadType(field)),
        Some(Val::Str(s)) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            _ => Err(ProtoError::BadType(field)),
        },
        Some(_) => Err(ProtoError::BadType(field)),
        None => Err(ProtoError::MissingField(field)),
    }
}

fn get_bool(map: &BTreeMap<String, Val>, field: &'static str) -> Result<bool, ProtoError> {
    match map.get(field) {
        Some(Val::Bool(b)) => Ok(*b),
        Some(_) => Err(ProtoError::BadType(field)),
        None => Err(ProtoError::MissingField(field)),
    }
}

/// Optional boolean defaulting to `false` — for fields added after the
/// v1 wire format shipped, so a new client can read an old server.
fn get_opt_bool(map: &BTreeMap<String, Val>, field: &'static str) -> Result<bool, ProtoError> {
    match map.get(field) {
        Some(Val::Bool(b)) => Ok(*b),
        Some(Val::Null) | None => Ok(false),
        Some(_) => Err(ProtoError::BadType(field)),
    }
}

fn get_mapping(map: &BTreeMap<String, Val>, field: &'static str) -> Result<Vec<usize>, ProtoError> {
    match map.get(field) {
        Some(Val::Arr(a)) => Ok(a.iter().map(|&v| v as usize).collect()),
        Some(_) => Err(ProtoError::BadType(field)),
        None => Err(ProtoError::MissingField(field)),
    }
}

fn parse_solve_fields(map: &BTreeMap<String, Val>) -> Result<SolveRequest, ProtoError> {
    Ok(SolveRequest {
        id: get_string(map, "id")?,
        algo: get_string(map, "algo")?,
        seed: get_u64(map, "seed")?,
        deadline_ms: get_opt_u64(map, "deadline_ms")?,
        backend: get_opt_string(map, "backend")?,
        tig: get_string(map, "tig")?,
        platform: get_string(map, "platform")?,
    })
}

/// Decode one client→server line.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let map = Scanner::new(line).object()?;
    let op = get_string(&map, "op")?;
    match op.as_str() {
        "solve" => Ok(Request::Solve(parse_solve_fields(&map)?)),
        "remap" => Ok(Request::Remap(RemapRequest {
            solve: parse_solve_fields(&map)?,
            prior: get_mapping(&map, "prior")?,
            mu: get_opt_u64(&map, "mu")?.unwrap_or(0),
        })),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::UnknownTag(other.to_string())),
    }
}

/// Decode one server→client line.
pub fn parse_response(line: &str) -> Result<Response, ProtoError> {
    let map = Scanner::new(line).object()?;
    let status = get_string(&map, "status")?;
    match status.as_str() {
        "ok" => Ok(Response::Solved(SolveResponse {
            id: get_string(&map, "id")?,
            trace_id: get_string(&map, "trace_id")?,
            algo: get_string(&map, "algo")?,
            seed: get_u64(&map, "seed")?,
            backend: get_string(&map, "backend")?,
            cost: get_f64(&map, "cost")?,
            cached: get_bool(&map, "cached")?,
            cancelled: get_bool(&map, "cancelled")?,
            warm: get_opt_bool(&map, "warm")?,
            iterations_saved: get_opt_u64(&map, "iterations_saved")?.unwrap_or(0),
            evaluations: get_u64(&map, "evaluations")?,
            iterations: get_u64(&map, "iterations")?,
            queue_wait_ns: get_u64(&map, "queue_wait_ns")?,
            solve_ns: get_u64(&map, "solve_ns")?,
            migrated_tasks: get_opt_u64(&map, "migrated_tasks")?.unwrap_or(0),
            mapping: get_mapping(&map, "mapping")?,
        })),
        "rejected" => Ok(Response::Rejected {
            id: get_string(&map, "id")?,
            queue_depth: get_u64(&map, "queue_depth")?,
            queue_cap: get_u64(&map, "queue_cap")?,
        }),
        "error" => Ok(Response::Error {
            id: get_string(&map, "id")?,
            error: get_string(&map, "error")?,
        }),
        "stats" => Ok(Response::Stats(StatsResponse {
            jobs: get_u64(&map, "jobs")?,
            cache_hits: get_u64(&map, "cache_hits")?,
            cache_misses: get_u64(&map, "cache_misses")?,
            rejected: get_u64(&map, "rejected")?,
            cancelled: get_u64(&map, "cancelled")?,
            queue_depth: get_u64(&map, "queue_depth")?,
            queue_cap: get_u64(&map, "queue_cap")?,
            workers: get_u64(&map, "workers")?,
        })),
        "metrics" => Ok(Response::Metrics {
            text: get_string(&map, "text")?,
        }),
        "bye" => Ok(Response::Bye),
        other => Err(ProtoError::UnknownTag(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let line = encode_request(&req);
        let back = parse_request(&line).expect("request round-trip");
        assert_eq!(req, back, "line was: {line}");
    }

    fn roundtrip_response(resp: Response) {
        let line = encode_response(&resp);
        let back = parse_response(&line).expect("response round-trip");
        assert_eq!(resp, back, "line was: {line}");
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_request(Request::Solve(SolveRequest {
            id: "job-1".into(),
            algo: "match".into(),
            seed: 7,
            deadline_ms: Some(500),
            backend: Some("simd".into()),
            tig: "# matchkit instance v1\ngraph 2\nedge 0 1 3.5\n".into(),
            platform: "# matchkit instance v1\ngraph 2\nnode 0 2\nnode 1 1\n".into(),
        }));
        roundtrip_request(Request::Solve(SolveRequest {
            id: "quoted \"id\" with\nnewline".into(),
            algo: "sa".into(),
            seed: u64::MAX,
            deadline_ms: None,
            backend: None,
            tig: String::new(),
            platform: String::new(),
        }));
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn remap_requests_round_trip() {
        roundtrip_request(Request::Remap(RemapRequest {
            solve: SolveRequest {
                id: "job-9".into(),
                algo: "match".into(),
                seed: 11,
                deadline_ms: Some(250),
                backend: Some("auto".into()),
                tig: "# matchkit instance v1\ngraph 2\nedge 0 1 3.5\n".into(),
                platform: "# matchkit instance v1\ngraph 2\nnode 0 2\nnode 1 1\n".into(),
            },
            prior: vec![1, 0],
            mu: 5,
        }));
        // `mu` is optional on the wire and defaults to 0.
        let line = "{\"op\":\"remap\",\"id\":\"a\",\"algo\":\"match\",\"seed\":1,\
                    \"tig\":\"\",\"platform\":\"\",\"prior\":[0,1]}";
        match parse_request(line).unwrap() {
            Request::Remap(r) => {
                assert_eq!(r.mu, 0);
                assert_eq!(r.prior, vec![0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A remap without a prior is malformed.
        assert!(parse_request(
            "{\"op\":\"remap\",\"id\":\"a\",\"algo\":\"match\",\"seed\":1,\
             \"tig\":\"\",\"platform\":\"\"}"
        )
        .is_err());
    }

    #[test]
    fn line_encoders_terminate_with_exactly_one_newline() {
        for req in [
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Solve(SolveRequest {
                id: "x".into(),
                algo: "match".into(),
                seed: 1,
                deadline_ms: None,
                backend: None,
                tig: "a\nb".into(),
                platform: "c".into(),
            }),
        ] {
            let line = encode_request_line(&req);
            assert!(line.ends_with('\n'), "missing newline: {line:?}");
            assert_eq!(
                line.matches('\n').count(),
                1,
                "embedded newline must stay escaped: {line:?}"
            );
            assert_eq!(line.trim_end_matches('\n'), encode_request(&req));
            assert_eq!(parse_request(line.trim()).unwrap(), req);
        }
        let line = encode_response_line(&Response::Bye);
        assert_eq!(line, "{\"status\":\"bye\"}\n");
        assert_eq!(parse_response(line.trim()).unwrap(), Response::Bye);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_response(Response::Solved(SolveResponse {
            id: "job-1".into(),
            trace_id: "job-1#0".into(),
            algo: "MaTCH".into(),
            seed: 7,
            backend: "simd".into(),
            cost: 41.25,
            cached: false,
            cancelled: true,
            warm: true,
            iterations_saved: 37,
            evaluations: 20_000,
            iterations: 100,
            queue_wait_ns: 1_200,
            solve_ns: 150_000_000,
            migrated_tasks: 2,
            mapping: vec![0, 2, 1],
        }));
        roundtrip_response(Response::Solved(SolveResponse {
            id: "empty".into(),
            trace_id: "empty#42".into(),
            algo: "greedy".into(),
            seed: 0,
            backend: "auto".into(),
            cost: 0.0,
            cached: true,
            cancelled: false,
            warm: false,
            iterations_saved: 0,
            evaluations: 0,
            iterations: 0,
            queue_wait_ns: 0,
            solve_ns: 0,
            migrated_tasks: 0,
            mapping: vec![],
        }));
        roundtrip_response(Response::Rejected {
            id: "job-2".into(),
            queue_depth: 8,
            queue_cap: 8,
        });
        roundtrip_response(Response::Error {
            id: "job-3".into(),
            error: "unknown algorithm `zen`".into(),
        });
        roundtrip_response(Response::Stats(StatsResponse {
            jobs: 5,
            cache_hits: 2,
            cache_misses: 3,
            rejected: 1,
            cancelled: 0,
            queue_depth: 0,
            queue_cap: 8,
            workers: 4,
        }));
        roundtrip_response(Response::Metrics {
            text: "# TYPE match_serve_jobs_total counter\nmatch_serve_jobs_total 5\n".into(),
        });
        roundtrip_response(Response::Bye);
    }

    #[test]
    fn non_finite_cost_round_trips() {
        let line = encode_response(&Response::Solved(SolveResponse {
            id: "inf".into(),
            trace_id: "inf#1".into(),
            algo: "random".into(),
            seed: 1,
            backend: "scalar".into(),
            cost: f64::INFINITY,
            cached: false,
            cancelled: false,
            warm: false,
            iterations_saved: 0,
            evaluations: 1,
            iterations: 1,
            queue_wait_ns: 1,
            solve_ns: 1,
            migrated_tasks: 0,
            mapping: vec![0],
        }));
        match parse_response(&line).unwrap() {
            Response::Solved(r) => assert!(r.cost.is_infinite()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v1_response_without_warm_fields_still_parses() {
        // Old servers don't emit `warm`/`iterations_saved`; a new
        // client must default them instead of erroring.
        let line = "{\"status\":\"ok\",\"id\":\"a\",\"trace_id\":\"a#0\",\"algo\":\"m\",\
                    \"seed\":1,\"backend\":\"auto\",\"cost\":1,\"cached\":false,\
                    \"cancelled\":false,\"evaluations\":1,\"iterations\":1,\
                    \"queue_wait_ns\":1,\"solve_ns\":1,\"mapping\":[0]}";
        match parse_response(line).unwrap() {
            Response::Solved(r) => {
                assert!(!r.warm);
                assert_eq!(r.iterations_saved, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_lines_are_single_line() {
        // The framing invariant: embedded newlines must be escaped.
        let line = encode_request(&Request::Solve(SolveRequest {
            id: "x".into(),
            algo: "match".into(),
            seed: 1,
            deadline_ms: None,
            backend: None,
            tig: "line1\nline2\n".into(),
            platform: "p\n".into(),
        }));
        assert!(!line.contains('\n'), "encoded request spans lines: {line}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_request("").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err(), "unknown op");
        assert!(
            parse_request("{\"op\":\"solve\"}").is_err(),
            "missing fields"
        );
        assert!(
            parse_request("{\"op\":\"stats\"} trailing").is_err(),
            "trailing data"
        );
        assert!(parse_response("{\"status\":\"weird\"}").is_err());
        assert!(
            parse_response(
                "{\"status\":\"ok\",\"id\":\"a\",\"trace_id\":\"a#0\",\"algo\":\"m\",\"seed\":1,\
                 \"backend\":\"auto\",\"cost\":1,\"cached\":false,\"cancelled\":false,\"evaluations\":1,\"iterations\":1,\
                 \"queue_wait_ns\":1,\"solve_ns\":1,\"mapping\":[1,-2]}"
            )
            .is_err(),
            "negative mapping element"
        );
    }

    #[test]
    fn exact_u64_seed_round_trip() {
        // Seeds above 2^53 would be corrupted by an f64 detour.
        let req = Request::Solve(SolveRequest {
            id: "big".into(),
            algo: "match".into(),
            seed: (1u64 << 62) + 12345,
            deadline_ms: None,
            backend: None,
            tig: String::new(),
            platform: String::new(),
        });
        assert_eq!(parse_request(&encode_request(&req)).unwrap(), req);
    }
}
