//! Figure 3: evolution of the stochastic matrix on a 10×10 instance.

use match_core::{MappingInstance, MatchConfig, MatchOutcome, Matcher};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::SeedSequence;
use match_viz::render_heatmap;

/// Run MaTCH on a `size`-node paper-family instance with per-iteration
/// matrix snapshots (paper: `|V_r| = |V_t| = 10`).
pub fn run_matrix_evolution(size: usize, seed: u64) -> MatchOutcome {
    let mut seq = SeedSequence::new(seed).child(0xF163);
    let mut rng = seq.next_rng();
    let pair = PaperFamilyConfig::new(size).generate(&mut rng);
    let inst = MappingInstance::from_pair(&pair);
    let cfg = MatchConfig {
        snapshot_every: Some(1),
        ..MatchConfig::default()
    };
    let mut run_rng = seq.next_rng();
    Matcher::new(cfg).run(&inst, &mut run_rng)
}

/// Render a Figure-3 style panel: heatmaps of the matrix at a handful of
/// iterations from uniform to (near-)degenerate.
pub fn render_evolution(outcome: &MatchOutcome, panels: usize) -> String {
    let snaps = &outcome.snapshots;
    assert!(!snaps.is_empty(), "run with snapshot_every = Some(1)");
    let panels = panels.max(2).min(snaps.len());
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 3: stochastic matrix evolution over {} iterations (rows = tasks, cols = resources)\n\n",
        outcome.iterations
    ));
    for k in 0..panels {
        // Evenly spaced snapshot indices, always including first & last.
        let idx = if panels == 1 {
            0
        } else {
            k * (snaps.len() - 1) / (panels - 1)
        };
        let snap = &snaps[idx];
        let m = &snap.matrix;
        out.push_str(&render_heatmap(
            m.data(),
            m.rows(),
            m.cols(),
            &format!(
                "iteration {} (mean row entropy {:.3} nats)",
                snap.iter,
                m.mean_entropy()
            ),
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evolution_converges_toward_degeneracy() {
        let out = run_matrix_evolution(8, 11);
        assert!(!out.snapshots.is_empty());
        let first = &out.snapshots.first().unwrap().matrix;
        let last = &out.snapshots.last().unwrap().matrix;
        assert!(
            last.mean_entropy() < 0.5 * first.mean_entropy(),
            "entropy {} -> {}",
            first.mean_entropy(),
            last.mean_entropy()
        );
    }

    #[test]
    fn render_contains_panels() {
        let out = run_matrix_evolution(6, 12);
        let s = render_evolution(&out, 3);
        assert!(s.contains("Figure 3"));
        assert!(s.matches("iteration").count() >= 2);
        assert!(s.contains("entropy"));
    }
}
