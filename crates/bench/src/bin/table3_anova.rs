//! Regenerates **Table 3**: statistical and ANOVA analysis of the
//! execution time over a 10-node instance — MaTCH vs FastMap-GA
//! 100/10000 vs FastMap-GA 1000/1000, 30 independent runs each.
//!
//! ```text
//! cargo run -p match-bench --release --bin table3_anova
//! MATCH_BENCH_PROFILE=quick cargo run -p match-bench --release --bin table3_anova
//! ```

use match_bench::anova::{run_anova_experiment, table3, AnovaConfig};
use match_bench::report::write_results_file;
use match_bench::sweep::Profile;
use match_viz::CsvWriter;

fn main() {
    let cfg = match Profile::from_env() {
        Profile::Paper => AnovaConfig::paper(),
        Profile::Quick => AnovaConfig::quick(),
    };
    eprintln!(
        "[table3] size={} runs={} budget_divisor={}",
        cfg.size, cfg.runs, cfg.budget_divisor
    );
    let exp = run_anova_experiment(&cfg, false);
    let (stats, ftable) = table3(&exp);
    let text = format!("{}\n{}", stats.render(), ftable.render());
    println!("{text}");

    let mut csv = CsvWriter::new();
    csv.write_record(["heuristic", "et_samples..."]);
    for g in &exp.groups {
        csv.write_numeric_record(&g.name, &g.et);
    }
    match write_results_file("table3_anova.txt", &text)
        .and_then(|_| write_results_file("table3_anova.csv", csv.as_str()))
    {
        Ok(p) => eprintln!("[table3] wrote {}", p.display()),
        Err(e) => eprintln!("[table3] could not write results: {e}"),
    }
}
