//! Growth-order analysis of the sweep data: fits power laws
//! `y ≈ a·|V|^b` to each heuristic's mean ET, MT and evaluation counts
//! and prints the exponents — quantifying Figure 8's qualitative story
//! (MaTCH's mapping time grows superlinearly because `N = 2|V|²` while
//! the GA's budget is constant).
//!
//! ```text
//! cargo run -p match-bench --release --bin scaling_fit
//! ```

use match_bench::report::{sweep_cached, write_results_file};
use match_bench::sweep::Profile;
use match_stats::power_law_fit;
use match_viz::{format_sig, Table};

fn main() {
    let data = sweep_cached(Profile::from_env());
    let xs: Vec<f64> = data.sizes.iter().map(|&s| s as f64).collect();

    let mut table = Table::new(["heuristic", "metric", "a", "exponent b", "R^2"])
        .with_title("Power-law fits y = a * |V|^b over the sweep");
    for (h, name) in data.names.iter().enumerate() {
        let metrics: [(&str, Vec<f64>); 3] = [
            ("ET", data.cells[h].iter().map(|c| c.mean_et()).collect()),
            ("MT", data.cells[h].iter().map(|c| c.mean_mt()).collect()),
            (
                "evals",
                data.cells[h].iter().map(|c| c.mean_evals()).collect(),
            ),
        ];
        for (metric, ys) in metrics {
            match power_law_fit(&xs, &ys) {
                Some((a, b, r2)) => {
                    table.add_row([
                        name.clone(),
                        metric.to_string(),
                        format_sig(a, 3),
                        format_sig(b, 3),
                        format_sig(r2, 3),
                    ]);
                }
                None => {
                    table.add_row([
                        name.clone(),
                        metric.to_string(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    let text = table.render();
    println!("{text}");
    match write_results_file("scaling_fit.txt", &text) {
        Ok(p) => eprintln!("[scaling] wrote {}", p.display()),
        Err(e) => eprintln!("[scaling] could not write results file: {e}"),
    }
}
