//! Regenerates **Figure 3**: the evolution of the stochastic matrix on a
//! `|V_r| = |V_t| = 10` instance, from the uniform matrix to the
//! degenerate 0/1 assignment, rendered as text heatmaps.
//!
//! ```text
//! cargo run -p match-bench --release --bin fig3_matrix
//! ```

use match_bench::fig3::{render_evolution, run_matrix_evolution};
use match_bench::report::write_results_file;

fn main() {
    let out = run_matrix_evolution(10, 2005);
    let text = render_evolution(&out, 6);
    println!("{text}");
    eprintln!(
        "[fig3] converged after {} iterations ({:?}); best ET = {:.0}",
        out.iterations, out.stop_reason, out.cost
    );
    match write_results_file("fig3_matrix.txt", &text) {
        Ok(p) => eprintln!("[fig3] wrote {}", p.display()),
        Err(e) => eprintln!("[fig3] could not write results file: {e}"),
    }
}
