//! Batched-evaluation backend benchmark: the `match-eval` lane kernel
//! against the reference scalar kernel on one core, emitted as a
//! machine-readable JSON artefact (`BENCH_eval.json`) for CI trend
//! tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin eval
//! cargo run -p match-bench --release --bin eval -- --quick
//! cargo run -p match-bench --release --bin eval -- --json out.json --check
//! ```
//!
//! The workload is the CE sampler's natural shape: a `2n²`-row batch of
//! assignments pushed through [`InstancePlan::eval_batch`]. The gate
//! (`--check`) requires the Simd backend to deliver ≥ 4× the Scalar
//! backend's single-core throughput at n = 64 — the largest size whose
//! `c_{s,b}` link matrix is still L1-resident (`n²·8` bytes = 32 KiB
//! exactly). Below n = 64 the batch is too small to amortise the SoA
//! transpose and parity is allowed; above it the link matrix outgrows
//! L1 and both kernels taper towards the memory wall (n = 128 and 256
//! are still reported, ungated, so the taper stays visible in the
//! trend history). On hosts
//! without a usable vector unit (no AVX2 on x86-64, non-aarch64
//! exotics) the 4× gate degrades to a warn-pass parity check instead
//! of failing CI — the lane kernel is portable Rust, but the 4× claim
//! is about what the gather unit buys on real silicon.
//!
//! Scalar and Simd passes are interleaved and each side keeps its
//! fastest pass, so a host-load drift during the run inflates both
//! sides rather than skewing the ratio; a gated size that still misses
//! the floor is re-timed (minimums merged) before the gate fails.
//!
//! Every timed batch is also checked for bit-equality between the two
//! backends; a fast-but-wrong kernel fails regardless of flags.

use match_core::{build_plan, EvalBackend, MappingInstance};
use match_eval::{InstancePlan, LANES};
use match_graph::gen::InstanceGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The floor the `--check` gate enforces on SIMD-capable hosts.
const SPEEDUP_FLOOR: f64 = 4.0;

/// Sizes below this only need parity (the SoA transpose overhead is
/// not amortised by tiny batches).
const GATE_MIN_N: usize = 64;

/// The gate only binds while the row-major `c_{s,b}` link matrix
/// (`n² · 8` bytes) fits a 32 KiB L1d — the regime the 4× claim is
/// about. Past it (n = 128 is already 131 KiB) the gathers stream from
/// L2 and the ratio measures the host's cache hierarchy, not the
/// kernel; those sizes are still reported so the taper stays visible
/// in the trend history.
const GATE_L1_BYTES: usize = 32 * 1024;

/// Re-time a gated size this many times (merging per-side minimums)
/// before declaring the floor missed, pausing between attempts so a
/// multi-second host-load spike cannot blanket every attempt; absorbs
/// noise without weakening the floor itself.
const GATE_ATTEMPTS: usize = 6;

/// Pause between gate re-timing attempts.
const GATE_RETRY_PAUSE_MS: u64 = 1500;

/// Keep a single timing pass affordable at the largest sizes.
const MAX_ROWS: usize = 8192;

/// Whether this host has a vector unit the lane kernel's claims are
/// calibrated against. The kernel itself is portable; this only picks
/// which gate applies.
fn simd_capable() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true // NEON is baseline on aarch64
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

struct Timing {
    ms_per_pass: f64,
    rows_per_s: f64,
}

impl Timing {
    fn from_best(best_secs: f64, n_rows: usize) -> Timing {
        Timing {
            ms_per_pass: best_secs * 1e3,
            rows_per_s: n_rows as f64 / best_secs,
        }
    }
}

/// Time interleaved full-batch passes of both backends, keeping each
/// side's *fastest* pass: on shared single-core hosts the mean is
/// dominated by scheduler noise, while the minimum approaches the true
/// cost of the work, and alternating the backends means a load drift
/// mid-run inflates both sides instead of skewing the ratio. Runs at
/// least 5 pass pairs and keeps going until ~800 ms of wall clock has
/// accumulated. Returns `(scalar, simd)` best pass times in seconds
/// plus each backend's cost vector for the bit-equality check.
fn time_pair(plan: &InstancePlan, rows: &[usize], n_rows: usize) -> (f64, f64, Vec<f64>, Vec<f64>) {
    let mut scratch = plan.new_scratch();
    let mut costs_scalar = vec![0.0; n_rows];
    let mut costs_simd = vec![0.0; n_rows];
    // Warm-up passes size the scratch and fault the tables in.
    plan.eval_batch(
        EvalBackend::Scalar,
        rows,
        &mut costs_scalar,
        None,
        &mut scratch,
    );
    plan.eval_batch(EvalBackend::Simd, rows, &mut costs_simd, None, &mut scratch);
    let mut passes = 0u32;
    let mut best_scalar = f64::INFINITY;
    let mut best_simd = f64::INFINITY;
    let start = Instant::now();
    while passes < 5 || start.elapsed().as_secs_f64() < 0.8 {
        let t0 = Instant::now();
        plan.eval_batch(
            EvalBackend::Scalar,
            rows,
            &mut costs_scalar,
            None,
            &mut scratch,
        );
        best_scalar = best_scalar.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        plan.eval_batch(EvalBackend::Simd, rows, &mut costs_simd, None, &mut scratch);
        best_simd = best_simd.min(t0.elapsed().as_secs_f64());
        passes += 1;
    }
    (best_scalar, best_simd, costs_scalar, costs_simd)
}

fn fmt_timing(t: &Timing) -> String {
    format!(
        "{{\"ms_per_pass\":{:.3},\"rows_per_s\":{:.0}}}",
        t.ms_per_pass, t.rows_per_s
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_eval.json".to_string());

    // Quick mode still crosses the n ≥ 64 line so the 4× gate is
    // exercised on every CI run.
    let sizes: &[usize] = if quick {
        &[16, 64, 128]
    } else {
        &[16, 48, 64, 128, 256]
    };
    let capable = simd_capable();
    eprintln!(
        "[eval] single-core batched evaluation, LANES={LANES}, simd_capable={capable}{}",
        if capable {
            ""
        } else {
            " (4x gate degraded to parity)"
        }
    );

    let mut entries = Vec::new();
    let mut failures = Vec::new();
    for &n in sizes {
        let generator = InstanceGenerator::paper_family(n);
        let inst = MappingInstance::from_pair(&generator.generate(&mut StdRng::seed_from_u64(40)));
        let plan = build_plan(&inst);
        // The CE sampler's batch: 2n² assignment rows. Random
        // assignments (not permutations) keep the generator trivial;
        // the kernel's work per row is identical either way.
        let n_rows = (2 * n * n).min(MAX_ROWS);
        let mut rng = match_rngutil::SplitMix64::new(0x5eed ^ n as u64);
        let rows: Vec<usize> = (0..n_rows * n).map(|_| rng.random_range(0..n)).collect();

        let (mut best_scalar, mut best_simd, costs_scalar, costs_simd) =
            time_pair(&plan, &rows, n_rows);
        let gated = capable && n >= GATE_MIN_N && n * n * 8 <= GATE_L1_BYTES;
        if check && gated {
            // Re-time on a miss, merging each side's minimum: a
            // one-off host-load spike cannot fail the gate, while a
            // genuinely slow kernel still can.
            let mut attempts = 1;
            while best_scalar / best_simd < SPEEDUP_FLOOR && attempts < GATE_ATTEMPTS {
                std::thread::sleep(std::time::Duration::from_millis(GATE_RETRY_PAUSE_MS));
                let (s2, v2, _, _) = time_pair(&plan, &rows, n_rows);
                best_scalar = best_scalar.min(s2);
                best_simd = best_simd.min(v2);
                attempts += 1;
            }
        }
        let scalar = Timing::from_best(best_scalar, n_rows);
        let simd = Timing::from_best(best_simd, n_rows);
        let speedup = best_scalar / best_simd;
        eprintln!(
            "[eval] n={n:>4} rows={n_rows:>5}  scalar {:>8.3} ms/pass ({:>10.0} rows/s) | \
             simd {:>8.3} ms/pass ({:>10.0} rows/s)  ({speedup:.2}x)",
            scalar.ms_per_pass, scalar.rows_per_s, simd.ms_per_pass, simd.rows_per_s,
        );

        // Correctness before speed: the timed batches must agree
        // bit-for-bit, flags or not.
        if let Some(r) = (0..n_rows).find(|&r| costs_scalar[r].to_bits() != costs_simd[r].to_bits())
        {
            failures.push(format!(
                "n={n}: backends disagree on row {r} ({} vs {})",
                costs_scalar[r], costs_simd[r]
            ));
        }
        if check {
            if gated && speedup < SPEEDUP_FLOOR {
                failures.push(format!(
                    "n={n}: simd speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x floor"
                ));
            }
            if !gated && speedup < 0.75 {
                // Parity / ungated regime: simd must at least not
                // regress badly.
                failures.push(format!(
                    "n={n}: simd speedup {speedup:.2}x is a regression even for the parity regime"
                ));
            }
        }
        entries.push(format!(
            "    {{\"n\":{n},\"rows\":{n_rows},\"scalar\":{},\"simd\":{},\
             \"speedup\":{speedup:.3},\"gated\":{gated}}}",
            fmt_timing(&scalar),
            fmt_timing(&simd),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"eval\",\n  \"threads\": 1,\n  \"lanes\": {LANES},\n  \
         \"simd_capable\": {capable},\n  \"speedup_floor\": {SPEEDUP_FLOOR},\n  \
         \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[eval] wrote {json_path}"),
        Err(e) => {
            eprintln!("[eval] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[eval] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
