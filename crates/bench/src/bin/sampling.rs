//! Sampling-pipeline benchmark: sequential GenPerm batches versus the
//! fused flat alias pipeline, emitted as a machine-readable JSON artefact
//! (`BENCH_sampling.json`) for CI trend tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin sampling
//! cargo run -p match-bench --release --bin sampling -- --quick
//! cargo run -p match-bench --release --bin sampling -- --json out.json --check
//! ```
//!
//! `--check` exits non-zero when the batched pipeline (at the default
//! thread count) is slower than the sequential one for any `n ≥ 32` —
//! the CI smoke gate for the fused sample+evaluate path.

use match_ce::batch::FlatSampler;
use match_ce::model::CeModel;
use match_ce::PermutationModel;
use match_core::{exec_time, MappingInstance, MatchConfig, Matcher, SamplerMode};
use match_graph::gen::InstanceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

struct Measurement {
    ns_per_sample: f64,
    samples_per_s: f64,
}

fn fmt_measure(m: &Measurement) -> String {
    format!(
        "{{\"ns_per_sample\":{:.1},\"samples_per_s\":{:.0}}}",
        m.ns_per_sample, m.samples_per_s
    )
}

/// Time `reps` repetitions of a whole-batch closure; returns per-sample
/// cost over `batch` samples per repetition.
fn time_batches(batch: usize, reps: usize, mut f: impl FnMut()) -> Measurement {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let total = (batch * reps) as f64;
    Measurement {
        ns_per_sample: elapsed / total,
        samples_per_s: total / (elapsed / 1e9),
    }
}

fn sequential_batch(model: &PermutationModel, batch: usize, reps: usize) -> Measurement {
    let mut rng = StdRng::seed_from_u64(7);
    let mut samples: Vec<Vec<usize>> = Vec::new();
    time_batches(batch, reps, || {
        model.sample_batch(&mut rng, batch, &mut samples);
        black_box(samples.len());
    })
}

fn flat_batch(
    model: &PermutationModel,
    n: usize,
    batch: usize,
    reps: usize,
    threads: usize,
) -> Measurement {
    let mut data = vec![0usize; batch * n];
    let mut aux = vec![0.0f64; batch];
    let mut tables = model.new_tables();
    let mut iter_seed = 0u64;
    time_batches(batch, reps, || {
        iter_seed = iter_seed.wrapping_add(1);
        let seed = iter_seed;
        model.fill_tables(&mut tables);
        let tables_ref = &tables;
        match_par::parallel_fill_rows(
            &mut data,
            &mut aux,
            n,
            threads,
            || model.new_scratch(),
            |scratch, i, row, _aux| {
                let mut rng = match_rngutil::seed::rng_from(seed, i as u64);
                model.sample_flat(tables_ref, scratch, &mut rng, row);
            },
        );
        black_box(data.last().copied());
    })
}

/// End-to-end mapping time: one full MaTCH solve per sampler mode, same
/// instance, same seed, bounded iteration budget.
fn matcher_mt(inst: &MappingInstance, mode: SamplerMode, threads: usize) -> (f64, f64) {
    let cfg = MatchConfig {
        threads,
        sampler: mode,
        max_iters: 25,
        ..MatchConfig::default()
    };
    let out = Matcher::new(cfg).run(inst, &mut StdRng::seed_from_u64(41));
    (out.elapsed.as_secs_f64() * 1e3, out.cost)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_sampling.json".to_string());

    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 48] };
    let reps = if quick { 5 } else { 20 };
    let threads = match_par::default_threads();

    let mut entries = Vec::new();
    let mut failures = Vec::new();
    for &n in sizes {
        let model = PermutationModel::uniform(n);
        let batch = 2 * n * n;
        let seq = sequential_batch(&model, batch, reps);
        let flat1 = flat_batch(&model, n, batch, reps, 1);
        let flatp = flat_batch(&model, n, batch, reps, threads);
        let speedup = seq.ns_per_sample / flatp.ns_per_sample;
        eprintln!(
            "[sampling] n={n:>3} batch={batch:>5}  sequential {:>8.1} ns/sample | \
             flat t1 {:>8.1} | flat t{threads} {:>8.1}  ({speedup:.2}x)",
            seq.ns_per_sample, flat1.ns_per_sample, flatp.ns_per_sample
        );
        if check && n >= 32 && flatp.ns_per_sample > seq.ns_per_sample {
            failures.push(format!(
                "n={n}: batched {:.1} ns/sample slower than sequential {:.1}",
                flatp.ns_per_sample, seq.ns_per_sample
            ));
        }
        entries.push(format!(
            "    {{\"n\":{n},\"batch\":{batch},\"reps\":{reps},\
             \"sequential\":{},\"batched_t1\":{},\
             \"batched\":{{\"threads\":{threads},\"ns_per_sample\":{:.1},\"samples_per_s\":{:.0}}},\
             \"speedup_vs_sequential\":{speedup:.3}}}",
            fmt_measure(&seq),
            fmt_measure(&flat1),
            flatp.ns_per_sample,
            flatp.samples_per_s,
        ));
    }

    // End-to-end MT at the largest size: full solves, equal seed.
    let mt_n = *sizes.last().unwrap();
    let inst = MappingInstance::from_pair(
        &InstanceGenerator::paper_family(mt_n).generate(&mut StdRng::seed_from_u64(40)),
    );
    let (seq_ms, seq_cost) = matcher_mt(&inst, SamplerMode::Sequential, 1);
    let (bat_ms, bat_cost) = matcher_mt(&inst, SamplerMode::Batched, threads);
    let mt_speedup = seq_ms / bat_ms;
    eprintln!(
        "[sampling] matcher n={mt_n}: sequential(t1) {seq_ms:.1} ms (cost {seq_cost:.1}) | \
         batched(t{threads}) {bat_ms:.1} ms (cost {bat_cost:.1})  ({mt_speedup:.2}x MT)"
    );
    // Sanity: both modes optimise; costs must be in the same ballpark.
    let rand_cost = exec_time(
        &inst,
        &match_rngutil::random_permutation(mt_n, &mut StdRng::seed_from_u64(42)),
    );
    if bat_cost > rand_cost {
        failures.push(format!(
            "batched cost {bat_cost:.1} worse than a random mapping {rand_cost:.1}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sampling\",\n  \"threads\": {threads},\n  \"sizes\": [\n{}\n  ],\n  \
         \"matcher_mt\": {{\"n\": {mt_n}, \"sequential_t1_ms\": {seq_ms:.1}, \
         \"batched_ms\": {bat_ms:.1}, \"speedup\": {mt_speedup:.3}, \
         \"sequential_cost\": {seq_cost:.3}, \"batched_cost\": {bat_cost:.3}}}\n}}\n",
        entries.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[sampling] wrote {json_path}"),
        Err(e) => {
            eprintln!("[sampling] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[sampling] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
