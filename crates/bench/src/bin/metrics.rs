//! Metrics-overhead benchmark: what does wiring a [`MetricsRecorder`]
//! into a solver cost, relative to the allocation-free `NullRecorder`
//! baseline? Emitted as a machine-readable JSON artefact
//! (`BENCH_metrics.json`) for CI trend tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin metrics
//! cargo run -p match-bench --release --bin metrics -- --quick
//! cargo run -p match-bench --release --bin metrics -- --json out.json --check
//! ```
//!
//! Three configurations solve the same instance with the same seed on
//! the CE batched pipeline:
//!
//! 1. `NullRecorder` — the seed-era baseline;
//! 2. `MetricsRecorder` over `Metrics::null()` — what `match-serve`
//!    pays when metrics are compiled in but disabled (one branch);
//! 3. `MetricsRecorder` over a live registry — sharded atomics hot.
//!
//! `--check` exits non-zero when configuration 2 is more than 2% slower
//! than the baseline at n=48 — the NullMetrics handle must stay
//! indistinguishable from not instrumenting at all. Overhead is the
//! median of paired per-round ratios (rounds interleave the three
//! configurations back to back), which cancels machine drift that a
//! min-of-reps comparison on a shared host cannot. The live overhead
//! is recorded for trend tracking but not gated (it pays for real
//! atomic traffic and is allowed to cost a few percent).

use match_core::{Mapper, MappingInstance, MatchConfig, Matcher, SamplerMode};
use match_graph::gen::InstanceGenerator;
use match_metrics::{Metrics, MetricsRecorder};
use match_telemetry::{NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

/// Gate: NullMetrics solve time may exceed the baseline by at most this.
const MAX_NULL_OVERHEAD_PCT: f64 = 2.0;

/// One timed solve: wall ms and the final cost.
fn one_solve(inst: &MappingInstance, threads: usize, recorder: &mut dyn Recorder) -> (f64, f64) {
    let matcher = Matcher::new(MatchConfig {
        threads,
        sampler: SamplerMode::Batched,
        max_iters: 25,
        ..MatchConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(41);
    let start = Instant::now();
    let out = matcher.map_traced(inst, &mut rng, recorder);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    black_box(out.cost);
    (ms, out.cost)
}

/// Per-configuration timings with the repetitions interleaved
/// round-robin (baseline, null-metrics, live, baseline, …) so slow
/// drift on a shared machine hits every configuration equally instead
/// of biasing whichever block ran during the noisy stretch. Returns
/// `(per-round ms, final cost)` per configuration; round `i` of every
/// configuration ran adjacently in time.
fn interleaved_rounds(
    inst: &MappingInstance,
    threads: usize,
    reps: usize,
    recorders: &mut [&mut dyn Recorder],
) -> Vec<(Vec<f64>, f64)> {
    let k = recorders.len();
    let mut results = vec![(Vec::with_capacity(reps), f64::NAN); k];
    for rep in 0..=reps {
        // Rotate the starting slot each round: running in a fixed order
        // gives whichever slot goes first a systematic warm-up/ramp-down
        // position, which a paired ratio would mistake for overhead.
        for offset in 0..k {
            let slot = (rep + offset) % k;
            let (ms, cost) = one_solve(inst, threads, recorders[slot]);
            results[slot].1 = cost;
            // rep 0 is the warm-up round.
            if rep > 0 {
                results[slot].0.push(ms);
            }
        }
    }
    results
}

/// Median of an unsorted non-empty slice.
fn median(xs: &[f64]) -> f64 {
    let mut xs = xs.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

/// Paired overhead of `cfg` over `base` in percent: the median of the
/// per-round ratios. Each round's pair ran back to back, so machine
/// drift that slows a whole round cancels out of its ratio, and the
/// median discards the occasional round hit by an unpaired stall —
/// much tighter than comparing minima on a noisy shared host.
fn paired_overhead_pct(base: &[f64], cfg: &[f64]) -> f64 {
    let ratios: Vec<f64> = base.iter().zip(cfg).map(|(b, c)| c / b).collect();
    100.0 * (median(&ratios) - 1.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_metrics.json".to_string());

    let sizes: &[usize] = if quick { &[32, 48] } else { &[32, 48, 64] };
    let reps = if quick { 5 } else { 11 };
    let threads = match_par::default_threads();

    let mut entries = Vec::new();
    let mut failures = Vec::new();
    let gated_n = 48;
    for &n in sizes {
        let inst = MappingInstance::from_pair(
            &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(40)),
        );
        let mut base_rec = NullRecorder;
        let mut null_rec = MetricsRecorder::new(&Metrics::null(), "match");
        let live = Metrics::new();
        let mut live_rec = MetricsRecorder::new(&live, "match");
        let timed = interleaved_rounds(
            &inst,
            threads,
            reps,
            &mut [&mut base_rec, &mut null_rec, &mut live_rec],
        );
        let (base_rounds, base_cost) = &timed[0];
        let (null_rounds, null_cost) = &timed[1];
        let (live_rounds, _) = &timed[2];
        let (base_cost, null_cost) = (*base_cost, *null_cost);
        let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
        let (base_ms, null_ms, live_ms) = (min(base_rounds), min(null_rounds), min(live_rounds));
        let null_pct = paired_overhead_pct(base_rounds, null_rounds);
        let live_pct = paired_overhead_pct(base_rounds, live_rounds);
        // Gate on the smaller of two robust statistics: the paired
        // median and the ratio of per-config minima. A real regression
        // shows up in both; residual noise on a shared host rarely
        // pushes both past the budget in the same direction.
        let null_min_pct = 100.0 * (null_ms / base_ms - 1.0);
        let null_gate_pct = null_pct.min(null_min_pct);
        eprintln!(
            "[metrics] n={n:>3}  baseline {base_ms:>7.2} ms | null-metrics {null_ms:>7.2} ms \
             ({null_pct:+.2}%) | live {live_ms:>7.2} ms ({live_pct:+.2}%)"
        );
        // The disabled recorder must not perturb the trajectory either.
        if null_cost != base_cost {
            failures.push(format!(
                "n={n}: NullMetrics run found cost {null_cost} but baseline found {base_cost}"
            ));
        }
        if check && n == gated_n && null_gate_pct > MAX_NULL_OVERHEAD_PCT {
            failures.push(format!(
                "n={n}: NullMetrics overhead {null_gate_pct:.2}% (paired {null_pct:.2}%, \
                 min-ratio {null_min_pct:.2}%) exceeds {MAX_NULL_OVERHEAD_PCT}%"
            ));
        }
        // Sanity: the live run actually counted solver work.
        let snap = live.snapshot();
        let iters: u64 = snap
            .counters
            .iter()
            .filter(|(key, _)| key.name == "match_solver_iterations_total")
            .map(|(_, v)| v)
            .sum();
        if iters == 0 {
            failures.push(format!("n={n}: live registry recorded no iterations"));
        }
        entries.push(format!(
            "    {{\"n\":{n},\"reps\":{reps},\"baseline_ms\":{base_ms:.3},\
             \"null_metrics_ms\":{null_ms:.3},\"null_overhead_pct\":{null_pct:.3},\
             \"null_min_ratio_pct\":{null_min_pct:.3},\"null_gate_pct\":{null_gate_pct:.3},\
             \"live_ms\":{live_ms:.3},\"live_overhead_pct\":{live_pct:.3},\
             \"gated\":{}}}",
            n == gated_n
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"metrics\",\n  \"threads\": {threads},\n  \
         \"max_null_overhead_pct\": {MAX_NULL_OVERHEAD_PCT},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[metrics] wrote {json_path}"),
        Err(e) => {
            eprintln!("[metrics] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[metrics] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
