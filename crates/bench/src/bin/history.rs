//! Append bench JSON artefacts to an append-only trend file.
//!
//! ```text
//! cargo run -p match-bench --bin history -- \
//!     [--label SHA] [--out results/BENCH_history.jsonl] BENCH_*.json
//! ```
//!
//! Each input file becomes one JSONL line tagged with a run label
//! (`--label`, else `$GITHUB_SHA`, else `local`). Missing inputs are an
//! error; nothing is written unless every input parses as readable.

use match_bench::history::history_line;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label: Option<String> = None;
    let mut out_path = "results/BENCH_history.jsonl".to_string();
    let mut inputs: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).cloned();
                i += 2;
            }
            "--out" => {
                if let Some(p) = args.get(i + 1) {
                    out_path = p.clone();
                }
                i += 2;
            }
            other => {
                inputs.push(other.to_string());
                i += 1;
            }
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: history [--label SHA] [--out FILE.jsonl] BENCH_*.json ...");
        std::process::exit(2);
    }
    let label = label
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "local".to_string());

    // Read everything first so a missing artefact aborts before any append.
    let mut lines = Vec::with_capacity(inputs.len());
    for path in &inputs {
        let body = match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[history] cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let source = std::path::Path::new(path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        lines.push(history_line(&label, &source, &body));
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    use std::io::Write as _;
    let mut file = match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("[history] cannot open {out_path}: {e}");
            std::process::exit(2);
        }
    };
    for line in &lines {
        if let Err(e) = writeln!(file, "{line}") {
            eprintln!("[history] write failed: {e}");
            std::process::exit(2);
        }
    }
    eprintln!(
        "[history] appended {} line(s) to {out_path} (label {label})",
        lines.len()
    );
}
