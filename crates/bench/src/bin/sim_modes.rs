//! Extension experiment (beyond the paper): how the analytic cost
//! model's ranking of heuristics holds up under progressively more
//! realistic execution models. For each heuristic's mapping of one
//! instance per size, simulate 10 solver rounds under the three
//! contention models and report makespans.
//!
//! The paper's entire evaluation assumes Eq. 2 = reality; this
//! experiment quantifies the gap.
//!
//! ```text
//! cargo run -p match-bench --release --bin sim_modes
//! ```

use match_baselines::HillClimber;
use match_core::{Mapper, MappingInstance, Matcher};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::SeedSequence;
use match_sim::{SimConfig, SimMode, Simulator};
use match_viz::{format_sig, Table};

fn main() {
    let sizes = match match_bench::sweep::Profile::from_env() {
        match_bench::sweep::Profile::Paper => vec![10usize, 20, 30],
        match_bench::sweep::Profile::Quick => vec![8usize, 12],
    };
    let rounds = 10;

    let matcher = Matcher::default();
    let ga = FastMapGa::new(GaConfig {
        population: 200,
        generations: 300,
        ..GaConfig::paper_default()
    });
    let hill = HillClimber::default();
    let mappers: Vec<&dyn Mapper> = vec![&matcher, &ga, &hill];

    let mut table = Table::new([
        "size",
        "heuristic",
        "ET (Eq. 2)",
        "serial x10",
        "blocking x10",
        "link-contention x10",
        "blocking/serial",
    ])
    .with_title(format!(
        "Extension: analytic model vs simulated execution ({rounds} rounds)"
    ));

    for &size in &sizes {
        let mut seq = SeedSequence::new(31_337).child(size as u64);
        let mut rng = seq.next_rng();
        let inst = MappingInstance::from_pair(&PaperFamilyConfig::new(size).generate(&mut rng));
        for mapper in &mappers {
            let mut run_rng = seq.next_rng();
            let out = mapper.map(&inst, &mut run_rng);
            let mk = |mode: SimMode| {
                Simulator::new(
                    &inst,
                    SimConfig {
                        rounds,
                        mode,
                        trace: false,
                    },
                )
                .run(&out.mapping)
                .makespan
            };
            let serial = mk(SimMode::PaperSerial);
            let blocking = mk(SimMode::BlockingReceives);
            let link = mk(SimMode::LinkContention);
            table.add_row([
                size.to_string(),
                mapper.name().to_string(),
                format_sig(out.cost, 5),
                format_sig(serial, 5),
                format_sig(blocking, 5),
                format_sig(link, 5),
                format_sig(blocking / serial, 4),
            ]);
            eprintln!("[sim_modes] size={size} {} done", mapper.name());
        }
    }

    let text = table.render();
    println!("{text}");
    match match_bench::report::write_results_file("sim_modes.txt", &text) {
        Ok(p) => eprintln!("[sim_modes] wrote {}", p.display()),
        Err(e) => eprintln!("[sim_modes] could not write results file: {e}"),
    }
}
