//! Runs all five ablation studies (smoothing ζ, focus ρ, sample size N,
//! GenPerm vs naive sampling, extra baselines) and prints their tables.
//!
//! ```text
//! cargo run -p match-bench --release --bin ablations            # all
//! cargo run -p match-bench --release --bin ablations smoothing  # one
//! ```
//!
//! Selectors: `smoothing`, `rho`, `samples`, `genperm`, `ga-operators`, `baselines`.

use match_bench::ablation::{
    ablate_baselines, ablate_ga_operators, ablate_genperm, ablate_rho, ablate_sample_size,
    ablate_smoothing, AblationConfig,
};
use match_bench::report::write_results_file;
use match_bench::sweep::Profile;

fn main() {
    let cfg = match Profile::from_env() {
        Profile::Paper => AblationConfig::paper(),
        Profile::Quick => AblationConfig::quick(),
    };
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let want = |name: &str| all || which.iter().any(|w| w == name);

    let mut text = String::new();
    if want("smoothing") {
        let (_, t) = ablate_smoothing(&cfg);
        text.push_str(&t.render());
        text.push('\n');
    }
    if want("rho") {
        let (_, t) = ablate_rho(&cfg);
        text.push_str(&t.render());
        text.push('\n');
    }
    if want("samples") {
        let (_, t) = ablate_sample_size(&cfg);
        text.push_str(&t.render());
        text.push('\n');
    }
    if want("genperm") {
        let (_, t) = ablate_genperm(&cfg);
        text.push_str(&t.render());
        text.push('\n');
    }
    if want("ga-operators") {
        let (_, t) = ablate_ga_operators(&cfg);
        text.push_str(&t.render());
        text.push('\n');
    }
    if want("baselines") {
        let (_, t) = ablate_baselines(&cfg);
        text.push_str(&t.render());
        text.push('\n');
    }
    println!("{text}");
    match write_results_file("ablations.txt", &text) {
        Ok(p) => eprintln!("[ablations] wrote {}", p.display()),
        Err(e) => eprintln!("[ablations] could not write results file: {e}"),
    }
}
