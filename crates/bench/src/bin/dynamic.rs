//! Incremental re-mapping benchmark: warm re-map vs cold re-solve over
//! a stream of task arrival/departure epochs, emitted as a
//! machine-readable JSON artefact (`BENCH_dynamic.json`) for CI trend
//! tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin dynamic
//! cargo run -p match-bench --release --bin dynamic -- --quick
//! cargo run -p match-bench --release --bin dynamic -- --json out.json --check
//! ```
//!
//! Each epoch perturbs a sparse large-family instance through
//! [`match_sim::DynamicWorkload`] (arrivals/departures plus the changed
//! subgraph they touch), then maps it twice: **cold**, a full
//! multilevel re-solve that forgets the previous epoch, and
//! **incremental**, a [`match_core::remap_incremental`] pass that keeps
//! the prior mapping and refines only the changed subgraph. The CI gate
//! (`--check`) requires the incremental path at every n ≥ 256 to be at
//! least 2× faster than the cold re-solve at the median epoch while
//! landing within 1.05× of the cold cost — re-mapping must be cheap
//! *and* must not quietly rot the mapping.

use match_core::{
    remap_incremental, Mapper, MappingInstance, MultilevelConfig, RemapConfig, RemapStrategy,
    StopToken,
};
use match_graph::gen::InstanceGenerator;
use match_multilevel::MultilevelMapper;
use match_sim::DynamicWorkload;
use match_telemetry::NullRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Measured epochs per size (epoch 0, the shared cold start, is extra).
const EPOCHS: usize = 5;

/// Arrival/departure events drawn per epoch.
const EVENTS_PER_EPOCH: usize = 8;

/// Migration weight for the incremental path (power of two: exact).
const MU: f64 = 0.5;

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_dynamic.json".to_string());

    let sizes: &[usize] = if quick { &[256] } else { &[256, 512] };
    let threads = match_par::default_threads();

    let mut size_entries = Vec::new();
    let mut failures = Vec::new();
    for &n in sizes {
        let base = MappingInstance::from_pair(
            &InstanceGenerator::large_family(n).generate(&mut StdRng::seed_from_u64(40)),
        );
        let ml = MultilevelMapper::new(MultilevelConfig {
            threads,
            ..MultilevelConfig::default()
        });
        // Epoch 0: one shared cold solve seeds the incremental chain;
        // it is identical work on both sides, so it is not measured.
        let mut prior = ml
            .map(&base, &mut StdRng::seed_from_u64(71))
            .mapping
            .as_slice()
            .to_vec();
        let remap_cfg = RemapConfig {
            strategy: RemapStrategy::RefineOnly,
            mu: MU,
            ..RemapConfig::default()
        };
        let mut workload = DynamicWorkload::new(&base);
        let mut event_rng = StdRng::seed_from_u64(50 + n as u64);
        let mut epoch_entries = Vec::new();
        let mut speedups = Vec::new();
        let mut cost_ratios = Vec::new();
        for epoch in 1..=EPOCHS {
            let events = workload.generate_events(EVENTS_PER_EPOCH, &mut event_rng);
            let changed = workload.apply(&events);
            let inst = workload.instance();

            let start = Instant::now();
            let cold = ml.map(&inst, &mut StdRng::seed_from_u64(100 + epoch as u64));
            let cold_ms = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let inc = remap_incremental(
                &inst,
                Some(&prior),
                &changed,
                &remap_cfg,
                &mut StdRng::seed_from_u64(200 + epoch as u64),
                &mut NullRecorder,
                &StopToken::never(),
            );
            let inc_ms = start.elapsed().as_secs_f64() * 1e3;
            prior = inc.mapping.as_slice().to_vec();

            let speedup = cold_ms / inc_ms.max(1e-6);
            let cost_ratio = inc.cost / cold.cost;
            speedups.push(speedup);
            cost_ratios.push(cost_ratio);
            eprintln!(
                "[dynamic] n={n:>4} epoch {epoch}: {} events, {} changed | \
                 cold {cold_ms:>8.1} ms (cost {:.1}) | incremental {inc_ms:>7.2} ms \
                 (cost {:.1}, {} migrated)  ({speedup:.1}x, cost {cost_ratio:.3}x)",
                events.len(),
                changed.len(),
                cold.cost,
                inc.cost,
                inc.migrated,
            );
            epoch_entries.push(format!(
                "        {{\"epoch\":{epoch},\"events\":{},\"changed\":{},\
                 \"cold\":{{\"ms\":{cold_ms:.2},\"cost\":{:.3}}},\
                 \"incremental\":{{\"ms\":{inc_ms:.3},\"cost\":{:.3},\
                 \"migrated\":{},\"evaluations\":{}}},\
                 \"speedup\":{speedup:.3},\"cost_ratio\":{cost_ratio:.4}}}",
                events.len(),
                changed.len(),
                cold.cost,
                inc.cost,
                inc.migrated,
                inc.evaluations,
            ));
        }
        let med_speedup = median(&speedups);
        let med_ratio = median(&cost_ratios);
        eprintln!("[dynamic] n={n:>4} medians: {med_speedup:.1}x faster, {med_ratio:.3}x cost");
        if check && n >= 256 {
            if med_speedup < 2.0 {
                failures.push(format!(
                    "n={n}: median incremental speedup {med_speedup:.2}x is below the 2x gate"
                ));
            }
            if med_ratio > 1.05 {
                failures.push(format!(
                    "n={n}: median incremental cost ratio {med_ratio:.3}x exceeds the 1.05x gate"
                ));
            }
        }
        size_entries.push(format!(
            "    {{\"n\":{n},\"family\":\"large\",\"mu\":{MU},\
             \"events_per_epoch\":{EVENTS_PER_EPOCH},\"epochs\":[\n{}\n      ],\
             \"median_speedup\":{med_speedup:.3},\"median_cost_ratio\":{med_ratio:.4}}}",
            epoch_entries.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"dynamic\",\n  \"threads\": {threads},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        size_entries.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[dynamic] wrote {json_path}"),
        Err(e) => {
            eprintln!("[dynamic] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[dynamic] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
