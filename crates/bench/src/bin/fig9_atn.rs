//! Regenerates **Figure 9**: the application turnaround time
//! `ATN = ET + MT` per size (the paper's unit convention treats one ET
//! cost unit as one second; see EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p match-bench --release --bin fig9_atn
//! cargo run -p match-bench --release --bin fig9_atn -- --trace results/traces
//! ```

use match_bench::report::{
    chart_atn, sweep_cached_traced, trace_dir_from_args, write_results_file,
};
use match_bench::sweep::Profile;
use match_viz::{format_sig, Table};

fn main() {
    let profile = Profile::from_env();
    eprintln!("[fig9] profile: {profile:?}");
    let data = sweep_cached_traced(profile, trace_dir_from_args().as_deref());

    // A companion table with the exact ATN numbers.
    let mut header = vec!["ATN = ET + MT".to_string()];
    header.extend(data.sizes.iter().map(|s| s.to_string()));
    let mut table = Table::new(header).with_title("Figure 9 data: application turnaround time");
    for (h, name) in data.names.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(data.cells[h].iter().map(|c| format_sig(c.mean_atn(), 5)));
        table.add_row(row);
    }

    let text = format!("{}\n{}", table.render(), chart_atn(&data).render());
    println!("{text}");
    match write_results_file("fig9_atn.txt", &text) {
        Ok(p) => eprintln!("[fig9] wrote {}", p.display()),
        Err(e) => eprintln!("[fig9] could not write results file: {e}"),
    }
}
