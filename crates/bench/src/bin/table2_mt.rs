//! Regenerates **Table 2** (mapping times, FastMap-GA vs MaTCH) and
//! **Figure 8** (the same data as a bar chart), plus evaluation-count
//! rows as the machine-independent companion metric.
//!
//! ```text
//! cargo run -p match-bench --release --bin table2_mt
//! cargo run -p match-bench --release --bin table2_mt -- --trace results/traces
//! ```

use match_bench::report::{
    chart_mt, sweep_cached_traced, table_mt, trace_dir_from_args, write_results_file,
};
use match_bench::sweep::Profile;

fn main() {
    let profile = Profile::from_env();
    eprintln!("[table2] profile: {profile:?}");
    let data = sweep_cached_traced(profile, trace_dir_from_args().as_deref());
    let table = table_mt(&data, "FastMap-GA", "MaTCH");
    let chart = chart_mt(&data);
    let text = format!("{}\n{}", table.render(), chart.render());
    println!("{text}");
    match write_results_file("table2_mt.txt", &text) {
        Ok(p) => eprintln!("[table2] wrote {}", p.display()),
        Err(e) => eprintln!("[table2] could not write results file: {e}"),
    }
}
