//! Serve scale-out benchmark: a replayable arrival trace driven against
//! in-process [`ShardPool`] deployments, emitted as a machine-readable
//! JSON artefact (`BENCH_serve.json`) for CI trend tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin serve
//! cargo run -p match-bench --release --bin serve -- --quick
//! cargo run -p match-bench --release --bin serve -- --json out.json --check
//! cargo run -p match-bench --release --bin serve -- --trace-out trace.jsonl
//! ```
//!
//! The load generator is deterministic and replays two traces built
//! from `T` paper-family templates with a seeded Zipf template mix
//! (real arrival streams resubmit a few hot graph shapes far more
//! often than the tail):
//!
//! 1. **Sharding throughput** — the *hot* trace: arrivals drawn from a
//!    small pool of repeated (template, seed) combos, i.e. the
//!    resubmission traffic the LRU result cache exists for. Each combo
//!    is primed once (unmeasured), then the trace replays closed-loop
//!    with one synchronous connection per shard — the standard
//!    per-shard command-stream driver, so aggregate throughput
//!    measures how many independent request streams the deployment
//!    sustains on its hot path (front-end round trips, queue hop,
//!    cache lookup) rather than raw solver CPU, which a CI box may not
//!    be able to parallelise at all. Gate: 2-shard ≥ 1.6× 1-shard.
//! 2. **Warm starts** — the *solve* trace: one unique seed per request
//!    so every job is real solver work, replayed pipelined against a
//!    cold pool (`α = 0`) and against a warm pool (`α = 0.5`) whose
//!    store was seeded with one unmeasured solve per template.
//!    Requests pair by seed, so iteration and cost deltas are exact.
//!    Gates: warm p50 (server-side solve latency) < cold p50, median
//!    CE iteration reduction ≥ 30%, median warm cost ≤ 1.02× cold.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::io::to_text;
use match_serve::{
    job_key, Client, Request, Response, ServeConfig, ShardPool, SolveRequest, SolveResponse,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ALGO: &str = "match-batched";
const ZIPF_S: f64 = 1.1;
const WARM_ALPHA: f64 = 0.5;
const MASTER_SEED: u64 = 2005;

struct Template {
    n: usize,
    tig: String,
    platform: String,
    /// Parsed instance, kept for computing per-request routing keys.
    inst: match_core::MappingInstance,
}

fn make_templates(sizes: &[usize]) -> Vec<Template> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ n as u64);
            let pair = PaperFamilyConfig::new(n).generate(&mut rng);
            let inst = match_core::MappingInstance::new(&pair.tig, &pair.resources);
            Template {
                n,
                tig: to_text(pair.tig.graph()),
                platform: to_text(pair.resources.graph()),
                inst,
            }
        })
        .collect()
}

/// One arrival: which template, under which seed.
struct Arrival {
    template: usize,
    seed: u64,
}

/// Sample a template index from the Zipf mix: template `k` (0-based
/// popularity rank) with probability ∝ 1/(k+1)^s.
fn zipf_template(n_templates: usize, rng: &mut StdRng) -> usize {
    let weights: Vec<f64> = (0..n_templates)
        .map(|k| 1.0 / ((k + 1) as f64).powf(ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (k, w) in weights.iter().enumerate() {
        if u < *w {
            return k;
        }
        u -= w;
    }
    n_templates - 1
}

/// The solve trace: Zipf template mix, one unique seed per request, so
/// nothing is ever answered from the LRU cache.
fn build_solve_trace(n_templates: usize, requests: usize) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(MASTER_SEED);
    (0..requests)
        .map(|i| Arrival {
            template: zipf_template(n_templates, &mut rng),
            seed: 1 + i as u64,
        })
        .collect()
}

/// The hot trace: a pool of `combos` fixed (template, seed) pairs —
/// templates Zipf-mixed, seeds reserved well away from the solve trace
/// — resubmitted `requests` times with a uniform draw over the pool.
/// Returns `(pool, trace)`; priming the pool once makes every trace
/// arrival a result-cache hit.
fn build_hot_trace(
    n_templates: usize,
    combos: usize,
    requests: usize,
) -> (Vec<Arrival>, Vec<Arrival>) {
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x5eed);
    let pool: Vec<Arrival> = (0..combos)
        .map(|c| Arrival {
            template: zipf_template(n_templates, &mut rng),
            seed: 500_000 + c as u64,
        })
        .collect();
    let trace = (0..requests)
        .map(|_| {
            let pick = &pool[rng.random_range(0..combos)];
            Arrival {
                template: pick.template,
                seed: pick.seed,
            }
        })
        .collect();
    (pool, trace)
}

fn solve_request(t: &Template, id: String, seed: u64) -> SolveRequest {
    SolveRequest {
        id,
        algo: ALGO.to_string(),
        seed,
        deadline_ms: None,
        backend: None,
        tig: t.tig.clone(),
        platform: t.platform.clone(),
    }
}

/// Replay `trace` against `pool`, routing each request by its canonical
/// job key (instance × algo × seed — the result-cache identity, so a
/// repeat of the same request always lands where its cached answer
/// lives, while a Zipf-hot template still spreads across shards via its
/// seeds). One pipelined connection per shard sends its whole share up
/// front and then drains the replies, so wall time measures shard
/// capacity, not client-side scheduling. Returns responses in trace
/// order plus the wall time.
fn run_trace(
    pool: &ShardPool,
    templates: &[Template],
    trace: &[Arrival],
) -> (Vec<SolveResponse>, f64) {
    let mut buckets: HashMap<SocketAddr, Vec<(usize, SolveRequest)>> = HashMap::new();
    for (i, arrival) in trace.iter().enumerate() {
        let t = &templates[arrival.template];
        let addr = pool.route_addr(job_key(&t.inst, ALGO, arrival.seed));
        buckets
            .entry(addr)
            .or_default()
            .push((i, solve_request(t, format!("r{i}"), arrival.seed)));
    }
    let started = Instant::now();
    let mut indexed: Vec<(usize, SolveResponse)> = std::thread::scope(|scope| {
        let conns: Vec<_> = buckets
            .into_iter()
            .map(|(addr, reqs)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to shard");
                    for (_, req) in &reqs {
                        client
                            .send(&Request::Solve(req.clone()))
                            .expect("send solve");
                    }
                    reqs.iter()
                        .map(|_| match client.recv().expect("recv solve") {
                            // The daemon may complete out of submission
                            // order; the id carries the trace index.
                            Response::Solved(r) => {
                                let i: usize = r.id[1..].parse().expect("rN id");
                                (i, r)
                            }
                            other => panic!("unexpected response: {other:?}"),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        conns
            .into_iter()
            .flat_map(|conn| conn.join().expect("shard connection"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    indexed.sort_by_key(|(i, _)| *i);
    (indexed.into_iter().map(|(_, r)| r).collect(), wall)
}

/// Replay `trace` closed-loop: one synchronous connection per shard,
/// each issuing its routed share of the trace one request at a time.
/// Returns responses (unordered) plus wall time and per-shard request
/// counts (to make routing balance visible in the log).
fn run_closed_loop(
    pool: &ShardPool,
    templates: &[Template],
    trace: &[Arrival],
) -> (Vec<SolveResponse>, f64, Vec<usize>) {
    let mut buckets: HashMap<SocketAddr, Vec<(usize, SolveRequest)>> = HashMap::new();
    for (i, arrival) in trace.iter().enumerate() {
        let t = &templates[arrival.template];
        let addr = pool.route_addr(job_key(&t.inst, ALGO, arrival.seed));
        buckets
            .entry(addr)
            .or_default()
            .push((i, solve_request(t, format!("h{i}"), arrival.seed)));
    }
    let counts = buckets.values().map(|b| b.len()).collect();
    let started = Instant::now();
    let resps: Vec<SolveResponse> = std::thread::scope(|scope| {
        let conns: Vec<_> = buckets
            .into_iter()
            .map(|(addr, reqs)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to shard");
                    reqs.iter()
                        .map(|(_, req)| match client.call(&Request::Solve(req.clone())) {
                            Ok(Response::Solved(r)) => r,
                            other => panic!("unexpected response: {other:?}"),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        conns
            .into_iter()
            .flat_map(|conn| conn.join().expect("shard connection"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    (resps, wall, counts)
}

fn pool_config(warm_alpha: f64, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_cap,
        warm_alpha,
        // Single solver thread: deterministic iteration counts, so the
        // cold and warm passes pair exactly by seed.
        solver_threads: Some(1),
        ..ServeConfig::default()
    }
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

fn solve_ns_sorted(resps: &[SolveResponse]) -> Vec<u64> {
    let mut ns: Vec<u64> = resps.iter().map(|r| r.solve_ns).collect();
    ns.sort_unstable();
    ns
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let json_path = flag("--json").unwrap_or_else(|| "results/BENCH_serve.json".to_string());
    let trace_out = flag("--trace-out");

    let sizes: &[usize] = if quick {
        &[12, 16, 20]
    } else {
        &[12, 16, 20, 24, 28]
    };
    let requests = if quick { 24 } else { 80 };
    let hot_combos = 64;
    let hot_requests = if quick { 96 } else { 192 };

    let templates = make_templates(sizes);
    let trace = build_solve_trace(templates.len(), requests);
    let (hot_pool, hot_trace) = build_hot_trace(templates.len(), hot_combos, hot_requests);
    if let Some(path) = &trace_out {
        let record = |phase: &str, i: usize, a: &Arrival| {
            format!(
                "{{\"phase\":\"{phase}\",\"request\":{i},\"template\":{},\"n\":{},\
                 \"seed\":{},\"algo\":\"{ALGO}\"}}\n",
                a.template, templates[a.template].n, a.seed
            )
        };
        let lines: String = trace
            .iter()
            .enumerate()
            .map(|(i, a)| record("solve", i, a))
            .chain(
                hot_trace
                    .iter()
                    .enumerate()
                    .map(|(i, a)| record("hot", i, a)),
            )
            .collect();
        if let Err(e) = std::fs::write(path, lines) {
            eprintln!("[serve] could not write trace {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("[serve] wrote arrival trace to {path}");
    }

    let mut failures = Vec::new();

    // ---- Phase 1: sharded hot-path throughput ------------------------
    let mut shard_rps = Vec::new();
    for shards in [1usize, 2] {
        let pool = ShardPool::start(shards, &pool_config(0.0, hot_requests)).expect("shard pool");
        // Prime every combo through the ring so the measured replay is
        // pure hot-path traffic.
        run_closed_loop(&pool, &templates, &hot_pool);
        let (resps, wall, counts) = run_closed_loop(&pool, &templates, &hot_trace);
        pool.shutdown().expect("shard pool shutdown");
        assert_eq!(resps.len(), hot_requests);
        assert!(
            resps.iter().all(|r| r.cached),
            "a primed hot trace must be answered from the result cache"
        );
        let rps = hot_requests as f64 / wall;
        eprintln!(
            "[serve] {shards}-shard hot path: {rps:>7.1} req/s ({hot_requests} requests, \
             split {counts:?})"
        );
        shard_rps.push(rps);
    }
    let (one_rps, two_rps) = (shard_rps[0], shard_rps[1]);
    let speedup = two_rps / one_rps;
    eprintln!("[serve] sharding speedup: {speedup:.2}x");
    if check && speedup < 1.6 {
        failures.push(format!(
            "2-shard throughput {two_rps:.1} req/s is only {speedup:.2}x the 1-shard \
             {one_rps:.1} req/s (gate: >= 1.6x)"
        ));
    }

    // ---- Phase 2: warm starts vs cold --------------------------------
    // Cold baseline: warm starts disabled, so every solve runs the full
    // CE schedule.
    let cold_pool = ShardPool::start(1, &pool_config(0.0, requests)).expect("cold pool");
    let (cold, _) = run_trace(&cold_pool, &templates, &trace);
    cold_pool.shutdown().expect("cold shutdown");
    assert_eq!(cold.len(), requests);
    assert!(
        cold.iter().all(|r| !r.cached),
        "unique seeds must defeat the result cache"
    );
    let cold = &cold;
    // Warm pool: seed the store with one unmeasured solve per template
    // (reserved seeds far outside the trace range), then replay.
    let warm_pool = ShardPool::start(1, &pool_config(WARM_ALPHA, requests)).expect("warm pool");
    let seeding: Vec<Arrival> = (0..templates.len())
        .map(|t| Arrival {
            template: t,
            seed: 1_000_000 + t as u64,
        })
        .collect();
    run_trace(&warm_pool, &templates, &seeding);
    let (warm, _) = run_trace(&warm_pool, &templates, &trace);
    let warm_summaries = warm_pool.shutdown().expect("warm shutdown");
    let warm_hits: u64 = warm_summaries.iter().map(|s| s.warm_hits).sum();

    let cold_ns = solve_ns_sorted(cold);
    let warm_ns = solve_ns_sorted(&warm);
    let (cold_p50, cold_p99) = (percentile_ms(&cold_ns, 0.5), percentile_ms(&cold_ns, 0.99));
    let (warm_p50, warm_p99) = (percentile_ms(&warm_ns, 0.5), percentile_ms(&warm_ns, 0.99));
    // Same seed on both sides ⇒ request i pairs exactly.
    let mut iter_reductions: Vec<f64> = cold
        .iter()
        .zip(&warm)
        .map(|(c, w)| 1.0 - w.iterations as f64 / c.iterations.max(1) as f64)
        .collect();
    iter_reductions.sort_by(|a, b| a.total_cmp(b));
    let mut cost_ratios: Vec<f64> = cold
        .iter()
        .zip(&warm)
        .map(|(c, w)| w.cost / c.cost)
        .collect();
    cost_ratios.sort_by(|a, b| a.total_cmp(b));
    let median_reduction = median(&iter_reductions);
    let median_cost_ratio = median(&cost_ratios);
    let max_cost_ratio = cost_ratios.last().copied().unwrap_or(1.0);
    eprintln!(
        "[serve] warm: p50 {warm_p50:.2} ms vs cold {cold_p50:.2} ms | median iteration \
         reduction {:.0}% | median cost ratio {median_cost_ratio:.4} (max {max_cost_ratio:.4}) \
         | {warm_hits}/{requests} warm hits",
        median_reduction * 100.0
    );
    if check {
        if warm_hits < requests as u64 {
            failures.push(format!(
                "only {warm_hits}/{requests} requests warm-hit after seeding every template"
            ));
        }
        if warm_p50 >= cold_p50 {
            failures.push(format!(
                "warm p50 {warm_p50:.2} ms not below cold p50 {cold_p50:.2} ms"
            ));
        }
        if median_reduction < 0.30 {
            failures.push(format!(
                "median CE iteration reduction {:.1}% below the 30% gate",
                median_reduction * 100.0
            ));
        }
        if median_cost_ratio > 1.02 {
            failures.push(format!(
                "median warm cost ratio {median_cost_ratio:.4} above the 1.02x gate"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"algo\": \"{ALGO}\",\n  \"requests\": {requests},\n  \
         \"templates\": {},\n  \"template_sizes\": [{}],\n  \"zipf_s\": {ZIPF_S},\n  \
         \"warm_alpha\": {WARM_ALPHA},\n  \
         \"sharding\": {{\"driver\": \"closed-loop, one connection per shard\", \
         \"hot_combos\": {hot_combos}, \"hot_requests\": {hot_requests}, \
         \"one_shard_rps\": {one_rps:.2}, \"two_shard_rps\": {two_rps:.2}, \
         \"speedup\": {speedup:.3}}},\n  \
         \"latency_ms\": {{\"cold_p50\": {cold_p50:.3}, \"cold_p99\": {cold_p99:.3}, \
         \"warm_p50\": {warm_p50:.3}, \"warm_p99\": {warm_p99:.3}}},\n  \
         \"warm\": {{\"hits\": {warm_hits}, \"median_iteration_reduction\": \
         {median_reduction:.4}, \"median_cost_ratio\": {median_cost_ratio:.4}, \
         \"max_cost_ratio\": {max_cost_ratio:.4}}}\n}}\n",
        templates.len(),
        sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[serve] wrote {json_path}"),
        Err(e) => {
            eprintln!("[serve] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[serve] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
