//! Extension experiment: the many-to-one regime the paper only gestures
//! at ("a few simple modifications … will take care of other cases",
//! §4). Fixed platform of 8 resources, growing task counts; compares
//! the generalised MaTCH (independent-rows model), the hierarchical
//! FastMap scheme (cluster + GA), greedy list scheduling, hill climbing
//! and random search.
//!
//! Two workload regimes are reported, because they have opposite
//! optima under Eq. 1–2:
//!
//! * **comm-dominated** (the paper's weight ranges): co-location is
//!   free, so consolidating every task onto one cheap resource wins —
//!   the model gives no credit for parallelism beyond communication
//!   avoidance. Heuristics are judged by whether they find that corner.
//! * **comp-dominated** (computation weights × 2000): spreading load
//!   matters, and the mapping problem is genuinely multi-resource.
//!
//! ```text
//! cargo run -p match-bench --release --bin many_to_one_sweep
//! ```

use match_baselines::{FastMapScheme, GreedyMapper, HillClimber, RandomSearch, RecursiveBisection};
use match_core::{Mapper, MapperOutcome, MappingInstance, MatchConfig, Matcher};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::InstancePair;
use match_rngutil::SeedSequence;
use match_viz::{format_sig, Table};

/// The generalised MaTCH wrapped as a [`Mapper`] (the trait's `map`
/// routes to the square solver, so this wrapper calls the
/// assignment-model entry point instead).
struct ManyToOneMatcher(Matcher);

impl Mapper for ManyToOneMatcher {
    fn name(&self) -> &str {
        "MaTCH-m21"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut rand::rngs::StdRng) -> MapperOutcome {
        self.0.run_many_to_one(inst, rng).into_mapper_outcome()
    }
}

fn main() {
    let resources = 8usize;
    let task_counts = match match_bench::sweep::Profile::from_env() {
        match_bench::sweep::Profile::Paper => vec![16usize, 32, 64],
        match_bench::sweep::Profile::Quick => vec![12usize, 24],
    };
    let runs = 3;
    let mut text = String::new();
    for (regime, comp_scale) in [
        ("comm-dominated (paper weights)", 1u32),
        ("comp-dominated (W x2000)", 2000),
    ] {
        let matcher = ManyToOneMatcher(Matcher::new(MatchConfig {
            // N = 2·tasks·resources: the assignment matrix has
            // tasks × resources entries rather than |V|².
            sample_size: None,
            ..MatchConfig::default()
        }));
        let fastmap = FastMapScheme::new(FastMapGa::new(GaConfig {
            population: 200,
            generations: 300,
            ..GaConfig::paper_default()
        }));
        let greedy = GreedyMapper;
        let bisect = RecursiveBisection::default();
        let hill = HillClimber::default();
        let random = RandomSearch::new(50_000);
        let mappers: Vec<&dyn Mapper> = vec![&matcher, &fastmap, &bisect, &greedy, &hill, &random];

        let mut table = Table::new({
            let mut h = vec!["mean ET".to_string()];
            h.extend(task_counts.iter().map(|t| format!("{t} tasks")));
            h
        })
        .with_title(format!(
            "Extension: many-to-one onto {resources} resources, {regime} ({runs} runs per cell)"
        ));

        for mapper in &mappers {
            let mut row = vec![mapper.name().to_string()];
            for &tasks in &task_counts {
                let mut acc = 0.0;
                for run in 0..runs {
                    let mut seq = SeedSequence::new(777).child(tasks as u64).child(run as u64);
                    let mut rng = seq.next_rng();
                    let tig = PaperFamilyConfig::new(tasks)
                        .with_comp_scale(comp_scale)
                        .generate_tig(&mut rng);
                    let platform = PaperFamilyConfig::new(resources).generate_platform(&mut rng);
                    let inst = MappingInstance::from_pair(&InstancePair {
                        tig,
                        resources: platform,
                    });
                    let mut run_rng = seq.next_rng();
                    let out = mapper.map(&inst, &mut run_rng);
                    assert!(out.mapping.validate(&inst).is_ok());
                    acc += out.cost;
                }
                row.push(format_sig(acc / runs as f64, 5));
            }
            table.add_row(row);
            eprintln!("[m21] {} done", mapper.name());
        }

        text.push_str(&table.render());
        text.push('\n');
    }
    println!("{text}");
    match match_bench::report::write_results_file("many_to_one_sweep.txt", &text) {
        Ok(p) => eprintln!("[m21] wrote {}", p.display()),
        Err(e) => eprintln!("[m21] could not write results file: {e}"),
    }
}
