//! Multilevel-vs-flat scaling benchmark: the coarsen–solve–refine
//! driver against the flat batched CE across the n² wall, emitted as a
//! machine-readable JSON artefact (`BENCH_multilevel.json`) for CI
//! trend tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin multilevel
//! cargo run -p match-bench --release --bin multilevel -- --quick
//! cargo run -p match-bench --release --bin multilevel -- --json out.json --check
//! ```
//!
//! At the paper's scale (n = 48, paper family) the flat CE runs at full
//! fidelity (`N = 2n²` samples per iteration) and the quality gate
//! applies: multilevel must land within 5% of the flat cost. Past the
//! wall (n ≥ 512, sparse large family) a full-fidelity flat iteration
//! is unaffordable — at n = 4096, `2n²` GenPerm draws are ~10¹²
//! operations per iteration — so the flat baseline is **budget-capped**
//! (sample size and iteration caps recorded in the JSON) and still
//! loses: the wall-clock gate requires multilevel to be strictly faster
//! at every n ≥ 512 while producing far better mappings.

use match_core::{
    exec_time, Mapper, MappingInstance, MatchConfig, Matcher, MultilevelConfig, SamplerMode,
};
use match_graph::gen::InstanceGenerator;
use match_multilevel::MultilevelMapper;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Run {
    ms: f64,
    cost: f64,
    evaluations: u64,
}

fn fmt_run(r: &Run) -> String {
    format!(
        "{{\"ms\":{:.1},\"cost\":{:.3},\"evaluations\":{}}}",
        r.ms, r.cost, r.evaluations
    )
}

/// The flat batched-CE baseline. Below the wall the paper's implicit
/// `N = 2n²` applies untouched; at and past it the sample budget is
/// capped so a run finishes at all. The caps are reported in the JSON —
/// a capped baseline is a *weaker* baseline, which only makes the
/// wall-clock gate easier to interpret, not easier to pass: the capped
/// flat run still spends far longer than multilevel at the same n.
fn flat_config(n: usize, threads: usize) -> MatchConfig {
    let capped = n >= 512;
    MatchConfig {
        threads,
        sampler: SamplerMode::Batched,
        sample_size: capped.then(|| (2 * n * n).min(32_768)),
        max_iters: if capped { 10 } else { 60 },
        ..MatchConfig::default()
    }
}

fn flat_solve(inst: &MappingInstance, config: MatchConfig) -> Run {
    let matcher = Matcher::new(config);
    let start = Instant::now();
    let out = matcher
        .run(inst, &mut StdRng::seed_from_u64(29))
        .into_mapper_outcome();
    Run {
        ms: start.elapsed().as_secs_f64() * 1e3,
        cost: out.cost,
        evaluations: out.evaluations,
    }
}

fn multilevel_solve(inst: &MappingInstance, threads: usize) -> Run {
    let mapper = MultilevelMapper::new(MultilevelConfig {
        threads,
        ..MultilevelConfig::default()
    });
    let start = Instant::now();
    let out = mapper.map(inst, &mut StdRng::seed_from_u64(29));
    Run {
        ms: start.elapsed().as_secs_f64() * 1e3,
        cost: out.cost,
        evaluations: out.evaluations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_multilevel.json".to_string());

    // Quick mode still crosses the wall once so the n ≥ 512 gate is
    // exercised on every CI run.
    let sizes: &[usize] = if quick {
        &[48, 512]
    } else {
        &[48, 256, 1024, 4096]
    };
    let threads = match_par::default_threads();

    let mut entries = Vec::new();
    let mut failures = Vec::new();
    for &n in sizes {
        // Paper family at paper scale; the sparse bounded-degree family
        // beyond it (a 0.7-dense TIG at n = 4096 would carry ~5.9M
        // edges and say nothing about real large task graphs).
        let (family, generator) = if n <= 48 {
            ("paper", InstanceGenerator::paper_family(n))
        } else {
            ("large", InstanceGenerator::large_family(n))
        };
        let inst = MappingInstance::from_pair(&generator.generate(&mut StdRng::seed_from_u64(40)));
        let flat_cfg = flat_config(n, threads);
        let capped = n >= 512;
        let flat = flat_solve(&inst, flat_cfg.clone());
        let ml = multilevel_solve(&inst, threads);
        let speedup = flat.ms / ml.ms;
        let cost_ratio = ml.cost / flat.cost;
        eprintln!(
            "[multilevel] n={n:>4} ({family:>5})  flat {:>9.1} ms (cost {:.1}{}) | \
             multilevel {:>8.1} ms (cost {:.1})  ({speedup:.2}x, cost {:.3}x)",
            flat.ms,
            flat.cost,
            if capped { ", capped" } else { "" },
            ml.ms,
            ml.cost,
            cost_ratio,
        );
        // Quality gate at paper scale: coarsening must not cost quality
        // where the flat solver is at full fidelity.
        if check && n <= 50 && cost_ratio > 1.05 {
            failures.push(format!(
                "n={n}: multilevel cost {:.3} exceeds 1.05x flat CE cost {:.3}",
                ml.cost, flat.cost
            ));
        }
        // Wall-clock gate past the wall: strictly faster, even against
        // the budget-capped baseline.
        if check && n >= 512 && ml.ms >= flat.ms {
            failures.push(format!(
                "n={n}: multilevel {:.1} ms not strictly faster than flat CE {:.1} ms",
                ml.ms, flat.ms
            ));
        }
        // Sanity at every size: the driver must actually optimise.
        let rand_cost = exec_time(
            &inst,
            &match_rngutil::random_permutation(n, &mut StdRng::seed_from_u64(42)),
        );
        if ml.cost >= rand_cost {
            failures.push(format!(
                "n={n}: multilevel cost {:.1} no better than a random mapping {rand_cost:.1}",
                ml.cost
            ));
        }
        entries.push(format!(
            "    {{\"n\":{n},\"family\":\"{family}\",\
             \"flat\":{{\"ms\":{:.1},\"cost\":{:.3},\"evaluations\":{},\
             \"sample_size\":{},\"max_iters\":{},\"budget_capped\":{capped}}},\
             \"multilevel\":{},\
             \"speedup_vs_flat\":{speedup:.3},\"cost_ratio_vs_flat\":{cost_ratio:.4}}}",
            flat.ms,
            flat.cost,
            flat.evaluations,
            flat_cfg.sample_size.unwrap_or(2 * n * n),
            flat_cfg.max_iters,
            fmt_run(&ml),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"multilevel\",\n  \"threads\": {threads},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[multilevel] wrote {json_path}"),
        Err(e) => {
            eprintln!("[multilevel] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[multilevel] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
