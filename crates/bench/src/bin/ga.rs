//! FastMap-GA generation-pipeline benchmark: the sequential engine
//! versus the flat-buffer batched rebuild, emitted as a machine-readable
//! JSON artefact (`BENCH_ga.json`) for CI trend tracking.
//!
//! ```text
//! cargo run -p match-bench --release --bin ga
//! cargo run -p match-bench --release --bin ga -- --quick
//! cargo run -p match-bench --release --bin ga -- --json out.json --check
//! ```
//!
//! Each run is a full end-to-end solve (same instance, same driver
//! seed, same population/generation budget) through one of three
//! pipelines: the historical sequential loop, the batched pipeline
//! pinned to one thread (isolating the alias-roulette and delta-cost
//! wins from the parallel fan-out), and the batched pipeline at the
//! machine's default thread count.
//!
//! `--check` exits non-zero when the batched pipeline (at the default
//! thread count) is slower than the sequential one for any `n ≥ 32` —
//! the CI smoke gate for the flat-buffer GA. On a single-core runner
//! the gate relaxes to rough parity: there is no fan-out to win with.

use match_core::{exec_time, MappingInstance, SamplerMode};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::InstanceGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Run {
    ms: f64,
    cost: f64,
    evaluations: u64,
}

fn fmt_run(r: &Run) -> String {
    format!(
        "{{\"ms\":{:.1},\"cost\":{:.3},\"evaluations\":{}}}",
        r.ms, r.cost, r.evaluations
    )
}

/// One full GA solve; wall time includes the whole generation loop.
fn solve(inst: &MappingInstance, config: GaConfig, reps: usize) -> Run {
    let ga = FastMapGa::new(config);
    // Warm-up run, then the timed repetitions (same seed each time, so
    // every repetition does identical work).
    let mut out = ga.run(inst, &mut StdRng::seed_from_u64(29));
    let start = Instant::now();
    for _ in 0..reps {
        out = ga.run(inst, &mut StdRng::seed_from_u64(29));
    }
    Run {
        ms: start.elapsed().as_secs_f64() * 1e3 / reps as f64,
        cost: out.outcome.cost,
        evaluations: out.outcome.evaluations,
    }
}

fn config(n: usize, threads: usize, sampler: SamplerMode) -> GaConfig {
    GaConfig {
        // A bounded budget that still dominates setup cost: the paper's
        // 500×1000 run takes too long to repeat per size in CI.
        population: (4 * n).max(120),
        generations: 40,
        threads,
        sampler,
        ..GaConfig::paper_default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_ga.json".to_string());

    let sizes: &[usize] = if quick { &[16, 32] } else { &[16, 32, 48] };
    let reps = if quick { 2 } else { 5 };
    let threads = match_par::default_threads();

    let mut entries = Vec::new();
    let mut failures = Vec::new();
    for &n in sizes {
        let inst = MappingInstance::from_pair(
            &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(40)),
        );
        let seq = solve(&inst, config(n, 1, SamplerMode::Sequential), reps);
        let bat1 = solve(&inst, config(n, 1, SamplerMode::Batched), reps);
        let batp = solve(&inst, config(n, threads, SamplerMode::Batched), reps);
        let speedup = seq.ms / batp.ms;
        eprintln!(
            "[ga] n={n:>3} pop={:>4}  sequential {:>8.1} ms (cost {:.1}) | \
             batched t1 {:>8.1} ms | batched t{threads} {:>8.1} ms (cost {:.1})  ({speedup:.2}x)",
            (4 * n).max(120),
            seq.ms,
            seq.cost,
            bat1.ms,
            batp.ms,
            batp.cost,
        );
        // With more than one core the parallel fan-out must win outright.
        // On a single-core runner there is no fan-out and the delta-cost
        // mutation buys auditability rather than time (the sequential
        // engine also pays exactly one full evaluation per child), so
        // only rough parity is enforceable there.
        let budget = if threads > 1 { seq.ms } else { 1.25 * seq.ms };
        if check && n >= 32 && batp.ms > budget {
            failures.push(format!(
                "n={n}: batched {:.1} ms slower than sequential {:.1} ms (threads={threads})",
                batp.ms, seq.ms
            ));
        }
        // Sanity: the batched stream must still optimise — never worse
        // than a random mapping on the same instance.
        let rand_cost = exec_time(
            &inst,
            &match_rngutil::random_permutation(n, &mut StdRng::seed_from_u64(42)),
        );
        if batp.cost > rand_cost {
            failures.push(format!(
                "n={n}: batched cost {:.1} worse than a random mapping {rand_cost:.1}",
                batp.cost
            ));
        }
        entries.push(format!(
            "    {{\"n\":{n},\"reps\":{reps},\
             \"sequential\":{},\"batched_t1\":{},\
             \"batched\":{{\"threads\":{threads},\"ms\":{:.1},\"cost\":{:.3}}},\
             \"speedup_vs_sequential\":{speedup:.3}}}",
            fmt_run(&seq),
            fmt_run(&bat1),
            batp.ms,
            batp.cost,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"ga\",\n  \"threads\": {threads},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&json_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&json_path, &json) {
        Ok(()) => eprintln!("[ga] wrote {json_path}"),
        Err(e) => {
            eprintln!("[ga] could not write {json_path}: {e}");
            std::process::exit(2);
        }
    }
    print!("{json}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("[ga] FAIL: {f}");
        }
        std::process::exit(1);
    }
}
