//! Regenerates **Table 1** (execution times, FastMap-GA vs MaTCH) and
//! **Figure 7** (the same data as a bar chart).
//!
//! ```text
//! cargo run -p match-bench --release --bin table1_et
//! MATCH_BENCH_PROFILE=quick cargo run -p match-bench --release --bin table1_et
//! cargo run -p match-bench --release --bin table1_et -- --trace results/traces
//! ```

use match_bench::report::{
    chart_et, sweep_cached_traced, table_et, trace_dir_from_args, write_results_file,
};
use match_bench::sweep::Profile;

fn main() {
    let profile = Profile::from_env();
    eprintln!("[table1] profile: {profile:?}");
    let data = sweep_cached_traced(profile, trace_dir_from_args().as_deref());
    let table = table_et(&data, "FastMap-GA", "MaTCH");
    let chart = chart_et(&data);
    let text = format!("{}\n{}", table.render(), chart.render());
    println!("{text}");
    match write_results_file("table1_et.txt", &text) {
        Ok(p) => eprintln!("[table1] wrote {}", p.display()),
        Err(e) => eprintln!("[table1] could not write results file: {e}"),
    }
}
