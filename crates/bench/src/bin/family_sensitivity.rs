//! Extension experiment: does MaTCH's edge over the GA depend on the
//! workload family? The paper evaluates one synthetic family; this
//! experiment repeats the head-to-head on three structurally different
//! TIG families at `|V| = 20`:
//!
//! * the paper's mixed-density random family,
//! * geometric overset-grid CFD workloads (Figure 1's motivation),
//! * scale-free (Barabási–Albert) hub-dominated workloads.
//!
//! ```text
//! cargo run -p match-bench --release --bin family_sensitivity
//! ```

use match_core::{Mapper, MappingInstance, Matcher};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::classic::barabasi_albert_graph;
use match_graph::gen::overset::OversetConfig;
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::{InstancePair, TaskGraph};
use match_rngutil::SeedSequence;
use match_viz::{format_sig, Table};
use rand::Rng;

fn main() {
    let (size, pairs, runs) = match match_bench::sweep::Profile::from_env() {
        match_bench::sweep::Profile::Paper => (20usize, 3usize, 3usize),
        match_bench::sweep::Profile::Quick => (10, 2, 2),
    };

    let matcher = Matcher::default();
    let ga = FastMapGa::new(GaConfig::paper_default());

    let mut table = Table::new([
        "family",
        "mean ET MaTCH",
        "mean ET FastMap-GA",
        "GA/MaTCH",
        "mean MT MaTCH (s)",
    ])
    .with_title(format!(
        "Extension: workload-family sensitivity at |V| = {size} ({pairs} pairs x {runs} runs)"
    ));

    for family in ["paper", "overset", "scale-free"] {
        let mut et_m = 0.0;
        let mut et_g = 0.0;
        let mut mt_m = 0.0;
        let mut count = 0.0;
        for g in 0..pairs {
            let mut seq = SeedSequence::new(9090)
                .child(family.len() as u64)
                .child(g as u64);
            let mut rng = seq.next_rng();
            let tig = match family {
                "paper" => PaperFamilyConfig::new(size).generate_tig(&mut rng),
                "overset" => OversetConfig::new(size).generate_domain(&mut rng).tig,
                _ => {
                    // BA topology with paper-family weights.
                    let mut ba = barabasi_albert_graph(size, 2, 1.0, 1.0, &mut rng);
                    for t in 0..size {
                        ba.set_node_weight(t, rng.random_range(1..=10) as f64)
                            .expect("valid weight");
                    }
                    // Re-weight edges into the paper's volume range.
                    let mut g2 = match_graph::Graph::from_node_weights(
                        (0..size).map(|t| ba.node_weight(t)).collect(),
                    )
                    .expect("positive weights");
                    for (u, v, _) in ba.edges() {
                        g2.add_edge(u, v, rng.random_range(50..=100) as f64)
                            .expect("fresh edge");
                    }
                    TaskGraph::new(g2).expect("valid TIG")
                }
            };
            let platform = PaperFamilyConfig::new(size).generate_platform(&mut rng);
            let inst = MappingInstance::from_pair(&InstancePair {
                tig,
                resources: platform,
            });
            for run in 0..runs {
                let mut r1 = seq.child(100 + run as u64).next_rng();
                let mut r2 = seq.child(100 + run as u64).next_rng();
                let m = matcher.map(&inst, &mut r1);
                let gres = ga.map(&inst, &mut r2);
                et_m += m.cost;
                et_g += gres.cost;
                mt_m += m.elapsed.as_secs_f64();
                count += 1.0;
            }
            eprintln!("[family] {family} pair {g} done");
        }
        table.add_row([
            family.to_string(),
            format_sig(et_m / count, 5),
            format_sig(et_g / count, 5),
            format_sig((et_g / count) / (et_m / count), 4),
            format_sig(mt_m / count, 3),
        ]);
    }

    let text = table.render();
    println!("{text}");
    match match_bench::report::write_results_file("family_sensitivity.txt", &text) {
        Ok(p) => eprintln!("[family] wrote {}", p.display()),
        Err(e) => eprintln!("[family] could not write results file: {e}"),
    }
}
