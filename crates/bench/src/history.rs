//! Bench-history bookkeeping: fold the per-run `BENCH_*.json` artefacts
//! into an append-only `BENCH_history.jsonl`, one labelled line per
//! artefact, so CI (and local runs) accumulate a trend file instead of
//! overwriting a snapshot.
//!
//! Each appended line is a single JSON object:
//!
//! ```json
//! {"label":"<sha or --label>","source":"BENCH_sampling.json","bench":{...}}
//! ```
//!
//! where `bench` is the artefact compacted onto one line. The file
//! stays `jq`-friendly: `jq -s 'map(.bench.matcher_mt.speedup)'`.

use std::fmt::Write as _;

/// Compact a JSON document onto one line: drop all whitespace that sits
/// outside string literals. Content inside strings (including escaped
/// quotes) is preserved byte-for-byte.
pub fn compact_json(pretty: &str) -> String {
    let mut out = String::with_capacity(pretty.len());
    let mut in_string = false;
    let mut escaped = false;
    for c in pretty.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

/// Escape a string for embedding inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Build one history line (no trailing newline) for a bench artefact.
///
/// `source` is the artefact's file name, `label` identifies the run
/// (commit SHA in CI, `local` otherwise), and `body` is the artefact's
/// JSON text, compacted before embedding.
pub fn history_line(label: &str, source: &str, body: &str) -> String {
    format!(
        "{{\"label\":\"{}\",\"source\":\"{}\",\"bench\":{}}}",
        escape(label),
        escape(source),
        compact_json(body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_strips_layout_but_not_string_content() {
        let pretty = "{\n  \"bench\": \"sampling\",\n  \"note\": \"two  spaces \\\" and } brace\",\n  \"n\": [1, 2]\n}\n";
        assert_eq!(
            compact_json(pretty),
            "{\"bench\":\"sampling\",\"note\":\"two  spaces \\\" and } brace\",\"n\":[1,2]}"
        );
    }

    #[test]
    fn history_line_embeds_label_source_and_compact_body() {
        let line = history_line("abc123", "BENCH_ga.json", "{\n \"a\": 1\n}\n");
        assert_eq!(
            line,
            "{\"label\":\"abc123\",\"source\":\"BENCH_ga.json\",\"bench\":{\"a\":1}}"
        );
        assert!(!line.contains('\n'), "history lines must stay one line");
    }

    #[test]
    fn labels_with_quotes_are_escaped() {
        let line = history_line("a\"b", "f.json", "{}");
        assert!(line.contains("a\\\"b"));
    }
}
