//! Ablation studies on MaTCH's design choices.
//!
//! The paper motivates several knobs without measuring them: smoothing
//! "allows the algorithm to converge to a better time" (Eq. 13), a
//! smaller focus parameter `ρ` gives "quicker convergence" (§4), the
//! sample size `N = 2|V_r|²` is justified dimensionally, and GenPerm is
//! introduced to avoid wasted invalid samples. These experiments measure
//! each claim, plus a comparison against the extra baselines.

use match_baselines::{
    GreedyMapper, HillClimber, PolishedMatcher, RandomSearch, SimulatedAnnealing,
};
use match_core::{Mapper, MappingInstance, MatchConfig, Matcher};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::SeedSequence;
use match_viz::{format_sig, Table};

/// Shared ablation scale.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Instance size.
    pub size: usize,
    /// Instances (graph pairs).
    pub graphs: usize,
    /// Runs per variant per instance.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Paper-adjacent scale: 20-node instances, 3 pairs, 3 runs.
    pub fn paper() -> Self {
        AblationConfig {
            size: 20,
            graphs: 3,
            runs: 3,
            seed: 2005,
        }
    }

    /// Smoke scale.
    pub fn quick() -> Self {
        AblationConfig {
            size: 10,
            graphs: 2,
            runs: 2,
            seed: 2005,
        }
    }

    fn instances(&self) -> Vec<MappingInstance> {
        (0..self.graphs)
            .map(|g| {
                let mut rng = SeedSequence::new(self.seed)
                    .child(0xAB1A)
                    .child(g as u64)
                    .next_rng();
                MappingInstance::from_pair(&PaperFamilyConfig::new(self.size).generate(&mut rng))
            })
            .collect()
    }
}

/// Result cell of one ablation variant.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Variant label.
    pub label: String,
    /// Mean best ET across instances × runs.
    pub mean_et: f64,
    /// Mean CE iterations to stop.
    pub mean_iters: f64,
    /// Mean objective evaluations.
    pub mean_evals: f64,
    /// Mean wall-clock seconds.
    pub mean_mt: f64,
}

fn run_variants<F>(cfg: &AblationConfig, labels: &[String], mut make: F) -> Vec<VariantResult>
where
    F: FnMut(usize) -> Box<dyn Mapper>,
{
    let instances = cfg.instances();
    labels
        .iter()
        .enumerate()
        .map(|(vi, label)| {
            let mapper = make(vi);
            let mut et = 0.0;
            let mut iters = 0.0;
            let mut evals = 0.0;
            let mut mt = 0.0;
            let mut count = 0.0;
            for (gi, inst) in instances.iter().enumerate() {
                for run in 0..cfg.runs {
                    // Paired design: every variant sees the same RNG
                    // stream for a given (instance, run), so variant
                    // differences are not sampling noise.
                    let mut rng = SeedSequence::new(cfg.seed)
                        .child(0xAB1A + 1)
                        .child(gi as u64)
                        .child(run as u64)
                        .next_rng();
                    let out = mapper.map(inst, &mut rng);
                    et += out.cost;
                    iters += out.iterations as f64;
                    evals += out.evaluations as f64;
                    mt += out.elapsed.as_secs_f64();
                    count += 1.0;
                }
            }
            VariantResult {
                label: label.clone(),
                mean_et: et / count,
                mean_iters: iters / count,
                mean_evals: evals / count,
                mean_mt: mt / count,
            }
        })
        .collect()
}

fn variants_table(title: &str, results: &[VariantResult]) -> Table {
    let mut t = Table::new([
        "variant",
        "mean ET",
        "mean iters",
        "mean evals",
        "mean MT (s)",
    ])
    .with_title(title.to_string());
    for r in results {
        t.add_row([
            r.label.clone(),
            format_sig(r.mean_et, 5),
            format_sig(r.mean_iters, 4),
            format_sig(r.mean_evals, 4),
            format_sig(r.mean_mt, 3),
        ]);
    }
    t
}

/// Smoothing ablation: ζ ∈ {1.0 coarse, 0.5, 0.3 paper, 0.1}.
pub fn ablate_smoothing(cfg: &AblationConfig) -> (Vec<VariantResult>, Table) {
    let zetas = [1.0, 0.5, 0.3, 0.1];
    let labels: Vec<String> = zetas.iter().map(|z| format!("zeta = {z}")).collect();
    let results = run_variants(cfg, &labels, |vi| {
        Box::new(Matcher::new(MatchConfig {
            zeta: zetas[vi],
            ..MatchConfig::default()
        }))
    });
    let table = variants_table(
        "Ablation: smoothing factor (Eq. 13) — paper claims zeta = 0.3 avoids premature convergence",
        &results,
    );
    (results, table)
}

/// Focus-parameter ablation: ρ ∈ {0.01, 0.05, 0.1}.
pub fn ablate_rho(cfg: &AblationConfig) -> (Vec<VariantResult>, Table) {
    let rhos = [0.01, 0.05, 0.1];
    let labels: Vec<String> = rhos.iter().map(|r| format!("rho = {r}")).collect();
    let results = run_variants(cfg, &labels, |vi| {
        Box::new(Matcher::new(MatchConfig {
            rho: rhos[vi],
            ..MatchConfig::default()
        }))
    });
    let table = variants_table(
        "Ablation: focus parameter rho — paper claims smaller rho converges quicker",
        &results,
    );
    (results, table)
}

/// Sample-size ablation: N ∈ {|V|², 2|V|² (paper), 4|V|²}.
pub fn ablate_sample_size(cfg: &AblationConfig) -> (Vec<VariantResult>, Table) {
    let n = cfg.size;
    let sizes = [n * n, 2 * n * n, 4 * n * n];
    let labels: Vec<String> = ["N = |V|^2", "N = 2|V|^2 (paper)", "N = 4|V|^2"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let results = run_variants(cfg, &labels, |vi| {
        Box::new(Matcher::new(MatchConfig {
            sample_size: Some(sizes[vi]),
            ..MatchConfig::default()
        }))
    });
    let table = variants_table("Ablation: per-iteration sample size N", &results);
    (results, table)
}

/// GenPerm vs the §4 naive penalised formulation, at equal budgets.
pub fn ablate_genperm(cfg: &AblationConfig) -> (Vec<VariantResult>, Table) {
    struct Naive(MatchConfig);
    impl Mapper for Naive {
        fn name(&self) -> &str {
            "naive-penalized"
        }
        fn map(
            &self,
            inst: &MappingInstance,
            rng: &mut rand::rngs::StdRng,
        ) -> match_core::MapperOutcome {
            Matcher::new(self.0.clone())
                .run_naive_penalized(inst, rng)
                .into_mapper_outcome()
        }
    }
    let labels = vec![
        "GenPerm (paper)".to_string(),
        "naive + infinity penalty".to_string(),
    ];
    let results = run_variants(cfg, &labels, |vi| {
        let mc = MatchConfig {
            max_iters: 100,
            ..MatchConfig::default()
        };
        if vi == 0 {
            Box::new(Matcher::new(mc))
        } else {
            Box::new(Naive(mc))
        }
    });
    let table = variants_table(
        "Ablation: GenPerm sampling vs naive independent rows with S = infinity outside chi",
        &results,
    );
    (results, table)
}

/// GA operator ablation: is FastMap-GA's weak showing intrinsic to GAs
/// or an artefact of its §5.1 operators? Compares the paper's
/// roulette + single-point-repair + swap against tournament selection,
/// order crossover and inversion mutation.
pub fn ablate_ga_operators(cfg: &AblationConfig) -> (Vec<VariantResult>, Table) {
    use match_ga::{CrossoverOp, FastMapGa, GaConfig, MutationOp, SelectionOp};
    let base = GaConfig {
        population: 200,
        generations: 300,
        ..GaConfig::paper_default()
    };
    let variants: Vec<(String, GaConfig)> = vec![
        ("paper (roulette/1pt/swap)".into(), base.clone()),
        (
            "tournament-4 selection".into(),
            GaConfig {
                selection: SelectionOp::Tournament(4),
                ..base.clone()
            },
        ),
        (
            "order crossover (OX)".into(),
            GaConfig {
                crossover_op: CrossoverOp::Order,
                ..base.clone()
            },
        ),
        (
            "inversion mutation".into(),
            GaConfig {
                mutation_op: MutationOp::Inversion,
                ..base.clone()
            },
        ),
        (
            "all variants combined".into(),
            GaConfig {
                selection: SelectionOp::Tournament(4),
                crossover_op: CrossoverOp::Order,
                mutation_op: MutationOp::Inversion,
                ..base
            },
        ),
    ];
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    let results = run_variants(cfg, &labels, |vi| {
        Box::new(FastMapGa::new(variants[vi].1.clone()))
    });
    let table = variants_table(
        "Ablation: FastMap-GA operator variants (equal 200x300 budgets)",
        &results,
    );
    (results, table)
}

/// MaTCH against the extra baselines at comparable evaluation budgets.
pub fn ablate_baselines(cfg: &AblationConfig) -> (Vec<VariantResult>, Table) {
    let n = cfg.size;
    // Budget roughly comparable to a MaTCH run: ~60 iterations × 2n².
    let budget = (120 * n * n) as u64;
    let labels: Vec<String> = [
        "MaTCH",
        "MaTCH+polish",
        "MaTCH-islands",
        "Random (equal budget)",
        "RoundRobin",
        "Greedy",
        "HillClimb",
        "SimAnneal",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let results = run_variants(cfg, &labels, |vi| match vi {
        0 => Box::new(Matcher::default()),
        1 => Box::new(PolishedMatcher::default()),
        2 => Box::new(match_core::IslandMatcher::default()),
        3 => Box::new(RandomSearch::new(budget as usize)),
        4 => Box::new(match_baselines::RoundRobin),
        5 => Box::new(GreedyMapper),
        6 => Box::new(HillClimber::new(8, budget)),
        _ => Box::new(SimulatedAnnealing::new(budget, 0.99997)),
    });
    let table = variants_table(
        "Ablation: MaTCH vs additional baselines (comparable evaluation budgets)",
        &results,
    );
    (results, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            size: 8,
            graphs: 1,
            runs: 1,
            seed: 3,
        }
    }

    #[test]
    fn smoothing_variants_run() {
        let (results, table) = ablate_smoothing(&tiny());
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|r| r.mean_et > 0.0));
        assert!(table.render().contains("zeta = 0.3"));
    }

    #[test]
    fn genperm_beats_or_ties_naive() {
        let (results, _) = ablate_genperm(&tiny());
        assert!(results[0].mean_et <= results[1].mean_et * 1.05);
    }

    #[test]
    fn baselines_table_has_all_rows() {
        let (results, table) = ablate_baselines(&tiny());
        assert_eq!(results.len(), 8);
        let s = table.render();
        for name in [
            "MaTCH",
            "MaTCH+polish",
            "MaTCH-islands",
            "RoundRobin",
            "Greedy",
            "HillClimb",
            "SimAnneal",
        ] {
            assert!(s.contains(name), "{name} missing");
        }
    }

    #[test]
    fn coarse_update_stops_earlier_than_smoothed() {
        // zeta = 1 collapses fast; zeta = 0.1 keeps exploring.
        let (results, _) = ablate_smoothing(&tiny());
        let coarse = &results[0]; // zeta = 1.0
        let smooth = &results[3]; // zeta = 0.1
        assert!(
            coarse.mean_iters <= smooth.mean_iters,
            "coarse {} iters vs smooth {}",
            coarse.mean_iters,
            smooth.mean_iters
        );
    }
}
