//! Table and figure rendering over [`crate::sweep::SweepData`].

use crate::sweep::SweepData;
use match_viz::{format_duration_s, format_sig, BarChart, CsvWriter, Table};
use std::path::Path;

/// Table 1: execution times per size with the improvement-ratio row
/// (`ET_baseline / ET_target`).
pub fn table_et(data: &SweepData, baseline: &str, target: &str) -> Table {
    let b = data.index_of(baseline).expect("baseline present");
    let t = data.index_of(target).expect("target present");
    let mut header = vec!["|Vr| = |Vt|".to_string()];
    header.extend(data.sizes.iter().map(|s| s.to_string()));
    let mut table = Table::new(header).with_title(format!(
        "Table 1: execution times (ET) — {baseline} vs {target}"
    ));
    let row = |h: usize| -> Vec<String> {
        data.cells[h]
            .iter()
            .map(|c| format_sig(c.mean_et(), 5))
            .collect()
    };
    let mut r1 = vec![format!("ET_{baseline} in units")];
    r1.extend(row(b));
    table.add_row(r1);
    let mut r2 = vec![format!("ET_{target} in units")];
    r2.extend(row(t));
    table.add_row(r2);
    let mut r3 = vec![format!("ET_{baseline}/ET_{target}")];
    r3.extend(
        data.cells[b]
            .iter()
            .zip(&data.cells[t])
            .map(|(cb, ct)| format_sig(cb.mean_et() / ct.mean_et(), 4)),
    );
    table.add_row(r3);
    table
}

/// Table 2: mapping times per size with the slowdown-ratio row
/// (`MT_target / MT_baseline`).
pub fn table_mt(data: &SweepData, baseline: &str, target: &str) -> Table {
    let b = data.index_of(baseline).expect("baseline present");
    let t = data.index_of(target).expect("target present");
    let mut header = vec!["|Vr| = |Vt|".to_string()];
    header.extend(data.sizes.iter().map(|s| s.to_string()));
    let mut table = Table::new(header).with_title(format!(
        "Table 2: mapping times (MT) — {baseline} vs {target}"
    ));
    let row = |h: usize| -> Vec<String> {
        data.cells[h]
            .iter()
            .map(|c| format_duration_s(c.mean_mt()))
            .collect()
    };
    let mut r1 = vec![format!("MT_{baseline} in seconds")];
    r1.extend(row(b));
    table.add_row(r1);
    let mut r2 = vec![format!("MT_{target} in seconds")];
    r2.extend(row(t));
    table.add_row(r2);
    let mut r3 = vec![format!("MT_{target}/MT_{baseline}")];
    r3.extend(
        data.cells[b]
            .iter()
            .zip(&data.cells[t])
            .map(|(cb, ct)| format_sig(ct.mean_mt() / cb.mean_mt(), 4)),
    );
    table.add_row(r3);
    // Machine-independent companion rows: objective evaluations.
    let mut r4 = vec![format!("evals_{baseline}")];
    r4.extend(data.cells[b].iter().map(|c| format_sig(c.mean_evals(), 4)));
    table.add_row(r4);
    let mut r5 = vec![format!("evals_{target}")];
    r5.extend(data.cells[t].iter().map(|c| format_sig(c.mean_evals(), 4)));
    table.add_row(r5);
    table
}

/// Figure 7: grouped ET bars per size.
pub fn chart_et(data: &SweepData) -> BarChart {
    let mut chart = BarChart::new("Figure 7: Execution Time (units) per |V|")
        .with_width(60)
        .with_log_scale();
    for (si, &size) in data.sizes.iter().enumerate() {
        let bars = data
            .names
            .iter()
            .enumerate()
            .map(|(h, n)| (n.clone(), data.cells[h][si].mean_et()))
            .collect();
        chart.add_group(format!("|V| = {size}"), bars);
    }
    chart
}

/// Figure 8: grouped MT bars per size.
pub fn chart_mt(data: &SweepData) -> BarChart {
    let mut chart = BarChart::new("Figure 8: Mapping Time (seconds) per |V|").with_width(60);
    for (si, &size) in data.sizes.iter().enumerate() {
        let bars = data
            .names
            .iter()
            .enumerate()
            .map(|(h, n)| (n.clone(), data.cells[h][si].mean_mt()))
            .collect();
        chart.add_group(format!("|V| = {size}"), bars);
    }
    chart
}

/// Figure 9: grouped ATN (= ET + MT) bars per size.
pub fn chart_atn(data: &SweepData) -> BarChart {
    let mut chart = BarChart::new("Figure 9: Application Turnaround Time (ET + MT) per |V|")
        .with_width(60)
        .with_log_scale();
    for (si, &size) in data.sizes.iter().enumerate() {
        let bars = data
            .names
            .iter()
            .enumerate()
            .map(|(h, n)| (n.clone(), data.cells[h][si].mean_atn()))
            .collect();
        chart.add_group(format!("|V| = {size}"), bars);
    }
    chart
}

/// Dump the raw sweep samples as CSV
/// (`heuristic,size,metric,v1,v2,…`).
pub fn sweep_csv(data: &SweepData) -> String {
    let mut w = CsvWriter::new();
    w.write_record(["heuristic", "size", "metric", "values..."]);
    for (h, name) in data.names.iter().enumerate() {
        for (si, &size) in data.sizes.iter().enumerate() {
            let cell = &data.cells[h][si];
            w.write_numeric_record(format!("{name},{size},et"), &cell.et);
            w.write_numeric_record(format!("{name},{size},mt_s"), &cell.mt);
            w.write_numeric_record(format!("{name},{size},evals"), &cell.evals);
            w.write_numeric_record(format!("{name},{size},ns_per_iter"), &cell.ns_per_iter);
        }
    }
    w.into_string()
}

/// Dump the sweep as JSON: per-cell raw samples plus the derived means,
/// including wall-clock-per-iteration (`mean_ns_per_iter`). Non-finite
/// values become `null`.
pub fn sweep_json(data: &SweepData) -> String {
    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
    fn arr(xs: &[f64]) -> String {
        let body: Vec<String> = xs.iter().map(|&v| num(v)).collect();
        format!("[{}]", body.join(","))
    }
    let mut out = String::from("{\n  \"heuristics\": [\n");
    for (h, name) in data.names.iter().enumerate() {
        out.push_str(&format!("    {{\"name\": \"{name}\", \"cells\": [\n"));
        for (si, &size) in data.sizes.iter().enumerate() {
            let c = &data.cells[h][si];
            out.push_str(&format!(
                "      {{\"size\": {size}, \"mean_et\": {}, \"mean_mt_s\": {}, \
                 \"mean_evals\": {}, \"mean_ns_per_iter\": {}, \
                 \"et\": {}, \"mt_s\": {}, \"evals\": {}, \"ns_per_iter\": {}}}{}\n",
                num(c.mean_et()),
                num(c.mean_mt()),
                num(c.mean_evals()),
                num(c.mean_ns_per_iter()),
                arr(&c.et),
                arr(&c.mt),
                arr(&c.evals),
                arr(&c.ns_per_iter),
                if si + 1 < data.sizes.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if h + 1 < data.names.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse the CSV produced by [`sweep_csv`] back into a [`SweepData`].
///
/// Used by the table/figure binaries to share one expensive sweep run
/// through a `results/` cache. Returns `None` on any malformed content
/// (the caller falls back to re-running the sweep).
pub fn parse_sweep_csv(text: &str) -> Option<SweepData> {
    use crate::sweep::CellStats;
    let mut names: Vec<String> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    // (heuristic, size) -> cell
    let mut cells: std::collections::HashMap<(usize, usize), CellStats> =
        std::collections::HashMap::new();
    for line in text.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        // Records look like: "name,size,metric",v1,v2,...
        let line = line.strip_prefix('"')?;
        let (key, rest) = line.split_once('"')?;
        let mut kp = key.split(',');
        let name = kp.next()?.to_string();
        let size: usize = kp.next()?.parse().ok()?;
        let metric = kp.next()?;
        let values: Vec<f64> = rest
            .trim_start_matches(',')
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().ok())
            .collect::<Option<Vec<f64>>>()?;
        let hi = match names.iter().position(|n| *n == name) {
            Some(i) => i,
            None => {
                names.push(name);
                names.len() - 1
            }
        };
        let si = match sizes.iter().position(|s| *s == size) {
            Some(i) => i,
            None => {
                sizes.push(size);
                sizes.len() - 1
            }
        };
        let cell = cells.entry((hi, si)).or_insert_with(|| CellStats {
            et: Vec::new(),
            mt: Vec::new(),
            evals: Vec::new(),
            ns_per_iter: Vec::new(),
        });
        match metric {
            "et" => cell.et = values,
            "mt_s" => cell.mt = values,
            "evals" => cell.evals = values,
            "ns_per_iter" => cell.ns_per_iter = values,
            _ => return None,
        }
    }
    if names.is_empty() || sizes.is_empty() {
        return None;
    }
    let mut out_cells = Vec::with_capacity(names.len());
    for hi in 0..names.len() {
        let mut row = Vec::with_capacity(sizes.len());
        for si in 0..sizes.len() {
            row.push(cells.remove(&(hi, si))?);
        }
        out_cells.push(row);
    }
    Some(SweepData {
        names,
        sizes,
        cells: out_cells,
    })
}

/// Run the GA-vs-MaTCH sweep, or load it from the `results/` cache when
/// present (set `MATCH_BENCH_REFRESH=1` to force a re-run). The three
/// sweep-derived artefacts (Tables 1–2, Figures 7–9) share one run this
/// way.
pub fn sweep_cached(profile: crate::sweep::Profile) -> SweepData {
    sweep_cached_traced(profile, None)
}

/// `--trace DIR` from a binary's raw argument list: the directory sweep
/// cells archive their JSONL traces into. A bare `--trace` without a
/// value aborts with a usage message rather than silently not tracing.
pub fn trace_dir_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--trace") {
        Some(i) => match args.get(i + 1) {
            Some(dir) if !dir.starts_with("--") => Some(std::path::PathBuf::from(dir)),
            _ => {
                eprintln!("usage: --trace DIR (per-cell JSONL traces are written under DIR)");
                std::process::exit(2);
            }
        },
        None => None,
    }
}

/// [`sweep_cached`] with optional per-cell trace archiving. A trace
/// request forces a fresh sweep (an existing cache has no runs to
/// trace); the refreshed result is re-cached as usual.
pub fn sweep_cached_traced(profile: crate::sweep::Profile, trace_dir: Option<&Path>) -> SweepData {
    let cfg = crate::sweep::SweepConfig::for_profile(profile);
    let cache = format!(
        "sweep_cache_{}.csv",
        match profile {
            crate::sweep::Profile::Paper => "paper",
            crate::sweep::Profile::Quick => "quick",
        }
    );
    let path = Path::new("results").join(&cache);
    let refresh = std::env::var("MATCH_BENCH_REFRESH").is_ok_and(|v| v == "1");
    if !refresh && trace_dir.is_none() {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Some(data) = parse_sweep_csv(&text) {
                eprintln!("[sweep] loaded cache {}", path.display());
                return data;
            }
        }
    }
    let (ga, matcher) = crate::sweep::paper_pair(&cfg);
    let data = crate::sweep::run_sweep_traced(&[&ga, &matcher], &cfg, false, trace_dir);
    if let Some(dir) = trace_dir {
        eprintln!("[sweep] per-cell traces under {}", dir.display());
    }
    if let Ok(p) = write_results_file(&cache, &sweep_csv(&data)) {
        eprintln!("[sweep] cached to {}", p.display());
    }
    // Companion JSON artefact with per-iteration wall-clock attached.
    if let Ok(p) = write_results_file(&cache.replace(".csv", ".json"), &sweep_json(&data)) {
        eprintln!("[sweep] json to {}", p.display());
    }
    data
}

/// Write `content` under `results/<file>`, creating the directory.
pub fn write_results_file(file: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file);
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::CellStats;

    fn fake_data() -> SweepData {
        let cell = |et: f64, mt: f64| CellStats {
            et: vec![et, et],
            mt: vec![mt, mt],
            evals: vec![100.0, 100.0],
            ns_per_iter: vec![mt * 1e9 / 50.0, mt * 1e9 / 50.0],
        };
        SweepData {
            names: vec!["FastMap-GA".into(), "MaTCH".into()],
            sizes: vec![10, 20],
            cells: vec![
                vec![cell(16585.0, 13.62), cell(125579.0, 22.25)],
                vec![cell(3516.0, 13.47), cell(8489.0, 58.65)],
            ],
        }
    }

    #[test]
    fn table_et_contains_ratio() {
        let t = table_et(&fake_data(), "FastMap-GA", "MaTCH");
        let s = t.render();
        assert!(s.contains("16585"));
        assert!(s.contains("3516"));
        // 16585 / 3516 = 4.717
        assert!(s.contains("4.717"), "{s}");
    }

    #[test]
    fn table_mt_contains_slowdown() {
        let t = table_mt(&fake_data(), "FastMap-GA", "MaTCH");
        let s = t.render();
        assert!(s.contains("13.62s"));
        assert!(s.contains("58.65s"));
        // 58.65 / 22.25 = 2.636
        assert!(s.contains("2.636"), "{s}");
    }

    #[test]
    fn charts_render() {
        let d = fake_data();
        assert!(chart_et(&d).render().contains("|V| = 10"));
        assert!(chart_mt(&d).render().contains("MaTCH"));
        let atn = chart_atn(&d).render();
        assert!(atn.contains("Turnaround"));
    }

    #[test]
    fn csv_has_all_cells() {
        let csv = sweep_csv(&fake_data());
        assert!(csv.contains("\"FastMap-GA,10,et\""));
        assert!(csv.contains("\"MaTCH,20,mt_s\""));
        assert!(csv.contains("\"MaTCH,10,ns_per_iter\""));
        assert_eq!(csv.lines().count(), 1 + 2 * 2 * 4);
    }

    #[test]
    fn json_carries_per_iteration_wall_clock() {
        let d = fake_data();
        let json = sweep_json(&d);
        assert!(json.contains("\"mean_ns_per_iter\""));
        assert!(json.contains("\"name\": \"MaTCH\""));
        // Expected value for the 10-cell of FastMap-GA: 13.62s / 50 iters.
        let expect = d.cells[0][0].mean_ns_per_iter();
        assert!(json.contains(&format!("{expect}")), "{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    #[should_panic(expected = "baseline present")]
    fn unknown_heuristic_panics() {
        table_et(&fake_data(), "nope", "MaTCH");
    }

    #[test]
    fn csv_roundtrip() {
        let d = fake_data();
        let parsed = parse_sweep_csv(&sweep_csv(&d)).expect("parses");
        assert_eq!(parsed.names, d.names);
        assert_eq!(parsed.sizes, d.sizes);
        for h in 0..d.names.len() {
            for s in 0..d.sizes.len() {
                assert_eq!(parsed.cells[h][s].et, d.cells[h][s].et);
                assert_eq!(parsed.cells[h][s].mt, d.cells[h][s].mt);
                assert_eq!(parsed.cells[h][s].evals, d.cells[h][s].evals);
                assert_eq!(parsed.cells[h][s].ns_per_iter, d.cells[h][s].ns_per_iter);
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_sweep_csv("").is_none());
        assert!(parse_sweep_csv("header\nnot-a-record\n").is_none());
        assert!(parse_sweep_csv("header\n\"a,10,bogus\",1\n").is_none());
    }
}
