//! Table 3: the ANOVA experiment.
//!
//! §5.3: MaTCH, FastMap-GA 100/10000 and FastMap-GA 1000/1000 are each
//! run 30 independent times on one `|V_r| = |V_t| = 10` instance; the
//! paper reports per-heuristic mean / 95% CI / σ / median of the
//! *execution time* and a one-way ANOVA F-test across the three groups
//! (F = 1547, p < 0.0001).
//!
//! (The paper's Table 3 header says "Mapping Time in seconds", but its
//! caption and the quoted magnitudes identify the metric as the
//! execution time in cost units; see DESIGN.md.)

use match_core::{Mapper, MappingInstance, Matcher};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::SeedSequence;
use match_stats::{mean_confidence_interval, one_way_anova, welch_t_test, AnovaResult, Summary};
use match_viz::{format_sig, Table};

/// Parameters of the ANOVA experiment.
#[derive(Debug, Clone)]
pub struct AnovaConfig {
    /// Instance size (paper: 10).
    pub size: usize,
    /// Independent runs per heuristic (paper: 30).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Scale the GA budgets down for smoke runs (1 = paper scale).
    pub budget_divisor: usize,
}

impl AnovaConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        AnovaConfig {
            size: 10,
            runs: 30,
            seed: 2005,
            budget_divisor: 1,
        }
    }

    /// A smoke-scale configuration.
    pub fn quick() -> Self {
        AnovaConfig {
            size: 10,
            runs: 8,
            seed: 2005,
            budget_divisor: 50,
        }
    }
}

/// One heuristic's column of Table 3.
#[derive(Debug, Clone)]
pub struct AnovaGroup {
    /// Heuristic name.
    pub name: String,
    /// The 30 execution-time samples.
    pub et: Vec<f64>,
    /// Descriptive summary.
    pub summary: Summary,
    /// 95% confidence interval of the mean.
    pub ci_lo: f64,
    /// Upper bound of the 95% CI.
    pub ci_hi: f64,
}

/// Full Table 3 data.
#[derive(Debug, Clone)]
pub struct AnovaExperiment {
    /// Per-heuristic groups, in paper column order.
    pub groups: Vec<AnovaGroup>,
    /// The one-way ANOVA across the groups.
    pub anova: AnovaResult,
}

/// Run the experiment.
pub fn run_anova_experiment(cfg: &AnovaConfig, quiet: bool) -> AnovaExperiment {
    let mut seq = SeedSequence::new(cfg.seed).child(0xA404A);
    let mut rng = seq.next_rng();
    let pair = PaperFamilyConfig::new(cfg.size).generate(&mut rng);
    let inst = MappingInstance::from_pair(&pair);

    let div = cfg.budget_divisor.max(1);
    let matcher = Matcher::default();
    let ga_long = FastMapGa::new(GaConfig {
        population: 100,
        generations: (10_000 / div).max(10),
        ..GaConfig::paper_default()
    });
    let ga_wide = FastMapGa::new(GaConfig {
        population: (1000 / div).max(10),
        generations: (1000 / div).max(10),
        ..GaConfig::paper_default()
    });
    let arms: Vec<(&str, &dyn Mapper)> = vec![
        ("MaTCH", &matcher),
        ("FastMap-GA 100/10000", &ga_long),
        ("FastMap-GA 1000/1000", &ga_wide),
    ];

    let mut groups = Vec::new();
    for (ai, (name, mapper)) in arms.iter().enumerate() {
        let mut et = Vec::with_capacity(cfg.runs);
        for run in 0..cfg.runs {
            let mut rng = SeedSequence::new(cfg.seed)
                .child(0xA404A + 1 + ai as u64)
                .child(run as u64)
                .next_rng();
            let out = mapper.map(&inst, &mut rng);
            if !quiet {
                eprintln!("[anova] {name} run {run}: ET={:.0}", out.cost);
            }
            et.push(out.cost);
        }
        let summary = Summary::of(&et);
        let ci = mean_confidence_interval(&et, 0.95);
        let (ci_lo, ci_hi) = ci.map(|c| (c.lo, c.hi)).unwrap_or((f64::NAN, f64::NAN));
        groups.push(AnovaGroup {
            name: name.to_string(),
            et,
            summary,
            ci_lo,
            ci_hi,
        });
    }

    let slices: Vec<&[f64]> = groups.iter().map(|g| g.et.as_slice()).collect();
    let anova = one_way_anova(&slices).expect("three non-empty groups");
    AnovaExperiment { groups, anova }
}

/// Render the experiment as the paper's Table 3.
pub fn table3(exp: &AnovaExperiment) -> (Table, Table) {
    let mut header = vec!["Parameter".to_string()];
    header.extend(exp.groups.iter().map(|g| g.name.clone()));
    let mut stats = Table::new(header).with_title(format!(
        "Table 3: statistical analysis of ET over {} runs",
        exp.groups[0].et.len()
    ));
    stats.add_row(
        std::iter::once("Absolute Mean of ET in units".to_string())
            .chain(exp.groups.iter().map(|g| format_sig(g.summary.mean, 5)))
            .collect::<Vec<_>>(),
    );
    stats.add_row(
        std::iter::once("95% CI for Mean".to_string())
            .chain(
                exp.groups
                    .iter()
                    .map(|g| format!("{}-{}", format_sig(g.ci_lo, 5), format_sig(g.ci_hi, 5))),
            )
            .collect::<Vec<_>>(),
    );
    stats.add_row(
        std::iter::once("Standard Deviation".to_string())
            .chain(exp.groups.iter().map(|g| format_sig(g.summary.std_dev, 4)))
            .collect::<Vec<_>>(),
    );
    stats.add_row(
        std::iter::once("Median".to_string())
            .chain(exp.groups.iter().map(|g| format_sig(g.summary.median, 5)))
            .collect::<Vec<_>>(),
    );

    let mut ftable = Table::new(["ANOVA parameters", "Value"]);
    ftable.add_row(["F value", &format_sig(exp.anova.f_statistic, 5)]);
    let p = if exp.anova.p_value < 0.0001 {
        "< 0.0001".to_string()
    } else {
        format_sig(exp.anova.p_value, 3)
    };
    ftable.add_row(["P value assuming null hypothesis", &p]);
    // Pairwise Welch t-tests: which heuristics actually differ.
    for i in 0..exp.groups.len() {
        for j in (i + 1)..exp.groups.len() {
            if let Some(t) = welch_t_test(&exp.groups[i].et, &exp.groups[j].et) {
                let p = if t.p_value < 0.0001 {
                    "< 0.0001".to_string()
                } else {
                    format_sig(t.p_value, 3)
                };
                ftable.add_row([
                    format!("Welch p: {} vs {}", exp.groups[i].name, exp.groups[j].name),
                    p,
                ]);
            }
        }
    }
    (stats, ftable)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_shapes() {
        let cfg = AnovaConfig {
            size: 8,
            runs: 4,
            seed: 7,
            budget_divisor: 100,
        };
        let exp = run_anova_experiment(&cfg, true);
        assert_eq!(exp.groups.len(), 3);
        for g in &exp.groups {
            assert_eq!(g.et.len(), 4);
            assert!(g.summary.mean > 0.0);
            assert!(g.ci_lo <= g.summary.mean && g.summary.mean <= g.ci_hi);
        }
        assert_eq!(exp.anova.groups, 3);
        assert_eq!(exp.anova.total_n, 12);
        let (t1, t2) = table3(&exp);
        let s = t1.render();
        assert!(s.contains("MaTCH"));
        assert!(s.contains("FastMap-GA 100/10000"));
        assert!(t2.render().contains("F value"));
    }

    #[test]
    fn matcher_beats_crippled_ga_significantly() {
        // With heavily reduced GA budgets, MaTCH's group mean should be
        // clearly lower and the ANOVA significant.
        let cfg = AnovaConfig {
            size: 10,
            runs: 6,
            seed: 9,
            budget_divisor: 100,
        };
        let exp = run_anova_experiment(&cfg, true);
        let matcher_mean = exp.groups[0].summary.mean;
        for g in &exp.groups[1..] {
            assert!(
                matcher_mean < g.summary.mean,
                "MaTCH {matcher_mean} vs {} {}",
                g.name,
                g.summary.mean
            );
        }
        assert!(exp.anova.f_statistic > 1.0);
    }
}
