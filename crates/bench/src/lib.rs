//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artefact | Binary | Library entry point |
//! |---|---|---|
//! | Table 1 + Figure 7 (ET) | `table1_et` | [`report::table_et`] over [`sweep::run_sweep`] |
//! | Table 2 + Figure 8 (MT) | `table2_mt` | [`report::table_mt`] |
//! | Figure 9 (ATN) | `fig9_atn` | [`report::chart_atn`] |
//! | Table 3 (ANOVA) | `table3_anova` | [`anova::run_anova_experiment`] |
//! | Figure 3 (matrix evolution) | `fig3_matrix` | [`fig3::run_matrix_evolution`] |
//! | Ablations (ζ, ρ, N, GenPerm, extra baselines) | `ablation_*` | [`ablation`] |
//!
//! Experiment scale is controlled by the `MATCH_BENCH_PROFILE`
//! environment variable: `paper` (full §5.2 scale: sizes 10–50, 5 graph
//! pairs, 5 runs, GA 500/1000) or `quick` (a minutes-scale smoke
//! version). Binaries print the tables/charts and drop CSVs under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod anova;
pub mod fig3;
pub mod history;
pub mod report;
pub mod sweep;

pub use sweep::{CellStats, Profile, SweepConfig, SweepData};
