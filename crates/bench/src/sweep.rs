//! The §5.2 size sweep: run a set of heuristics over the paper's
//! synthetic instance family and collect ET / MT / evaluation statistics.

use match_core::{Mapper, MapperOutcome, MappingInstance};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::SeedSequence;
use match_stats::OnlineStats;
use match_telemetry::JsonlRecorder;
use std::path::{Path, PathBuf};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The paper's full scale: sizes 10..=50 step 10, five graph pairs
    /// per size, five runs per pair, GA 500/1000, MaTCH N = 2|V|².
    Paper,
    /// A minutes-scale smoke profile for CI: sizes {10, 20}, two pairs,
    /// two runs, GA 120/150.
    Quick,
}

impl Profile {
    /// Read `MATCH_BENCH_PROFILE` (`paper` | `quick`), defaulting to
    /// [`Profile::Paper`].
    pub fn from_env() -> Profile {
        match std::env::var("MATCH_BENCH_PROFILE").as_deref() {
            Ok("quick") | Ok("QUICK") => Profile::Quick,
            _ => Profile::Paper,
        }
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Instance sizes (`|V_t| = |V_r|`).
    pub sizes: Vec<usize>,
    /// Independent graph pairs per size (paper: 5).
    pub graphs_per_size: usize,
    /// Independent runs per heuristic per pair (paper: 5).
    pub runs_per_graph: usize,
    /// Master seed for the whole experiment.
    pub seed: u64,
    /// FastMap-GA configuration.
    pub ga: GaConfig,
    /// MaTCH configuration.
    pub matcher: match_core::MatchConfig,
}

impl SweepConfig {
    /// The configuration for a [`Profile`].
    pub fn for_profile(profile: Profile) -> SweepConfig {
        match profile {
            Profile::Paper => SweepConfig {
                sizes: vec![10, 20, 30, 40, 50],
                graphs_per_size: 5,
                runs_per_graph: 5,
                seed: 2005, // the publication year, for flavour
                ga: GaConfig::paper_default(),
                matcher: match_core::MatchConfig::default(),
            },
            Profile::Quick => SweepConfig {
                sizes: vec![10, 20],
                graphs_per_size: 2,
                runs_per_graph: 2,
                seed: 2005,
                ga: GaConfig {
                    population: 120,
                    generations: 150,
                    ..GaConfig::paper_default()
                },
                matcher: match_core::MatchConfig {
                    max_iters: 200,
                    ..match_core::MatchConfig::default()
                },
            },
        }
    }

    /// Generate the instance for `(size, graph_index)` deterministically
    /// from the master seed.
    pub fn instance(&self, size: usize, graph_index: usize) -> MappingInstance {
        let mut seq = SeedSequence::new(self.seed)
            .child(size as u64)
            .child(graph_index as u64);
        let mut rng = seq.next_rng();
        let pair = PaperFamilyConfig::new(size).generate(&mut rng);
        MappingInstance::from_pair(&pair)
    }

    /// Deterministic per-run RNG for `(heuristic, size, graph, run)`.
    pub fn run_rng(
        &self,
        heuristic_idx: usize,
        size: usize,
        graph_index: usize,
        run: usize,
    ) -> rand::rngs::StdRng {
        SeedSequence::new(self.seed)
            .child(0xA110C + heuristic_idx as u64)
            .child(size as u64)
            .child(graph_index as u64)
            .child(run as u64)
            .next_rng()
    }
}

/// Aggregated statistics for one `(heuristic, size)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// Execution-time samples (one per run × graph).
    pub et: Vec<f64>,
    /// Mapping-time samples in seconds.
    pub mt: Vec<f64>,
    /// Objective evaluations per run.
    pub evals: Vec<f64>,
    /// Wall-clock nanoseconds per solver iteration, one per run.
    pub ns_per_iter: Vec<f64>,
}

impl CellStats {
    fn new() -> Self {
        CellStats {
            et: Vec::new(),
            mt: Vec::new(),
            evals: Vec::new(),
            ns_per_iter: Vec::new(),
        }
    }

    fn push(&mut self, out: &MapperOutcome) {
        self.et.push(out.cost);
        self.mt.push(out.elapsed.as_secs_f64());
        self.evals.push(out.evaluations as f64);
        self.ns_per_iter
            .push(out.elapsed.as_nanos() as f64 / out.iterations.max(1) as f64);
    }

    /// Mean ET — the quantity of Table 1.
    pub fn mean_et(&self) -> f64 {
        stats_mean(&self.et)
    }

    /// Mean MT in seconds — the quantity of Table 2.
    pub fn mean_mt(&self) -> f64 {
        stats_mean(&self.mt)
    }

    /// Mean objective evaluations — the machine-independent MT proxy.
    pub fn mean_evals(&self) -> f64 {
        stats_mean(&self.evals)
    }

    /// Mean wall-clock nanoseconds per solver iteration.
    pub fn mean_ns_per_iter(&self) -> f64 {
        stats_mean(&self.ns_per_iter)
    }

    /// Mean ATN = ET + MT (Figure 9's unit convention: one ET unit is
    /// taken as one second; see EXPERIMENTS.md).
    pub fn mean_atn(&self) -> f64 {
        self.mean_et() + self.mean_mt()
    }

    /// Online summary of the ET samples.
    pub fn et_stats(&self) -> OnlineStats {
        self.et.iter().copied().collect()
    }
}

fn stats_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Full sweep results: `cells[heuristic][size_index]`.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// Heuristic names, in input order.
    pub names: Vec<String>,
    /// Sizes, in input order.
    pub sizes: Vec<usize>,
    /// `cells[h][s]` for heuristic `h` at size index `s`.
    pub cells: Vec<Vec<CellStats>>,
}

impl SweepData {
    /// Index of a heuristic by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// Run `mappers` over the configured sweep. Progress lines go to stderr
/// (`quiet = false`) so long paper-scale runs show life.
pub fn run_sweep(mappers: &[&dyn Mapper], cfg: &SweepConfig, quiet: bool) -> SweepData {
    run_sweep_traced(mappers, cfg, quiet, None)
}

/// The per-cell JSONL trace file under `dir` for one sweep run.
fn cell_trace_path(dir: &Path, name: &str, size: usize, graph: usize, run: usize) -> PathBuf {
    // Heuristic names are short ASCII but may carry '+' or '-'; keep
    // alphanumerics and map the rest to '_' for portable file names.
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    dir.join(format!("{slug}_n{size}_g{graph}_r{run}.jsonl"))
}

/// [`run_sweep`] with per-cell trace archiving: when `trace_dir` is
/// given, every `(heuristic, size, graph, run)` cell streams its solver
/// telemetry to its own JSONL file in that directory (inspect any of
/// them with `matchctl report`). Tracing must not perturb results — the
/// RNG stream is independent of the recorder.
pub fn run_sweep_traced(
    mappers: &[&dyn Mapper],
    cfg: &SweepConfig,
    quiet: bool,
    trace_dir: Option<&Path>,
) -> SweepData {
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("creating trace dir {}: {e}", dir.display()));
    }
    let names: Vec<String> = mappers.iter().map(|m| m.name().to_string()).collect();
    let mut cells: Vec<Vec<CellStats>> = mappers
        .iter()
        .map(|_| cfg.sizes.iter().map(|_| CellStats::new()).collect())
        .collect();

    for (si, &size) in cfg.sizes.iter().enumerate() {
        for g in 0..cfg.graphs_per_size {
            let inst = cfg.instance(size, g);
            for (hi, mapper) in mappers.iter().enumerate() {
                for run in 0..cfg.runs_per_graph {
                    let mut rng = cfg.run_rng(hi, size, g, run);
                    let out = match trace_dir {
                        Some(dir) => {
                            let path = cell_trace_path(dir, mapper.name(), size, g, run);
                            let mut rec = JsonlRecorder::create(&path).unwrap_or_else(|e| {
                                panic!("creating trace {}: {e}", path.display())
                            });
                            let out = mapper.map_traced(&inst, &mut rng, &mut rec);
                            rec.finish()
                                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
                            out
                        }
                        None => mapper.map(&inst, &mut rng),
                    };
                    debug_assert!(out.mapping.validate(&inst).is_ok());
                    cells[hi][si].push(&out);
                    if !quiet {
                        eprintln!(
                            "[sweep] size={size} graph={g} {} run={run}: ET={:.0} MT={:.2}s evals={}",
                            mapper.name(),
                            out.cost,
                            out.elapsed.as_secs_f64(),
                            out.evaluations
                        );
                    }
                }
            }
        }
    }
    SweepData {
        names,
        sizes: cfg.sizes.clone(),
        cells,
    }
}

/// The standard Table-1/2 pair: FastMap-GA then MaTCH.
pub fn paper_pair(cfg: &SweepConfig) -> (FastMapGa, match_core::Matcher) {
    (
        FastMapGa::new(cfg.ga.clone()),
        match_core::Matcher::new(cfg.matcher.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_baselines::RandomSearch;

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            sizes: vec![6, 8],
            graphs_per_size: 2,
            runs_per_graph: 2,
            seed: 42,
            ga: GaConfig {
                population: 20,
                generations: 10,
                ..GaConfig::paper_default()
            },
            matcher: match_core::MatchConfig {
                sample_size: Some(64),
                max_iters: 20,
                threads: 1,
                ..match_core::MatchConfig::default()
            },
        }
    }

    #[test]
    fn sweep_shape_and_counts() {
        let cfg = tiny_cfg();
        let rs = RandomSearch::new(10);
        let data = run_sweep(&[&rs], &cfg, true);
        assert_eq!(data.names, vec!["Random"]);
        assert_eq!(data.sizes, vec![6, 8]);
        assert_eq!(data.cells.len(), 1);
        assert_eq!(data.cells[0].len(), 2);
        // 2 graphs × 2 runs = 4 samples per cell.
        assert_eq!(data.cells[0][0].et.len(), 4);
        assert!(data.cells[0][0].mean_et() > 0.0);
        assert_eq!(data.cells[0][0].mean_evals(), 10.0);
    }

    #[test]
    fn traced_sweep_archives_one_file_per_cell() {
        use match_telemetry::{read_trace_file, Event};
        let cfg = tiny_cfg();
        let dir = std::env::temp_dir().join(format!(
            "match-sweep-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // A mapper that records telemetry (RandomSearch records none).
        let hc = match_baselines::HillClimber::new(1, 500);
        let traced = run_sweep_traced(&[&hc], &cfg, true, Some(&dir));
        // 2 sizes × 2 graphs × 2 runs = 8 trace files.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert_eq!(files.len(), 8, "{files:?}");
        for f in &files {
            let events = read_trace_file(f).unwrap();
            assert!(
                matches!(events.first(), Some(Event::RunStart { .. })),
                "{f:?}"
            );
            assert!(matches!(events.last(), Some(Event::RunEnd { .. })), "{f:?}");
        }
        // Tracing must not perturb the results.
        let plain = run_sweep(&[&hc], &cfg, true);
        assert_eq!(traced.cells[0][0].et, plain.cells[0][0].et);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn instances_deterministic() {
        let cfg = tiny_cfg();
        let a = cfg.instance(6, 1);
        let b = cfg.instance(6, 1);
        assert_eq!(a, b);
        let c = cfg.instance(6, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn run_rngs_distinct_across_axes() {
        use rand::Rng;
        let cfg = tiny_cfg();
        let draws: Vec<u64> = [
            cfg.run_rng(0, 6, 0, 0),
            cfg.run_rng(1, 6, 0, 0),
            cfg.run_rng(0, 8, 0, 0),
            cfg.run_rng(0, 6, 1, 0),
            cfg.run_rng(0, 6, 0, 1),
        ]
        .iter_mut()
        .map(|r| r.random())
        .collect();
        let set: std::collections::HashSet<_> = draws.iter().collect();
        assert_eq!(set.len(), draws.len());
    }

    #[test]
    fn profile_configs_match_paper() {
        let p = SweepConfig::for_profile(Profile::Paper);
        assert_eq!(p.sizes, vec![10, 20, 30, 40, 50]);
        assert_eq!(p.graphs_per_size, 5);
        assert_eq!(p.runs_per_graph, 5);
        assert_eq!(p.ga.population, 500);
        assert_eq!(p.ga.generations, 1000);
        let q = SweepConfig::for_profile(Profile::Quick);
        assert!(q.sizes.len() < p.sizes.len());
    }

    #[test]
    fn index_of_names() {
        let cfg = tiny_cfg();
        let rs = RandomSearch::new(5);
        let data = run_sweep(&[&rs], &cfg, true);
        assert_eq!(data.index_of("Random"), Some(0));
        assert_eq!(data.index_of("nope"), None);
    }
}
