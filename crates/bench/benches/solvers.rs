//! Whole-solver benchmarks at small scale: one MaTCH run, one GA run,
//! one hill-climb descent on the same 10-node instance — the relative
//! magnitudes behind Table 2's first column.

use criterion::{criterion_group, criterion_main, Criterion};
use match_baselines::HillClimber;
use match_core::{Mapper, MappingInstance, MatchConfig, Matcher};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::paper::PaperFamilyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn instance(n: usize) -> MappingInstance {
    let mut rng = StdRng::seed_from_u64(2005);
    MappingInstance::from_pair(&PaperFamilyConfig::new(n).generate(&mut rng))
}

fn bench_solvers(c: &mut Criterion) {
    let inst = instance(10);
    let mut group = c.benchmark_group("solvers_n10");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));

    let matcher = Matcher::new(MatchConfig {
        threads: 1,
        ..MatchConfig::default()
    });
    group.bench_function("matcher", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(matcher.map(black_box(&inst), &mut rng).cost)
        })
    });

    let ga = FastMapGa::new(GaConfig {
        population: 100,
        generations: 100,
        ..GaConfig::paper_default()
    });
    group.bench_function("ga_100x100", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(ga.map(black_box(&inst), &mut rng).cost)
        })
    });

    let hill = HillClimber::new(1, 1_000_000);
    group.bench_function("hillclimb", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(hill.map(black_box(&inst), &mut rng).cost)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
