//! Scaling of the parallel sample evaluation (`match-par`): the batch of
//! `N = 2|V|²` objective evaluations per CE iteration, sequential vs
//! multi-threaded — the speedup MaTCH's mapping time gains from the
//! fork/join substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use match_core::{exec_time, MappingInstance};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::perm::random_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_batch(c: &mut Criterion) {
    let n = 30usize;
    let mut rng = StdRng::seed_from_u64(9);
    let inst = MappingInstance::from_pair(&PaperFamilyConfig::new(n).generate(&mut rng));
    let batch: Vec<Vec<usize>> = (0..2 * n * n)
        .map(|_| random_permutation(n, &mut rng))
        .collect();

    let mut group = c.benchmark_group("batch_eval_n30_1800samples");
    let mut thread_counts = vec![1usize, 2, 4, match_par::default_threads()];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let costs = match_par::parallel_map(batch.len(), threads, |i| {
                        exec_time(&inst, &batch[i])
                    });
                    black_box(costs[0])
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
