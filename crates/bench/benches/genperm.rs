//! Microbenchmark: GenPerm sampling (Figure 4) across matrix states.
//! MaTCH draws `2|V|²` GenPerm samples per iteration; this is the other
//! half of its per-iteration cost next to objective evaluation.
//!
//! The `sampling_*` groups compare the two batch pipelines end to end:
//! sequential restricted-roulette draws on one thread versus the fused
//! alias-table flat batch (single- and multi-threaded). The standalone
//! `match-bench` `sampling` binary emits the same comparison as a JSON
//! artefact for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use match_ce::batch::FlatSampler;
use match_ce::model::CeModel;
use match_ce::{PermutationModel, StochasticMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("genperm_uniform");
    for n in [10usize, 20, 50] {
        let model = PermutationModel::uniform(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut scratch = match_ce::models::permutation::GenPermScratch::new();
            let mut out = Vec::new();
            b.iter(|| {
                model.sample_into(&mut rng, &mut scratch, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_uniform_recorded(c: &mut Criterion) {
    // The same sampling loop with the disabled-telemetry path a traced
    // solver takes: one unconditional virtual `record` per sample, which
    // `NullRecorder` drops. Compare against `genperm_uniform`; the gap is
    // the observability tax with tracing off (<2% is the budget).
    use match_telemetry::{Event, NullRecorder, Recorder};
    let mut group = c.benchmark_group("genperm_uniform_recorded");
    for n in [10usize, 20, 50] {
        let model = PermutationModel::uniform(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut scratch = match_ce::models::permutation::GenPermScratch::new();
            let mut out = Vec::new();
            let mut null = NullRecorder;
            let recorder: &mut dyn Recorder = &mut null;
            b.iter(|| {
                model.sample_into(&mut rng, &mut scratch, &mut out);
                recorder.record(Event::Counter {
                    name: "samples".into(),
                    value: 1,
                });
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_alias_draw(c: &mut Criterion) {
    // One alias-table GenPerm draw (tables prebuilt), against the
    // restricted roulette of `genperm_uniform`: O(n log n) expected
    // versus O(n²).
    let mut group = c.benchmark_group("genperm_alias");
    for n in [10usize, 20, 50] {
        let model = PermutationModel::uniform(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut tables = model.new_tables();
            model.fill_tables(&mut tables);
            let mut scratch = model.new_scratch();
            let mut rng = StdRng::seed_from_u64(1);
            let mut out = vec![0usize; n];
            b.iter(|| {
                model.sample_flat(&tables, &mut scratch, &mut rng, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_degenerate(c: &mut Criterion) {
    // Near-degenerate matrices are the worst case for the restricted
    // wheel (mass concentrates on used columns late in the run).
    let mut group = c.benchmark_group("genperm_degenerate");
    for n in [10usize, 50] {
        let mut data = vec![1e-9; n * n];
        for i in 0..n {
            data[i * n + (n - 1 - i)] = 1.0;
        }
        let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, data));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(model.sample(&mut rng)))
        });
    }
    group.finish();
}

/// A whole `N = 2n²` batch via the legacy sequential path: per-sample
/// `Vec` allocations, restricted-roulette draws on the calling thread.
fn bench_batch_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_batch_sequential");
    group.sample_size(10);
    for n in [16usize, 32, 48] {
        let model = PermutationModel::uniform(n);
        let batch = 2 * n * n;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut samples: Vec<Vec<usize>> = Vec::new();
            b.iter(|| {
                model.sample_batch(&mut rng, batch, &mut samples);
                black_box(samples.len())
            })
        });
    }
    group.finish();
}

/// The same `N = 2n²` batch through the fused flat pipeline, single- and
/// multi-threaded (per-sample derived RNGs, one flat buffer).
fn bench_batch_flat(c: &mut Criterion) {
    let threads_max = match_par::default_threads();
    let mut group = c.benchmark_group("sampling_batch_flat");
    group.sample_size(10);
    for n in [16usize, 32, 48] {
        let model = PermutationModel::uniform(n);
        let batch = 2 * n * n;
        for threads in [1usize, threads_max] {
            group.bench_with_input(BenchmarkId::new(format!("t{threads}"), n), &n, |b, _| {
                let mut data = vec![0usize; batch * n];
                let mut aux = vec![0.0f64; batch];
                let mut tables = model.new_tables();
                let mut iter_seed = 0u64;
                b.iter(|| {
                    iter_seed = iter_seed.wrapping_add(1);
                    let seed = iter_seed;
                    model.fill_tables(&mut tables);
                    let tables_ref = &tables;
                    let model_ref = &model;
                    match_par::parallel_fill_rows(
                        &mut data,
                        &mut aux,
                        n,
                        threads,
                        || model_ref.new_scratch(),
                        |scratch, i, row, _aux| {
                            let mut rng = match_rngutil::seed::rng_from(seed, i as u64);
                            model_ref.sample_flat(tables_ref, scratch, &mut rng, row);
                        },
                    );
                    black_box(data.last().copied())
                })
            });
        }
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("elite_update");
    for n in [10usize, 50] {
        let elites: Vec<Vec<usize>> = (0..((n * n) / 5).max(1))
            .map(|s| match_rngutil::random_permutation(n, &mut StdRng::seed_from_u64(s as u64)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut model = PermutationModel::uniform(n);
            b.iter(|| {
                model.update_from_elites(black_box(&elites), 0.3);
            })
        });
    }
    group.finish();
}

fn bench_elite_selection(c: &mut Criterion) {
    // O(N) quickselect + tie sweep vs. the full sort it replaced, on a
    // paper-sized cost vector with plateau-heavy values.
    let mut group = c.benchmark_group("elite_selection");
    for n in [512usize, 5000] {
        let costs: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(4);
            use rand::Rng;
            (0..n)
                .map(|_| (rng.random::<f64>() * 32.0).floor())
                .collect()
        };
        let target = (n / 10).max(1);
        group.bench_with_input(BenchmarkId::new("select", n), &n, |b, _| {
            b.iter(|| black_box(match_ce::select_elites(black_box(&costs), target)))
        });
        group.bench_with_input(BenchmarkId::new("sort", n), &n, |b, _| {
            b.iter(|| {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    costs[a]
                        .partial_cmp(&costs[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                black_box(costs[order[target - 1]])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_uniform,
    bench_uniform_recorded,
    bench_alias_draw,
    bench_degenerate,
    bench_batch_sequential,
    bench_batch_flat,
    bench_update,
    bench_elite_selection
);
criterion_main!(benches);
