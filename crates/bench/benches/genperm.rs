//! Microbenchmark: GenPerm sampling (Figure 4) across matrix states.
//! MaTCH draws `2|V|²` GenPerm samples per iteration; this is the other
//! half of its per-iteration cost next to objective evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use match_ce::model::CeModel;
use match_ce::{PermutationModel, StochasticMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("genperm_uniform");
    for n in [10usize, 20, 50] {
        let model = PermutationModel::uniform(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut used = Vec::new();
            let mut weights = Vec::new();
            let mut out = Vec::new();
            b.iter(|| {
                model.sample_into(&mut rng, &mut used, &mut weights, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_uniform_recorded(c: &mut Criterion) {
    // The same sampling loop with the disabled-telemetry path a traced
    // solver takes: one unconditional virtual `record` per sample, which
    // `NullRecorder` drops. Compare against `genperm_uniform`; the gap is
    // the observability tax with tracing off (<2% is the budget).
    use match_telemetry::{Event, NullRecorder, Recorder};
    let mut group = c.benchmark_group("genperm_uniform_recorded");
    for n in [10usize, 20, 50] {
        let model = PermutationModel::uniform(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut used = Vec::new();
            let mut weights = Vec::new();
            let mut out = Vec::new();
            let mut null = NullRecorder;
            let recorder: &mut dyn Recorder = &mut null;
            b.iter(|| {
                model.sample_into(&mut rng, &mut used, &mut weights, &mut out);
                recorder.record(Event::Counter {
                    name: "samples".into(),
                    value: 1,
                });
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_degenerate(c: &mut Criterion) {
    // Near-degenerate matrices are the worst case for the restricted
    // wheel (mass concentrates on used columns late in the run).
    let mut group = c.benchmark_group("genperm_degenerate");
    for n in [10usize, 50] {
        let mut data = vec![1e-9; n * n];
        for i in 0..n {
            data[i * n + (n - 1 - i)] = 1.0;
        }
        let model = PermutationModel::from_matrix(StochasticMatrix::from_rows(n, n, data));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(model.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("elite_update");
    for n in [10usize, 50] {
        let elites: Vec<Vec<usize>> = (0..((n * n) / 5).max(1))
            .map(|s| match_rngutil::random_permutation(n, &mut StdRng::seed_from_u64(s as u64)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut model = PermutationModel::uniform(n);
            b.iter(|| {
                model.update_from_elites(black_box(&elites), 0.3);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_uniform,
    bench_uniform_recorded,
    bench_degenerate,
    bench_update
);
criterion_main!(benches);
