//! Microbenchmark: the Eq. 1/2 objective evaluation, full and
//! incremental. The objective is called `N = 2|V|²` times per CE
//! iteration, so its cost drives MaTCH's mapping time (Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use match_core::{exec_time, IncrementalCost, MappingInstance};
use match_graph::gen::paper::PaperFamilyConfig;
use match_rngutil::perm::random_permutation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(n: usize) -> MappingInstance {
    let mut rng = StdRng::seed_from_u64(n as u64);
    MappingInstance::from_pair(&PaperFamilyConfig::new(n).generate(&mut rng))
}

fn bench_full_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_time_full");
    for n in [10usize, 20, 30, 40, 50] {
        let inst = instance(n);
        let perm = random_permutation(n, &mut StdRng::seed_from_u64(7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(exec_time(black_box(&inst), black_box(&perm))))
        });
    }
    group.finish();
}

fn bench_full_eval_recorded(c: &mut Criterion) {
    // Objective evaluation through the disabled-telemetry path: one
    // unconditional virtual `record` per call, dropped by `NullRecorder`.
    // Compare against `exec_time_full`; regression budget is <2%.
    use match_telemetry::{Event, NullRecorder, Recorder};
    let mut group = c.benchmark_group("exec_time_full_recorded");
    for n in [10usize, 30, 50] {
        let inst = instance(n);
        let perm = random_permutation(n, &mut StdRng::seed_from_u64(7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut null = NullRecorder;
            let recorder: &mut dyn Recorder = &mut null;
            b.iter(|| {
                let cost = exec_time(black_box(&inst), black_box(&perm));
                recorder.record(Event::Counter {
                    name: "evaluations".into(),
                    value: 1,
                });
                black_box(cost)
            })
        });
    }
    group.finish();
}

fn bench_incremental_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_swap");
    for n in [10usize, 30, 50] {
        let inst = instance(n);
        let perm = random_permutation(n, &mut StdRng::seed_from_u64(7));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut inc = IncrementalCost::new(&inst, perm.clone());
            let mut k = 0usize;
            b.iter(|| {
                let a = k % n;
                let b2 = (k / n + 1) % n;
                k = k.wrapping_add(1);
                inc.apply_swap(a, b2);
                black_box(inc.cost())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_eval,
    bench_full_eval_recorded,
    bench_incremental_swap
);
criterion_main!(benches);
