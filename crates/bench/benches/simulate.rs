//! Discrete-event simulator throughput: events per second across
//! instance sizes, rounds and contention modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use match_core::{Mapping, MappingInstance};
use match_graph::gen::paper::PaperFamilyConfig;
use match_sim::{SimConfig, SimMode, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instance(n: usize) -> MappingInstance {
    let mut rng = StdRng::seed_from_u64(n as u64);
    MappingInstance::from_pair(&PaperFamilyConfig::new(n).generate(&mut rng))
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_10_rounds");
    for n in [10usize, 30, 50] {
        let inst = instance(n);
        let mapping = Mapping::identity(n);
        for (label, mode) in [
            ("serial", SimMode::PaperSerial),
            ("blocking", SimMode::BlockingReceives),
        ] {
            let sim = Simulator::new(
                &inst,
                SimConfig {
                    rounds: 10,
                    mode,
                    trace: false,
                },
            );
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(sim.run(black_box(&mapping)).makespan))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
