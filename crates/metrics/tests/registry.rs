//! Concurrency and accuracy tests for the metrics registry (ISSUE 6
//! satellite): multi-threaded counter exactness, histogram percentile
//! accuracy against exact quantiles, and snapshot-during-write safety.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use match_metrics::Metrics;

/// N threads x M increments must sum exactly — sharding may spread the
/// writes but must never lose or double-count one.
#[test]
fn multithreaded_counter_sums_exactly() {
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 50_000;
    let metrics = Metrics::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = metrics.counter("hits");
            thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(metrics.counter("hits").value(), THREADS as u64 * INCREMENTS);
    assert_eq!(
        metrics.snapshot().counter("hits"),
        THREADS as u64 * INCREMENTS
    );
}

/// Labelled series written from many threads stay independent and exact.
#[test]
fn multithreaded_labelled_counters_stay_separate() {
    const THREADS: usize = 6;
    const INCREMENTS: u64 = 10_000;
    let metrics = Metrics::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let op = if t % 2 == 0 { "solve" } else { "stats" };
            let counter = metrics.counter_with("requests", &[("op", op)]);
            thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = metrics.snapshot();
    let get = |op: &str| {
        snap.counters
            .get(&match_metrics::MetricKey::new("requests", &[("op", op)]))
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(get("solve"), 3 * INCREMENTS);
    assert_eq!(get("stats"), 3 * INCREMENTS);
}

/// Exact quantile of a sorted sample set (nearest-rank definition, the
/// same "first index where cumulative count reaches ceil(q*n)" rule the
/// histogram uses over its buckets).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

/// Log-2 buckets promise at most one power of two of error: the
/// reported quantile is >= the exact one (bucket upper bound) and < 2x
/// (next power of two), clamped to the true max.
#[test]
fn histogram_percentiles_track_exact_quantiles() {
    // Three shapes: uniform, heavily skewed, and bimodal.
    let distributions: Vec<(&str, Vec<u64>)> = vec![
        ("uniform", (1..=10_000u64).collect()),
        (
            "skewed",
            (0..10_000u64).map(|i| (i % 100) * (i % 100) + 1).collect(),
        ),
        (
            "bimodal",
            (0..10_000u64)
                .map(|i| if i % 10 == 0 { 1_000_000 } else { 500 })
                .collect(),
        ),
    ];
    for (name, values) in distributions {
        let metrics = Metrics::new();
        let hist = metrics.histogram("lat");
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count(), values.len() as u64, "{name}: count");
        assert_eq!(snap.max(), *sorted.last().unwrap(), "{name}: max");
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let approx = snap.quantile(q);
            assert!(
                approx >= exact,
                "{name}: q{q} reported {approx} below exact {exact}"
            );
            assert!(
                approx < (exact + 1).saturating_mul(2),
                "{name}: q{q} reported {approx}, more than 2x exact {exact}"
            );
        }
        assert_eq!(snap.quantile(1.0), snap.max(), "{name}: p100 is max");
    }
}

/// Snapshots taken while writers are mid-flight must always be
/// internally coherent: monotone totals, count never exceeding what has
/// been handed to `record`, quantiles within the recorded range.
#[test]
fn snapshot_during_write_is_safe_and_monotone() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 40_000;
    let metrics = Metrics::new();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let counter = metrics.counter("ops");
            let gauge = metrics.gauge("in_flight");
            let hist = metrics.histogram("lat");
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    gauge.inc();
                    hist.record((w as u64 + 1) * 1000 + i % 997);
                    counter.inc();
                    gauge.dec();
                }
            })
        })
        .collect();

    let reader = {
        let metrics = metrics.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let total = WRITERS as u64 * PER_WRITER;
            let mut last_count = 0u64;
            let mut snaps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = metrics.snapshot();
                let ops = snap.counter("ops");
                assert!(ops >= last_count, "counter went backwards");
                assert!(ops <= total, "counter overshot");
                last_count = ops;
                let depth = snap.gauge("in_flight");
                assert!(
                    (0..=WRITERS as i64).contains(&depth),
                    "in_flight gauge {depth} outside [0, {WRITERS}]"
                );
                if let Some(h) = snap.histogram("lat") {
                    assert!(h.count() <= total);
                    let p99 = h.quantile(0.99);
                    assert!(p99 <= h.max(), "quantile above max");
                    if h.count() > 0 {
                        // All recorded values are >= 1000.
                        assert!(h.max() >= 1000);
                    }
                }
                // Rendering must never panic mid-write either.
                let _ = snap.to_prometheus();
                snaps += 1;
            }
            snaps
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0, "reader never snapshotted");

    let final_snap = metrics.snapshot();
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(final_snap.counter("ops"), total);
    assert_eq!(final_snap.gauge("in_flight"), 0);
    let h = final_snap.histogram("lat").unwrap();
    assert_eq!(h.count(), total);
}

/// Cloned `Metrics` handles share one registry; `Metrics::null()`
/// clones stay inert.
#[test]
fn clones_share_state() {
    let a = Metrics::new();
    let b = a.clone();
    a.counter("x").inc();
    b.counter("x").inc();
    assert_eq!(a.snapshot().counter("x"), 2);

    let n = Metrics::null();
    let m = n.clone();
    m.counter("x").add(5);
    assert_eq!(n.snapshot().counter("x"), 0);
}
