//! The metric registry: sharded counters, gauges, latency histograms.
//!
//! Registration (name → handle) is the cold path and takes a mutex;
//! every update through a returned handle is lock-free — one or two
//! relaxed atomic RMWs on a cache-line-padded cell chosen per thread.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use match_telemetry::Histogram;

/// Number of independent cells each counter and histogram is split
/// across. Snapshots fold the shards back together; more shards means
/// less write contention and a slightly more expensive snapshot.
pub const SHARDS: usize = 16;

/// Histogram bucket count, matching [`match_telemetry::Histogram`]:
/// bucket 0 holds value 0, bucket `i` holds values with highest set bit
/// `i - 1`.
const BUCKETS: usize = 65;

/// One `u64` on its own cache line, so two threads bumping adjacent
/// shards of the same counter never ping-pong a line between cores.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Round-robin shard assignment: each thread draws an index once from a
/// global counter and keeps it for life. Threads spread evenly without
/// any per-update hashing.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A metric's identity: name plus sorted label pairs.
///
/// `Ord` over `(name, labels)` gives snapshots and the Prometheus
/// renderer a stable, deterministic series order for free.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `match_serve_jobs_total`.
    pub name: String,
    /// Label pairs, sorted by label name at construction.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so `[("a","1"),("b","2")]` and
    /// `[("b","2"),("a","1")]` identify the same series.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}=\"{v}\"")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Shared core of one counter: [`SHARDS`] padded cells.
#[derive(Default)]
struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

impl CounterCore {
    fn add(&self, delta: u64) {
        self.shards[shard_index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Shared core of one latency histogram: per shard, 65 log-2 buckets
/// plus a sum cell; a single max cell is shared (a CAS loop on max is
/// rare enough not to matter, and keeps the exact maximum).
struct HistCore {
    shards: [HistShard; SHARDS],
    max: AtomicU64,
}

struct HistShard {
    buckets: [PaddedU64; BUCKETS],
    sum: PaddedU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| PaddedU64::default()),
            sum: PaddedU64::default(),
        }
    }
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            shards: std::array::from_fn(|_| HistShard::default()),
            max: AtomicU64::new(0),
        }
    }
}

/// Same bucketing rule as `match_telemetry::Histogram`: bucket 0 is the
/// value 0; otherwise `65 - leading_zeros` minus one past the highest
/// set bit.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

impl HistCore {
    fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_of(value)]
            .0
            .fetch_add(1, Ordering::Relaxed);
        // Saturating, to match `Histogram::record`'s sum semantics.
        let _ = shard
            .sum
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Fold the shards into one telemetry histogram. Concurrent writers
    /// may land between bucket reads — each recorded value is counted
    /// at most once, never corrupted, so a snapshot under load is a
    /// consistent *recent* view rather than a point-in-time freeze.
    fn snapshot(&self) -> Histogram {
        let max = self.max.load(Ordering::Relaxed);
        let mut merged = Histogram::new();
        for shard in &self.shards {
            let mut buckets = [0u64; BUCKETS];
            for (dst, src) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *dst = src.0.load(Ordering::Relaxed);
            }
            let sum = shard.sum.0.load(Ordering::Relaxed);
            merged.merge(&Histogram::from_parts(buckets, sum, max));
        }
        merged
    }
}

/// Handle to a monotonically increasing counter. Cheap to clone; all
/// clones update the same underlying cells. A handle from
/// [`Metrics::null`] is empty: updates are one `Option` branch.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A disabled counter (what [`Metrics::null`] vends).
    pub fn null() -> Self {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(core) = &self.0 {
            core.add(delta);
        }
    }

    /// Current total across all shards (0 for a null handle).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.value())
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// Handle to a signed gauge (queue depth, in-flight requests). Gauges
/// see far less traffic than counters, so a single atomic suffices.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A disabled gauge.
    pub fn null() -> Self {
        Gauge(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a null handle).
    pub fn value(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// Handle to a log-bucketed latency histogram (power-of-two buckets, so
/// quantiles carry at most 2× relative error — plenty for p50/p99
/// dashboards).
#[derive(Clone, Default)]
pub struct LatencyHistogram(Option<Arc<HistCore>>);

impl LatencyHistogram {
    /// A disabled histogram.
    pub fn null() -> Self {
        LatencyHistogram(None)
    }

    /// Record one observation (typically nanoseconds).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Fold the shards into a [`match_telemetry::Histogram`] for
    /// quantile queries (empty for a null handle).
    pub fn snapshot(&self) -> Histogram {
        self.0
            .as_ref()
            .map_or_else(Histogram::new, |c| c.snapshot())
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("LatencyHistogram")
            .field(&self.snapshot().count())
            .finish()
    }
}

/// The registry proper: three name→core maps behind mutexes. Only
/// registration touches these; updates go through the handles.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<HistCore>>>,
}

/// The top-level metrics handle: clone-able, thread-safe, and either
/// live ([`Metrics::new`]) or the no-op **NullMetrics**
/// ([`Metrics::null`]) whose every operation is a single branch.
#[derive(Clone, Default)]
pub struct Metrics(Option<Arc<Registry>>);

impl Metrics {
    /// A live registry.
    pub fn new() -> Self {
        Metrics(Some(Arc::new(Registry::default())))
    }

    /// The NullMetrics handle: vends disabled sub-handles, snapshots
    /// empty. Instrumented code runs unchanged at one branch per call.
    pub fn null() -> Self {
        Metrics(None)
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Resolve (registering on first use) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Resolve (registering on first use) a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.0 {
            None => Counter::null(),
            Some(reg) => {
                let key = MetricKey::new(name, labels);
                let mut map = reg.counters.lock().expect("metrics registry poisoned");
                Counter(Some(Arc::clone(map.entry(key).or_default())))
            }
        }
    }

    /// Resolve (registering on first use) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Resolve (registering on first use) a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.0 {
            None => Gauge::null(),
            Some(reg) => {
                let key = MetricKey::new(name, labels);
                let mut map = reg.gauges.lock().expect("metrics registry poisoned");
                Gauge(Some(Arc::clone(map.entry(key).or_default())))
            }
        }
    }

    /// Resolve (registering on first use) an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        self.histogram_with(name, &[])
    }

    /// Resolve (registering on first use) a labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> LatencyHistogram {
        match &self.0 {
            None => LatencyHistogram::null(),
            Some(reg) => {
                let key = MetricKey::new(name, labels);
                let mut map = reg.histograms.lock().expect("metrics registry poisoned");
                LatencyHistogram(Some(Arc::clone(map.entry(key).or_default())))
            }
        }
    }

    /// A point-ish-in-time view of every registered series. Writers may
    /// run concurrently; each metric's own invariants (counter totals
    /// never over- or under-count a completed `add`) hold regardless.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(reg) = &self.0 {
            for (key, core) in reg
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
            {
                snap.counters.insert(key.clone(), core.value());
            }
            for (key, cell) in reg.gauges.lock().expect("metrics registry poisoned").iter() {
                snap.gauges
                    .insert(key.clone(), cell.load(Ordering::Relaxed));
            }
            for (key, core) in reg
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
            {
                snap.histograms.insert(key.clone(), core.snapshot());
            }
        }
        snap
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A frozen copy of every registered series, decoupled from the live
/// registry: cheap to ship across threads, mergeable across processes
/// or shards, renderable as Prometheus text.
#[derive(Debug, Default, Clone)]
pub struct Snapshot {
    /// Counter totals by series.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge values by series.
    pub gauges: BTreeMap<MetricKey, i64>,
    /// Histograms by series.
    pub histograms: BTreeMap<MetricKey, Histogram>,
}

impl Snapshot {
    /// Counter total for an unlabelled series (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .get(&MetricKey::new(name, &[]))
            .copied()
            .unwrap_or(0)
    }

    /// Gauge value for an unlabelled series (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .get(&MetricKey::new(name, &[]))
            .copied()
            .unwrap_or(0)
    }

    /// Histogram for an unlabelled series, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, &[]))
    }

    /// Fold another snapshot in: counters add, gauges add (deltas from
    /// disjoint sources), histograms merge.
    pub fn merge(&mut self, other: &Snapshot) {
        for (key, value) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += value;
        }
        for (key, value) in &other.gauges {
            *self.gauges.entry(key.clone()).or_insert(0) += value;
        }
        for (key, hist) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let m = Metrics::new();
        let c = m.counter("jobs");
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Same name resolves to the same cells.
        let again = m.counter("jobs");
        again.inc();
        assert_eq!(c.value(), 6);
        assert_eq!(m.snapshot().counter("jobs"), 6);
    }

    #[test]
    fn labelled_series_are_distinct_and_order_insensitive() {
        let m = Metrics::new();
        m.counter_with("req", &[("op", "solve")]).add(3);
        m.counter_with("req", &[("op", "stats")]).add(2);
        let snap = m.snapshot();
        assert_eq!(snap.counters[&MetricKey::new("req", &[("op", "solve")])], 3);
        assert_eq!(snap.counters[&MetricKey::new("req", &[("op", "stats")])], 2);
        // Label order does not create a new series.
        let a = MetricKey::new("x", &[("a", "1"), ("b", "2")]);
        let b = MetricKey::new("x", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    fn gauge_up_down_set() {
        let m = Metrics::new();
        let g = m.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.value(), 1);
        g.set(42);
        assert_eq!(m.snapshot().gauge("depth"), 42);
        g.add(-50);
        assert_eq!(g.value(), -8);
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum(), (1..=1000u64).sum::<u64>());
        assert_eq!(snap.max(), 1000);
        // Log-2 buckets: quantile answers are within 2x of exact.
        let p50 = snap.quantile(0.5);
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn null_metrics_is_inert() {
        let m = Metrics::null();
        assert!(!m.enabled());
        let c = m.counter("jobs");
        let g = m.gauge("depth");
        let h = m.histogram("lat");
        c.add(100);
        g.set(7);
        h.record(123);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count(), 0);
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_histograms() {
        let a = Metrics::new();
        a.counter("jobs").add(3);
        a.histogram("lat").record(10);
        let b = Metrics::new();
        b.counter("jobs").add(4);
        b.counter("only_b").inc();
        b.histogram("lat").record(1000);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("jobs"), 7);
        assert_eq!(snap.counter("only_b"), 1);
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn bucket_rule_matches_telemetry_histogram() {
        // Record the same values through the sharded core and a plain
        // telemetry histogram; snapshots must agree exactly.
        let m = Metrics::new();
        let h = m.histogram("x");
        let mut reference = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
            reference.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert_eq!(snap.sum(), reference.sum());
        assert_eq!(snap.max(), reference.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), reference.quantile(q), "q={q}");
        }
    }
}
