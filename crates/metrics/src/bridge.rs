//! Bridge from the solver-side [`match_telemetry::Recorder`] seam into
//! a live [`Metrics`] registry.
//!
//! Solvers already emit `Counter`/`Iter`/`RunEnd` events through
//! `map_controlled`'s recorder argument; [`MetricsRecorder`] turns that
//! stream into service-level series without the solvers knowing metrics
//! exist. Crucially, when built over [`Metrics::null`] it reports
//! `enabled() == false`, so solvers take exactly the same untraced code
//! path (and draw exactly the same RNG stream) as with `NullRecorder`.

use std::collections::BTreeMap;

use match_telemetry::{Event, Recorder};

use crate::registry::{Counter, Metrics};

/// Replace characters Prometheus metric names cannot contain (solver
/// counters use dotted names like `island.evaluations`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A [`Recorder`] that forwards solver telemetry into [`Metrics`]
/// series labelled by algorithm:
///
/// | event | series |
/// |---|---|
/// | `Counter { name, value }` | `match_solver_<name>_total{algo}` `+= value` |
/// | `Iter(..)` | `match_solver_iterations_total{algo}` `+= 1` |
/// | `RunEnd { evaluations, .. }` | `match_solver_evaluations_total{algo}` `+= evaluations` |
///
/// `RunStart`/`Span`/`Pool`/`Sample` are dropped: spans can carry
/// request-scoped names (unbounded label cardinality) and pool chunk
/// timings belong in traces, not scrapes. Counter handles are resolved
/// once per distinct name and cached, so the steady state is one map
/// lookup plus one relaxed atomic add per event.
pub struct MetricsRecorder {
    metrics: Metrics,
    algo: String,
    backend: String,
    /// Extra `op` label (e.g. `remap`) on every series; absent for plain
    /// solves so their series names stay exactly as previous releases.
    op: Option<String>,
    iterations: Counter,
    evaluations: Counter,
    counters: BTreeMap<String, Counter>,
}

impl MetricsRecorder {
    /// Build a recorder forwarding into `metrics`, labelling every
    /// series with `algo` and the default `backend="auto"`. Over
    /// [`Metrics::null`] the result is indistinguishable from
    /// `NullRecorder` to the solver.
    pub fn new(metrics: &Metrics, algo: &str) -> Self {
        Self::with_backend(metrics, algo, "auto")
    }

    /// Build a recorder labelling every series with both `algo` and the
    /// evaluation `backend` the solve runs under, so scrapes can split
    /// solver throughput per kernel.
    pub fn with_backend(metrics: &Metrics, algo: &str, backend: &str) -> Self {
        Self::build(metrics, algo, backend, None)
    }

    /// Build a recorder that additionally labels every series with an
    /// `op` (e.g. `op="remap"`), so scrapes can split solver throughput
    /// between full solves and incremental re-maps.
    pub fn with_op(metrics: &Metrics, algo: &str, backend: &str, op: &str) -> Self {
        Self::build(metrics, algo, backend, Some(op))
    }

    fn build(metrics: &Metrics, algo: &str, backend: &str, op: Option<&str>) -> Self {
        let resolve = |name: &str| match op {
            Some(op) => {
                metrics.counter_with(name, &[("algo", algo), ("backend", backend), ("op", op)])
            }
            None => metrics.counter_with(name, &[("algo", algo), ("backend", backend)]),
        };
        MetricsRecorder {
            iterations: resolve("match_solver_iterations_total"),
            evaluations: resolve("match_solver_evaluations_total"),
            metrics: metrics.clone(),
            algo: algo.to_string(),
            backend: backend.to_string(),
            op: op.map(str::to_string),
            counters: BTreeMap::new(),
        }
    }

    fn named_counter(&mut self, name: &str) -> &Counter {
        if !self.counters.contains_key(name) {
            let series = format!("match_solver_{}_total", sanitize(name));
            let handle = match &self.op {
                Some(op) => self.metrics.counter_with(
                    &series,
                    &[("algo", &self.algo), ("backend", &self.backend), ("op", op)],
                ),
                None => self
                    .metrics
                    .counter_with(&series, &[("algo", &self.algo), ("backend", &self.backend)]),
            };
            self.counters.insert(name.to_string(), handle);
        }
        &self.counters[name]
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        self.metrics.enabled()
    }

    fn record(&mut self, event: Event) {
        if !self.metrics.enabled() {
            return;
        }
        match event {
            Event::Counter { name, value } => self.named_counter(&name).add(value),
            Event::Iter(_) => self.iterations.inc(),
            Event::RunEnd { evaluations, .. } => self.evaluations.add(evaluations),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_telemetry::IterEvent;

    fn iter_event(iter: u64) -> Event {
        Event::Iter(IterEvent {
            iter,
            best: 1.0,
            mean: 2.0,
            gamma: None,
            elite_size: 0,
            wall_ns: 5,
        })
    }

    #[test]
    fn forwards_counters_iters_and_run_end() {
        let metrics = Metrics::new();
        let mut rec = MetricsRecorder::new(&metrics, "ce");
        assert!(rec.enabled());
        rec.record(Event::Counter {
            name: "evaluations".into(),
            value: 64,
        });
        rec.record(Event::Counter {
            name: "island.evaluations".into(),
            value: 8,
        });
        rec.record(iter_event(0));
        rec.record(iter_event(1));
        rec.record(Event::RunEnd {
            best: 1.0,
            iterations: 2,
            evaluations: 72,
            wall_ns: 100,
        });
        let snap = metrics.snapshot();
        let get = |name: &str| {
            snap.counters
                .get(&crate::MetricKey::new(
                    name,
                    &[("algo", "ce"), ("backend", "auto")],
                ))
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(get("match_solver_evaluations_total"), 64 + 72);
        assert_eq!(get("match_solver_island_evaluations_total"), 8);
        assert_eq!(get("match_solver_iterations_total"), 2);
    }

    #[test]
    fn null_metrics_bridge_reports_disabled() {
        let mut rec = MetricsRecorder::new(&Metrics::null(), "ga");
        assert!(!rec.enabled());
        rec.record(iter_event(0));
        // Nothing to observe; the point is enabled() == false means the
        // solver takes the untraced path, preserving its RNG stream.
    }

    #[test]
    fn algo_and_backend_labels_separate_series() {
        let metrics = Metrics::new();
        MetricsRecorder::new(&metrics, "ce").record(iter_event(0));
        MetricsRecorder::new(&metrics, "ga").record(iter_event(0));
        MetricsRecorder::with_backend(&metrics, "ce", "simd").record(iter_event(0));
        let snap = metrics.snapshot();
        let key = |algo: &str, backend: &str| {
            crate::MetricKey::new(
                "match_solver_iterations_total",
                &[("algo", algo), ("backend", backend)],
            )
        };
        assert_eq!(snap.counters[&key("ce", "auto")], 1);
        assert_eq!(snap.counters[&key("ga", "auto")], 1);
        assert_eq!(snap.counters[&key("ce", "simd")], 1);
    }

    #[test]
    fn op_label_separates_remap_series() {
        let metrics = Metrics::new();
        let mut rec = MetricsRecorder::with_op(&metrics, "match", "auto", "remap");
        rec.record(iter_event(0));
        rec.record(Event::Counter {
            name: "evaluations".into(),
            value: 7,
        });
        MetricsRecorder::with_backend(&metrics, "match", "auto").record(iter_event(0));
        let snap = metrics.snapshot();
        let remap_key = crate::MetricKey::new(
            "match_solver_iterations_total",
            &[("algo", "match"), ("backend", "auto"), ("op", "remap")],
        );
        let solve_key = crate::MetricKey::new(
            "match_solver_iterations_total",
            &[("algo", "match"), ("backend", "auto")],
        );
        assert_eq!(snap.counters[&remap_key], 1);
        assert_eq!(snap.counters[&solve_key], 1);
        let named_key = crate::MetricKey::new(
            "match_solver_evaluations_total",
            &[("algo", "match"), ("backend", "auto"), ("op", "remap")],
        );
        assert_eq!(snap.counters[&named_key], 7);
    }
}
