//! `match-metrics` — live service metrics for the mapping stack.
//!
//! PR 1's `match-telemetry` records *per-solve* JSONL traces that are
//! analysed after the fact; this crate is the *runtime* counterpart: a
//! process-wide registry of named counters, gauges and log-bucketed
//! latency histograms that `match-serve` (and anything else) can update
//! from many threads and snapshot at any moment, cheaply enough to sit
//! on a daemon's hot path.
//!
//! ## Design
//!
//! * **Handles, not lookups.** Call sites resolve a metric once
//!   ([`Metrics::counter`], [`Metrics::gauge`], [`Metrics::histogram`])
//!   behind a registry mutex, then update through the returned handle
//!   with plain relaxed atomics — the hot path never takes a lock.
//! * **Sharded counters and histograms.** Each counter and histogram
//!   is split across [`SHARDS`] cache-line-padded cells; a thread picks
//!   its shard once (round-robin thread-local) so concurrent writers
//!   rarely contend on a cache line. Snapshots sum the shards — per
//!   shard the histogram becomes a [`match_telemetry::Histogram`] and
//!   shards fold together with `Histogram::merge`.
//! * **`NullMetrics` costs one branch.** [`Metrics::null`] returns the
//!   disabled handle; every handle it vends is empty and every update
//!   is a single `Option` test. Uninstrumented paths pay that branch
//!   and nothing else — gated in CI by the `BENCH_metrics.json`
//!   overhead bench.
//! * **Prometheus text exposition.** [`Snapshot::to_prometheus`]
//!   renders counters as `counter`, gauges as `gauge` and histograms
//!   as `summary` series with `quantile="0.5|0.9|0.99"` labels — the
//!   format `curl`d off `match-serve`'s `/metrics` side port.
//!
//! ```
//! use match_metrics::Metrics;
//!
//! let metrics = Metrics::new();
//! let jobs = metrics.counter("jobs_total");
//! let latency = metrics.histogram_with("solve_latency_ns", &[("algo", "greedy")]);
//! jobs.inc();
//! latency.record(1_250_000);
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("jobs_total"), 1);
//! assert!(snap.to_prometheus().contains("solve_latency_ns"));
//!
//! // The NullMetrics handle: same API, no work, one branch per call.
//! let null = Metrics::null();
//! null.counter("jobs_total").inc();
//! assert_eq!(null.snapshot().counter("jobs_total"), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod prometheus;
pub mod registry;

pub use bridge::MetricsRecorder;
pub use registry::{Counter, Gauge, LatencyHistogram, MetricKey, Metrics, Snapshot, SHARDS};
