//! Prometheus text exposition (version 0.0.4) rendering for
//! [`Snapshot`](crate::registry::Snapshot).
//!
//! Counters render as `counter`, gauges as `gauge`, and latency
//! histograms as `summary` series — `name{quantile="0.5"}` /
//! `"0.9"` / `"0.99"` plus `name_sum` and `name_count` — because the
//! registry's log-2 buckets answer quantile queries directly and a
//! summary ships p50/p99 to a dashboard without client-side
//! `histogram_quantile` gymnastics.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::registry::{MetricKey, Snapshot};

/// The quantiles every histogram series exports.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Escape a label value per the exposition format: backslash, double
/// quote and newline must be escaped inside the quotes.
fn push_label_value(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Render `name{a="x",b="y",extra}` with an optional extra label pair
/// appended (used for `quantile="..."`).
fn push_series(out: &mut String, key: &MetricKey, suffix: &str, extra: Option<(&str, &str)>) {
    out.push_str(&key.name);
    out.push_str(suffix);
    if key.labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in &key.labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        push_label_value(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        push_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

/// Emit a `# TYPE` header once per metric name.
fn push_type(out: &mut String, seen: &mut BTreeSet<String>, name: &str, kind: &str) {
    if seen.insert(name.to_string()) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }
}

impl Snapshot {
    /// Render every series in Prometheus text exposition format.
    ///
    /// Series appear in deterministic (sorted) order; each metric name
    /// gets one `# TYPE` line. Histograms render as summaries with
    /// p50/p90/p99 `quantile` labels plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen = BTreeSet::new();
        for (key, value) in &self.counters {
            push_type(&mut out, &mut seen, &key.name, "counter");
            push_series(&mut out, key, "", None);
            let _ = writeln!(out, " {value}");
        }
        for (key, value) in &self.gauges {
            push_type(&mut out, &mut seen, &key.name, "gauge");
            push_series(&mut out, key, "", None);
            let _ = writeln!(out, " {value}");
        }
        for (key, hist) in &self.histograms {
            push_type(&mut out, &mut seen, &key.name, "summary");
            for (q, label) in QUANTILES {
                push_series(&mut out, key, "", Some(("quantile", label)));
                let _ = writeln!(out, " {}", hist.quantile(q));
            }
            push_series(&mut out, key, "_sum", None);
            let _ = writeln!(out, " {}", hist.sum());
            push_series(&mut out, key, "_count", None);
            let _ = writeln!(out, " {}", hist.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Metrics;

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let m = Metrics::new();
        m.counter("jobs_total").add(7);
        m.counter_with("requests_total", &[("op", "solve")]).add(3);
        m.gauge("queue_depth").set(2);
        let h = m.histogram_with("solve_latency_ns", &[("algo", "ce")]);
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE jobs_total counter\n"), "{text}");
        assert!(text.contains("jobs_total 7\n"));
        assert!(text.contains("requests_total{op=\"solve\"} 3\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 2\n"));
        assert!(text.contains("# TYPE solve_latency_ns summary\n"));
        assert!(text.contains("solve_latency_ns{algo=\"ce\",quantile=\"0.5\"}"));
        assert!(text.contains("solve_latency_ns{algo=\"ce\",quantile=\"0.99\"}"));
        assert!(text.contains("solve_latency_ns_sum{algo=\"ce\"} 1500\n"));
        assert!(text.contains("solve_latency_ns_count{algo=\"ce\"} 4\n"));
        // Every line is either a comment or "series value".
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "bad line: {line}"
            );
        }
    }

    #[test]
    fn type_header_emitted_once_per_name() {
        let m = Metrics::new();
        m.counter_with("req", &[("op", "a")]).inc();
        m.counter_with("req", &[("op", "b")]).inc();
        let text = m.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE req counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metrics::new();
        m.counter_with("c", &[("path", "a\"b\\c\nd")]).inc();
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("c{path=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(Metrics::new().snapshot().to_prometheus(), "");
        assert_eq!(Metrics::null().snapshot().to_prometheus(), "");
    }
}
