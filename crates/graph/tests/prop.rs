//! Property-based tests for the graph substrate.

use match_graph::algo::{connected_components, degree_stats, is_connected};
use match_graph::gen::classic::gnp_graph;
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::io::{from_text, to_text};
use match_graph::{Graph, ResourceGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gnp_adjacency_symmetric(n in 1usize..40, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, 1.0, 1.0, &mut rng);
        for u in 0..n {
            for (v, w) in g.neighbors(u) {
                prop_assert_eq!(g.edge_weight(v, u), Some(w));
            }
        }
        // Handshake lemma.
        let total_degree: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(total_degree, 2 * g.edge_count());
    }

    #[test]
    fn components_partition_nodes(n in 1usize..40, p in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, 1.0, 1.0, &mut rng);
        let (comp, count) = connected_components(&g);
        prop_assert_eq!(comp.len(), n);
        prop_assert!(count >= 1 && count <= n);
        // Component ids are dense 0..count.
        for &c in &comp {
            prop_assert!(c < count);
        }
        // Edges never cross components.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
        prop_assert_eq!(is_connected(&g), count <= 1 || count == 1);
    }

    #[test]
    fn paper_family_always_valid(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pair = PaperFamilyConfig::new(n).generate(&mut rng);
        prop_assert_eq!(pair.tig.len(), n);
        prop_assert_eq!(pair.resources.len(), n);
        prop_assert!(is_connected(pair.tig.graph()), "TIG disconnected");
        prop_assert!(pair.resources.is_fully_connected(), "platform not routable");
        // Weight ranges of §5.2.
        for t in 0..n {
            prop_assert!((1.0..=10.0).contains(&pair.tig.computation(t)));
        }
        for s in 0..n {
            prop_assert!((1.0..=5.0).contains(&pair.resources.processing_cost(s)));
        }
    }

    #[test]
    fn link_costs_satisfy_triangle_inequality(n in 2usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let platform = PaperFamilyConfig::new(n).generate_platform(&mut rng);
        for a in 0..n {
            prop_assert_eq!(platform.link_cost(a, a), 0.0);
            for b in 0..n {
                prop_assert_eq!(platform.link_cost(a, b), platform.link_cost(b, a));
                for c in 0..n {
                    prop_assert!(
                        platform.link_cost(a, c)
                            <= platform.link_cost(a, b) + platform.link_cost(b, c) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn text_roundtrip_arbitrary_graphs(n in 0usize..25, p in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, 2.5, 7.25, &mut rng);
        let parsed = from_text(&to_text(&g)).expect("own output parses");
        prop_assert_eq!(parsed, g);
    }

    #[test]
    fn density_in_unit_interval(n in 1usize..30, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnp_graph(n, p, 1.0, 1.0, &mut rng);
        if let Some(s) = degree_stats(&g) {
            prop_assert!((0.0..=1.0).contains(&s.density));
            prop_assert!(s.min <= s.max);
            prop_assert!(s.mean <= s.max as f64 + 1e-12);
        }
    }

    #[test]
    fn topology_link_costs_symmetric(n in 2usize..30, kind_ix in 0usize..4, seed in any::<u64>()) {
        use match_graph::gen::topology::{TopologyConfig, TopologyKind};
        let kind = TopologyKind::ALL[kind_ix];
        let mut rng = StdRng::seed_from_u64(seed);
        let p = TopologyConfig::new(kind, n).generate_platform(&mut rng);
        for a in 0..n {
            prop_assert_eq!(p.link_cost(a, a).to_bits(), 0.0f64.to_bits());
            for b in 0..n {
                prop_assert_eq!(
                    p.link_cost(a, b).to_bits(),
                    p.link_cost(b, a).to_bits(),
                    "c_(s,b) != c_(b,s) on {} ({}, {})", kind.name(), a, b
                );
            }
        }
    }

    #[test]
    fn grid_torus_triangle_inequality(n in 2usize..30, torus in any::<bool>(), seed in any::<u64>()) {
        use match_graph::gen::topology::{TopologyConfig, TopologyKind};
        let kind = if torus { TopologyKind::Torus } else { TopologyKind::Grid };
        let mut rng = StdRng::seed_from_u64(seed);
        let p = TopologyConfig::new(kind, n).generate_platform(&mut rng);
        // Uniform per-hop weights make every cost an exact integer
        // multiple, so the triangle inequality holds without tolerance.
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(
                        p.link_cost(a, c) <= p.link_cost(a, b) + p.link_cost(b, c),
                        "triangle violated on {} ({}, {}, {})", kind.name(), a, b, c
                    );
                }
            }
        }
    }

    #[test]
    fn topology_cost_is_monotone_in_hop_count(n in 2usize..30, kind_ix in 0usize..4, seed in any::<u64>()) {
        use match_graph::gen::topology::{hop_distance, TopologyConfig, TopologyKind};
        let kind = TopologyKind::ALL[kind_ix];
        let cfg = TopologyConfig::new(kind, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = cfg.generate_platform(&mut rng);
        // More hops never costs less, and equal hops cost exactly the
        // same — c_{s,b} is a monotone function of hop distance.
        let mut pairs: Vec<(usize, u64)> = Vec::new();
        for a in 0..n {
            for b in 0..n {
                pairs.push((hop_distance(kind, n, a, b), p.link_cost(a, b).to_bits()));
            }
        }
        pairs.sort();
        for w in pairs.windows(2) {
            let ((h1, c1), (h2, c2)) = (w[0], w[1]);
            if h1 == h2 {
                prop_assert_eq!(c1, c2, "equal hops, different cost on {}", kind.name());
            } else {
                prop_assert!(
                    f64::from_bits(c1) < f64::from_bits(c2),
                    "cost not strictly increasing in hops on {}", kind.name()
                );
            }
        }
    }

    #[test]
    fn torus_wraparound_distance_correct(n in 2usize..40, seed in any::<u64>()) {
        use match_graph::gen::topology::{hop_distance, TopologyConfig, TopologyKind};
        let (rows, cols) = TopologyConfig::dims(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = TopologyConfig::new(TopologyKind::Torus, n).generate_platform(&mut rng);
        let per_hop = p
            .graph()
            .edges()
            .map(|(_, _, w)| w)
            .fold(f64::INFINITY, f64::min);
        for a in 0..n {
            for b in 0..n {
                let (ra, ca) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                let dr = ra.abs_diff(rb);
                let dc = ca.abs_diff(cb);
                let wrap = dr.min(rows - dr) + dc.min(cols - dc);
                prop_assert_eq!(hop_distance(TopologyKind::Torus, n, a, b), wrap);
                // The routed platform realises exactly the wrap metric:
                // never more than wrap hops, never fewer than any path.
                if n > 1 {
                    prop_assert_eq!(
                        p.link_cost(a, b).to_bits(),
                        (per_hop * wrap as f64).to_bits(),
                        "torus cost != per_hop * wrap distance ({}, {})", a, b
                    );
                }
            }
        }
    }

    #[test]
    fn overset_tig_weights_positive(blocks in 1usize..25, seed in any::<u64>()) {
        use match_graph::gen::overset::OversetConfig;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = OversetConfig::new(blocks).generate_domain(&mut rng);
        prop_assert_eq!(d.tig.len(), blocks);
        for t in 0..blocks {
            prop_assert!(d.tig.computation(t) > 0.0);
        }
        for (_, _, w) in d.tig.all_interactions() {
            prop_assert!(w > 0.0);
        }
    }
}

#[test]
fn resource_graph_rejects_invalid_then_accepts_valid() {
    let mut g = Graph::from_node_weights(vec![1.0, 2.0]).unwrap();
    g.add_edge(0, 1, 3.0).unwrap();
    assert!(ResourceGraph::new(g).is_ok());
}
