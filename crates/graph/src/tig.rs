//! Task Interaction Graphs (TIGs).
//!
//! §2: each vertex is one overset grid with computational weight `W^t`
//! ("the number of grid points it contains"); each edge `(v_i, v_j)`
//! carries a communication weight `C^{i,j}` ("the number of grid points
//! that overlap"). Mapping cost (Eq. 1) multiplies these by the resource
//! graph's per-unit costs.

use crate::graph::{Graph, GraphError};
use serde::{Deserialize, Serialize};

/// A task interaction graph: computation on nodes, communication volume
/// on edges. Wraps [`Graph`] with TIG-specific accessors and validation
/// (strictly positive computation weights — a task with zero work is not
/// a task).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    graph: Graph,
}

impl TaskGraph {
    /// Wrap a graph as a TIG. Every node weight must be strictly
    /// positive. Edge weights may be zero: a zero-volume interaction
    /// contributes nothing to Eq. 1, which makes it a useful
    /// cost-preserving instrument for the metamorphic test harness.
    /// (Negative and non-finite weights are already rejected by
    /// [`Graph::add_edge`].)
    pub fn new(graph: Graph) -> Result<Self, GraphError> {
        for u in 0..graph.node_count() {
            let w = graph.node_weight(u);
            if w <= 0.0 {
                return Err(GraphError::InvalidWeight(w));
            }
        }
        Ok(TaskGraph { graph })
    }

    /// Number of tasks `|V_t|`.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Computation weight `W^t` of task `t`.
    pub fn computation(&self, t: usize) -> f64 {
        self.graph.node_weight(t)
    }

    /// Communication volume `C^{t,a}` between tasks `t` and `a`, zero
    /// when they do not interact.
    pub fn comm_volume(&self, t: usize, a: usize) -> f64 {
        self.graph.edge_weight(t, a).unwrap_or(0.0)
    }

    /// Interacting neighbors of task `t` with their volumes.
    pub fn interactions(&self, t: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.graph.neighbors(t)
    }

    /// All interactions as canonical `(t, a, volume)` triples.
    pub fn all_interactions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.graph.edges()
    }

    /// Total computation `Σ_t W^t`.
    pub fn total_computation(&self) -> f64 {
        self.graph.total_node_weight()
    }

    /// Total communication volume `Σ_(t,a) C^{t,a}`.
    pub fn total_comm_volume(&self) -> f64 {
        self.graph.total_edge_weight()
    }

    /// Computation-to-communication ratio, the knob §5.2 varies across
    /// its five synthetic graphs. `INFINITY` for independent tasks.
    pub fn comp_comm_ratio(&self) -> f64 {
        let comm = self.total_comm_volume();
        if comm == 0.0 {
            f64::INFINITY
        } else {
            self.total_computation() / comm
        }
    }

    /// Access the underlying graph (read-only).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> TaskGraph {
        let mut g = Graph::from_node_weights(vec![2.0, 4.0, 6.0]).unwrap();
        g.add_edge(0, 1, 50.0).unwrap();
        g.add_edge(1, 2, 100.0).unwrap();
        TaskGraph::new(g).unwrap()
    }

    #[test]
    fn accessors() {
        let t = path3();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.computation(1), 4.0);
        assert_eq!(t.comm_volume(0, 1), 50.0);
        assert_eq!(t.comm_volume(0, 2), 0.0);
        assert_eq!(t.total_computation(), 12.0);
        assert_eq!(t.total_comm_volume(), 150.0);
        assert_eq!(t.interactions(1).count(), 2);
    }

    #[test]
    fn ratio() {
        let t = path3();
        assert!((t.comp_comm_ratio() - 12.0 / 150.0).abs() < 1e-12);
        let lone = TaskGraph::new(Graph::from_node_weights(vec![1.0]).unwrap()).unwrap();
        assert_eq!(lone.comp_comm_ratio(), f64::INFINITY);
    }

    #[test]
    fn rejects_zero_computation() {
        let g = Graph::from_node_weights(vec![0.0]).unwrap();
        assert!(TaskGraph::new(g).is_err());
    }

    #[test]
    fn accepts_zero_volume_edge() {
        // A zero-volume interaction is inert in Eq. 1; the verification
        // harness inserts such edges as a cost-preserving transform.
        let mut g = Graph::from_node_weights(vec![1.0, 1.0]).unwrap();
        g.add_edge(0, 1, 0.0).unwrap();
        let t = TaskGraph::new(g).unwrap();
        assert_eq!(t.comm_volume(0, 1), 0.0);
        assert_eq!(t.total_comm_volume(), 0.0);
    }

    #[test]
    fn empty_tig_is_valid() {
        let t = TaskGraph::new(Graph::new()).unwrap();
        assert!(t.is_empty());
    }
}
