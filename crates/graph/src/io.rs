//! Graph and instance I/O.
//!
//! Two formats:
//!
//! * **DOT** export for eyeballing generated instances with Graphviz
//!   (node labels carry weights; edge labels carry volumes/costs).
//! * A plain-text **instance format** so experiment inputs can be saved
//!   and replayed:
//!
//!   ```text
//!   # matchkit instance v1
//!   graph <n>
//!   node <index> <weight>
//!   edge <u> <v> <weight>
//!   ```

use crate::graph::{Graph, GraphError};
use std::fmt::Write as _;

/// Render `g` in Graphviz DOT syntax with the given graph name.
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "graph {name} {{");
    for u in 0..g.node_count() {
        let _ = writeln!(s, "  n{u} [label=\"{u} ({:.6})\"];", g.node_weight(u));
    }
    for (u, v, w) in g.edges() {
        let _ = writeln!(s, "  n{u} -- n{v} [label=\"{w:.6}\"];");
    }
    s.push_str("}\n");
    s
}

/// Serialise `g` in the plain-text instance format.
pub fn to_text(g: &Graph) -> String {
    let mut s = String::from("# matchkit instance v1\n");
    let _ = writeln!(s, "graph {}", g.node_count());
    for u in 0..g.node_count() {
        let _ = writeln!(s, "node {u} {:.17}", g.node_weight(u));
    }
    for (u, v, w) in g.edges() {
        let _ = writeln!(s, "edge {u} {v} {w:.17}");
    }
    s
}

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line did not match any directive.
    BadLine(usize, String),
    /// A numeric field failed to parse.
    BadNumber(usize),
    /// A `node`/`edge` line appeared before the `graph` header.
    MissingHeader,
    /// A node index was out of range or repeated.
    BadNode(usize),
    /// The graph construction itself failed.
    Graph(GraphError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine(n, l) => write!(f, "line {n}: unrecognised: {l:?}"),
            ParseError::BadNumber(n) => write!(f, "line {n}: malformed number"),
            ParseError::MissingHeader => write!(f, "missing 'graph <n>' header"),
            ParseError::BadNode(n) => write!(f, "line {n}: bad node index"),
            ParseError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse the plain-text instance format produced by [`to_text`].
///
/// Node weights default to `1.0` when a `node` line is omitted; `edge`
/// lines must reference declared indices.
pub fn from_text(input: &str) -> Result<Graph, ParseError> {
    let mut g: Option<Graph> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("graph") => {
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::BadNumber(lineno + 1))?;
                g = Some(Graph::with_uniform_nodes(n, 1.0));
            }
            Some("node") => {
                let g = g.as_mut().ok_or(ParseError::MissingHeader)?;
                let u: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::BadNumber(lineno + 1))?;
                let w: f64 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::BadNumber(lineno + 1))?;
                if u >= g.node_count() {
                    return Err(ParseError::BadNode(lineno + 1));
                }
                g.set_node_weight(u, w).map_err(ParseError::Graph)?;
            }
            Some("edge") => {
                let g = g.as_mut().ok_or(ParseError::MissingHeader)?;
                let u: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::BadNumber(lineno + 1))?;
                let v: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::BadNumber(lineno + 1))?;
                let w: f64 = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseError::BadNumber(lineno + 1))?;
                g.add_edge(u, v, w).map_err(ParseError::Graph)?;
            }
            _ => return Err(ParseError::BadLine(lineno + 1, line.to_string())),
        }
    }
    g.ok_or(ParseError::MissingHeader)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::from_node_weights(vec![1.5, 2.0, 3.25]).unwrap();
        g.add_edge(0, 1, 50.0).unwrap();
        g.add_edge(1, 2, 62.5).unwrap();
        g
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let text = to_text(&g);
        let h = from_text(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn text_roundtrip_empty_and_edgeless() {
        let g = Graph::new();
        assert_eq!(from_text(&to_text(&g)).unwrap(), g);
        let g = Graph::with_uniform_nodes(4, 2.0);
        assert_eq!(from_text(&to_text(&g)).unwrap(), g);
    }

    #[test]
    fn dot_contains_all_elements() {
        let dot = to_dot(&sample(), "tig");
        assert!(dot.starts_with("graph tig {"));
        assert!(dot.contains("n0 [label=\"0 (1.500000)\"]"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("n1 -- n2"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            from_text("graph 2\nblargh 1 2"),
            Err(ParseError::BadLine(2, "blargh 1 2".into()))
        );
        assert_eq!(from_text("node 0 1.0"), Err(ParseError::MissingHeader));
        assert_eq!(from_text("graph two"), Err(ParseError::BadNumber(1)));
        assert_eq!(
            from_text("graph 1\nnode 5 1.0"),
            Err(ParseError::BadNode(2))
        );
        assert_eq!(from_text(""), Err(ParseError::MissingHeader));
    }

    #[test]
    fn parse_propagates_graph_errors() {
        let r = from_text("graph 2\nedge 0 0 1.0");
        assert!(matches!(r, Err(ParseError::Graph(GraphError::SelfLoop(0)))));
        let r = from_text("graph 2\nedge 0 1 1.0\nedge 1 0 2.0");
        assert!(matches!(
            r,
            Err(ParseError::Graph(GraphError::DuplicateEdge(1, 0)))
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = from_text("# hello\n\ngraph 2\n# mid\nnode 0 3.0\nedge 0 1 4.0\n").unwrap();
        assert_eq!(g.node_weight(0), 3.0);
        assert_eq!(g.node_weight(1), 1.0); // defaulted
        assert_eq!(g.edge_weight(0, 1), Some(4.0));
    }
}
