//! Task-interaction and resource graphs for the MaTCH reproduction.
//!
//! The paper's §2 models a data-parallel application (overset-grid CFD)
//! as an undirected **Task Interaction Graph** `G_t = (V_t, E_t)` whose
//! node weights are computation amounts (grid points) and whose edge
//! weights are communication volumes (overlapping grid points), and the
//! platform as an undirected **resource graph** `G_r = (V_r, E_r)` whose
//! node weights are processing costs per unit of computation and whose
//! edge weights are communication costs per unit between resources.
//!
//! * [`graph`] — the shared weighted-undirected-graph container.
//! * [`tig`] — [`TaskGraph`]: TIG semantics and validation.
//! * [`resource`] — [`ResourceGraph`]: link-cost closure (all-pairs
//!   effective communication costs via Dijkstra when the platform graph
//!   is not complete).
//! * [`gen`] — synthetic workload generators, including the paper's §5.2
//!   family (weight ranges 1–10 / 50–100 for the TIG, 1–5 / 10–20 for
//!   the platform; mixed-density edges) and an overset-grid CFD
//!   abstraction (Figure 1).
//! * [`algo`] — BFS, connected components, degree statistics.
//! * [`io`] — DOT export and a plain-text instance format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod gen;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod resource;
pub mod tig;

pub use graph::{Graph, GraphError};
pub use resource::ResourceGraph;
pub use tig::TaskGraph;

/// A matched pair of workload and platform, the unit every mapper
/// consumes. The paper always generates these together with `|V_t| =
/// |V_r|`, but the pair itself does not require equal sizes (the
/// many-to-one generalisation relaxes it).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct InstancePair {
    /// The application: tasks and their interactions.
    pub tig: TaskGraph,
    /// The platform: resources and their links.
    pub resources: ResourceGraph,
}

impl InstancePair {
    /// True when tasks and resources are equinumerous, the regime of all
    /// experiments in the paper (bijective mappings).
    pub fn is_square(&self) -> bool {
        self.tig.len() == self.resources.len()
    }
}
