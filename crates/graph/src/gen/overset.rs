//! Overset-grid CFD workload abstraction (paper Figure 1).
//!
//! §2 motivates the TIG with overset-grid CFD: the domain around an
//! irregular 3-D body is covered by regularly shaped grids that overlap
//! in space; each grid is a TIG node weighted by its grid-point count,
//! and each overlap is an edge weighted by the number of overlapping
//! points.
//!
//! This module builds exactly that geometry synthetically: axis-aligned
//! boxes ("grids") are scattered along a random curve through the unit
//! cube (so consecutive grids overlap, as they must to exchange boundary
//! data), grid-point counts are volumes times a resolution, and overlap
//! volumes produce the communication weights. The result is a *geometric*
//! TIG whose structure — local, low-diameter, weight-correlated — matches
//! the CFD workloads the paper targets, unlike the uniform random family.

use crate::graph::Graph;
use crate::resource::ResourceGraph;
use crate::tig::TaskGraph;
use crate::InstancePair;
use rand::Rng;

use super::paper::PaperFamilyConfig;

/// One axis-aligned grid block in the unit cube.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Block {
    /// Minimum corner `(x, y, z)`.
    pub min: [f64; 3],
    /// Maximum corner `(x, y, z)`.
    pub max: [f64; 3],
}

impl Block {
    /// Volume of the block.
    pub fn volume(&self) -> f64 {
        (0..3)
            .map(|d| (self.max[d] - self.min[d]).max(0.0))
            .product()
    }

    /// Volume of the intersection with `other` (zero when disjoint).
    pub fn overlap_volume(&self, other: &Block) -> f64 {
        (0..3)
            .map(|d| (self.max[d].min(other.max[d]) - self.min[d].max(other.min[d])).max(0.0))
            .product()
    }
}

/// A generated overset domain: the blocks plus the derived TIG.
#[derive(Debug, Clone)]
pub struct OversetDomain {
    /// The geometric blocks, indexed like the TIG's tasks.
    pub blocks: Vec<Block>,
    /// The derived task interaction graph.
    pub tig: TaskGraph,
}

/// Configuration for the overset generator.
#[derive(Debug, Clone, PartialEq)]
pub struct OversetConfig {
    /// Number of grid blocks (TIG nodes).
    pub blocks: usize,
    /// Grid points per unit volume (node weights = `volume × resolution`).
    pub resolution: f64,
    /// Overlap points per unit overlap volume (edge weights).
    pub overlap_resolution: f64,
    /// Block edge lengths are drawn from this range.
    pub block_size: (f64, f64),
    /// Step length along the random walk between consecutive block
    /// centres, as a fraction of the previous block size. Below ~1.0
    /// consecutive blocks are guaranteed to overlap.
    pub step_fraction: f64,
}

impl OversetConfig {
    /// Sensible defaults for `blocks` grids.
    pub fn new(blocks: usize) -> Self {
        OversetConfig {
            blocks,
            resolution: 1000.0,
            overlap_resolution: 4000.0,
            block_size: (0.15, 0.35),
            step_fraction: 0.6,
        }
    }

    /// Generate the geometric domain and its TIG.
    pub fn generate_domain<R: Rng + ?Sized>(&self, rng: &mut R) -> OversetDomain {
        let mut blocks: Vec<Block> = Vec::with_capacity(self.blocks);
        let mut centre = [0.5f64, 0.5, 0.5];
        let mut prev_size = (self.block_size.0 + self.block_size.1) / 2.0;
        for _ in 0..self.blocks {
            let size = [
                rng.random_range(self.block_size.0..=self.block_size.1),
                rng.random_range(self.block_size.0..=self.block_size.1),
                rng.random_range(self.block_size.0..=self.block_size.1),
            ];
            let mut min = [0.0; 3];
            let mut max = [0.0; 3];
            for d in 0..3 {
                // Keep blocks inside the unit cube.
                let half = size[d] / 2.0;
                let c = centre[d].clamp(half, 1.0 - half);
                min[d] = c - half;
                max[d] = c + half;
            }
            blocks.push(Block { min, max });

            // Random step for the next centre; short steps keep the chain
            // of grids overlapping like a body-fitted grid system.
            let step = prev_size * self.step_fraction;
            for c in centre.iter_mut() {
                *c += rng.random_range(-step..=step);
                *c = c.clamp(0.0, 1.0);
            }
            prev_size = (size[0] + size[1] + size[2]) / 3.0;
        }

        // Node weights: grid points ∝ volume. Edge weights: overlap points.
        let weights: Vec<f64> = blocks
            .iter()
            .map(|b| (b.volume() * self.resolution).max(1.0).round())
            .collect();
        let mut g = Graph::from_node_weights(weights).expect("positive weights");
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                let ov = blocks[i].overlap_volume(&blocks[j]);
                if ov > 0.0 {
                    let w = (ov * self.overlap_resolution).max(1.0).round();
                    g.add_edge(i, j, w).expect("fresh edge");
                }
            }
        }
        OversetDomain {
            blocks,
            tig: TaskGraph::new(g).expect("valid TIG"),
        }
    }

    /// Generate a full instance pair: overset TIG plus a paper-family
    /// platform of equal size.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> InstancePair {
        let domain = self.generate_domain(rng);
        let platform: ResourceGraph = PaperFamilyConfig::new(self.blocks).generate_platform(rng);
        InstancePair {
            tig: domain.tig,
            resources: platform,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn block_volume_and_overlap() {
        let a = Block {
            min: [0.0; 3],
            max: [1.0; 3],
        };
        let b = Block {
            min: [0.5, 0.5, 0.5],
            max: [1.5, 1.5, 1.5],
        };
        assert!((a.volume() - 1.0).abs() < 1e-12);
        assert!((a.overlap_volume(&b) - 0.125).abs() < 1e-12);
        let c = Block {
            min: [2.0; 3],
            max: [3.0; 3],
        };
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Block {
            min: [0.1, 0.0, 0.2],
            max: [0.6, 0.5, 0.9],
        };
        let b = Block {
            min: [0.3, 0.2, 0.0],
            max: [0.8, 0.9, 0.5],
        };
        assert!((a.overlap_volume(&b) - b.overlap_volume(&a)).abs() < 1e-15);
    }

    #[test]
    fn domain_produces_requested_blocks() {
        let mut rng = StdRng::seed_from_u64(31);
        let d = OversetConfig::new(12).generate_domain(&mut rng);
        assert_eq!(d.blocks.len(), 12);
        assert_eq!(d.tig.len(), 12);
    }

    #[test]
    fn consecutive_blocks_mostly_overlap() {
        // The random-walk construction should make the TIG well-connected:
        // expect a healthy number of edges (at least ~n/2 on average).
        let mut rng = StdRng::seed_from_u64(32);
        let d = OversetConfig::new(20).generate_domain(&mut rng);
        assert!(
            d.tig.all_interactions().count() >= 10,
            "only {} overlaps",
            d.tig.all_interactions().count()
        );
    }

    #[test]
    fn weights_positive_and_scaled() {
        let mut rng = StdRng::seed_from_u64(33);
        let d = OversetConfig::new(15).generate_domain(&mut rng);
        for t in 0..15 {
            assert!(d.tig.computation(t) >= 1.0);
        }
        for (_, _, w) in d.tig.all_interactions() {
            assert!(w >= 1.0);
        }
    }

    #[test]
    fn blocks_stay_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(34);
        let d = OversetConfig::new(30).generate_domain(&mut rng);
        for b in &d.blocks {
            for dim in 0..3 {
                assert!(b.min[dim] >= -1e-12 && b.max[dim] <= 1.0 + 1e-12);
                assert!(b.max[dim] > b.min[dim]);
            }
        }
    }

    #[test]
    fn pair_has_equal_sizes() {
        let mut rng = StdRng::seed_from_u64(35);
        let pair = OversetConfig::new(9).generate(&mut rng);
        assert!(pair.is_square());
    }
}
