//! Synthetic instance generators.
//!
//! The paper's experiments run on five synthetic TIG/platform pairs per
//! size (§5.2) with fully specified weight ranges but unpublished
//! generation code; [`paper`] re-creates that family faithfully.
//! [`overset`] builds TIGs from a geometric overset-grid abstraction
//! (Figure 1's CFD motivation), and [`classic`] provides standard
//! topologies for tests and ablations.

pub mod classic;
pub mod large;
pub mod overset;
pub mod paper;
pub mod topology;

pub use classic::{complete_graph, gnp_graph, grid2d_graph, ring_graph, star_graph};
pub use large::LargeFamilyConfig;
pub use overset::{OversetConfig, OversetDomain};
pub use paper::PaperFamilyConfig;
pub use topology::{hop_distance, CapacitySpec, TopologyConfig, TopologyKind};

use crate::InstancePair;
use rand::Rng;

/// A configured instance generator producing [`InstancePair`]s.
///
/// This is the front door the harness and examples use; the individual
/// generator modules expose their own finer-grained APIs.
#[derive(Debug, Clone)]
pub enum InstanceGenerator {
    /// The paper's §5.2 synthetic family.
    Paper(PaperFamilyConfig),
    /// Overset-grid CFD abstraction for the TIG; paper-family platform.
    Overset(OversetConfig),
    /// Sparse bounded-degree family for n ≫ paper scale.
    Large(LargeFamilyConfig),
    /// Paper-family TIG on a hop-distance-routed interconnect
    /// (grid / torus / fat-tree / dragonfly).
    Topology(TopologyConfig),
}

impl InstanceGenerator {
    /// The paper's family at size `n` (tasks = resources = `n`), with
    /// the §5.2 default weight ranges.
    pub fn paper_family(n: usize) -> Self {
        InstanceGenerator::Paper(PaperFamilyConfig::new(n))
    }

    /// An overset-grid CFD workload of roughly `blocks` grids, mapped
    /// onto a paper-family platform of equal size.
    pub fn overset_cfd(blocks: usize) -> Self {
        InstanceGenerator::Overset(OversetConfig::new(blocks))
    }

    /// The sparse large-n family at size `n` (paper weight ranges,
    /// bounded degree, O(n) generation).
    pub fn large_family(n: usize) -> Self {
        InstanceGenerator::Large(LargeFamilyConfig::new(n))
    }

    /// A topology-aware family: paper-family TIG, platform link costs
    /// proportional to `kind`'s hop distance.
    pub fn topology_family(kind: TopologyKind, n: usize) -> Self {
        InstanceGenerator::Topology(TopologyConfig::new(kind, n))
    }

    /// Generate one instance pair.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> InstancePair {
        match self {
            InstanceGenerator::Paper(cfg) => cfg.generate(rng),
            InstanceGenerator::Overset(cfg) => cfg.generate(rng),
            InstanceGenerator::Large(cfg) => cfg.generate(rng),
            InstanceGenerator::Topology(cfg) => cfg.generate(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn front_door_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        let pair = InstanceGenerator::paper_family(10).generate(&mut rng);
        assert_eq!(pair.tig.len(), 10);
        assert_eq!(pair.resources.len(), 10);
        assert!(pair.is_square());
    }

    #[test]
    fn front_door_overset() {
        let mut rng = StdRng::seed_from_u64(2);
        let pair = InstanceGenerator::overset_cfd(8).generate(&mut rng);
        assert_eq!(pair.tig.len(), 8);
        assert_eq!(pair.resources.len(), 8);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = InstanceGenerator::paper_family(12).generate(&mut StdRng::seed_from_u64(7));
        let b = InstanceGenerator::paper_family(12).generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a.tig, b.tig);
        assert_eq!(a.resources, b.resources);
    }
}
