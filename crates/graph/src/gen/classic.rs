//! Classic graph topologies for tests, ablations and examples.
//!
//! These build plain [`Graph`]s with caller-chosen uniform weights; wrap
//! them in [`crate::TaskGraph`] / [`crate::ResourceGraph`] as needed.

use crate::graph::Graph;
use rand::Rng;

/// Ring of `n` nodes (node weight `nw`, edge weight `ew`).
pub fn ring_graph(n: usize, nw: f64, ew: f64) -> Graph {
    let mut g = Graph::with_uniform_nodes(n, nw);
    if n >= 2 {
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, ew).expect("fresh edge");
        }
        if n >= 3 {
            g.add_edge(n - 1, 0, ew).expect("fresh edge");
        }
    }
    g
}

/// Star with centre `0` and `n - 1` leaves.
pub fn star_graph(n: usize, nw: f64, ew: f64) -> Graph {
    let mut g = Graph::with_uniform_nodes(n, nw);
    for i in 1..n {
        g.add_edge(0, i, ew).expect("fresh edge");
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete_graph(n: usize, nw: f64, ew: f64) -> Graph {
    let mut g = Graph::with_uniform_nodes(n, nw);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, ew).expect("fresh edge");
        }
    }
    g
}

/// 2-D grid (`rows × cols`) with 4-neighbour connectivity — the stencil
/// shape of structured CFD meshes.
pub fn grid2d_graph(rows: usize, cols: usize, nw: f64, ew: f64) -> Graph {
    let mut g = Graph::with_uniform_nodes(rows * cols, nw);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1), ew)
                    .expect("fresh edge");
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c), ew)
                    .expect("fresh edge");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` with uniform weights.
pub fn gnp_graph<R: Rng + ?Sized>(n: usize, p: f64, nw: f64, ew: f64, rng: &mut R) -> Graph {
    let mut g = Graph::with_uniform_nodes(n, nw);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                g.add_edge(u, v, ew).expect("fresh edge");
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` existing nodes with probability proportional to their degree,
/// producing the hub-dominated degree distributions of scale-free
/// workloads (master/worker pipelines, shared-boundary hub grids).
pub fn barabasi_albert_graph<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    nw: f64,
    ew: f64,
    rng: &mut R,
) -> Graph {
    let mut g = Graph::with_uniform_nodes(n, nw);
    if n == 0 {
        return g;
    }
    let m = m.max(1).min(n.saturating_sub(1).max(1));
    // Seed clique of m+1 nodes.
    let seed = (m + 1).min(n);
    for u in 0..seed {
        for v in (u + 1)..seed {
            g.add_edge(u, v, ew).expect("fresh edge");
        }
    }
    // Repeated-endpoint list implements degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::new();
    for (u, v, _) in g.edges().collect::<Vec<_>>() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for v in seed..n {
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let pick = if endpoints.is_empty() {
                rng.random_range(0..v)
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            if pick != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &u in &chosen {
            g.add_edge(u, v, ew).expect("fresh edge");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{degree_stats, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_shape() {
        let g = ring_graph(5, 1.0, 2.0);
        assert_eq!(g.edge_count(), 5);
        for u in 0..5 {
            assert_eq!(g.degree(u), 2);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn tiny_rings() {
        assert_eq!(ring_graph(0, 1.0, 1.0).edge_count(), 0);
        assert_eq!(ring_graph(1, 1.0, 1.0).edge_count(), 0);
        // Two nodes: a single edge, not a doubled one.
        assert_eq!(ring_graph(2, 1.0, 1.0).edge_count(), 1);
    }

    #[test]
    fn star_shape() {
        let g = star_graph(6, 1.0, 3.0);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.degree(0), 5);
        for u in 1..6 {
            assert_eq!(g.degree(u), 1);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete_graph(7, 1.0, 1.0);
        assert_eq!(g.edge_count(), 21);
        assert_eq!(degree_stats(&g).unwrap().density, 1.0);
    }

    #[test]
    fn grid_shape() {
        let g = grid2d_graph(3, 4, 1.0, 1.0);
        assert_eq!(g.node_count(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
        assert_eq!(g.edge_count(), 17);
        assert!(is_connected(&g));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(41);
        assert_eq!(gnp_graph(10, 0.0, 1.0, 1.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp_graph(10, 1.0, 1.0, 1.0, &mut rng).edge_count(), 45);
    }

    #[test]
    fn barabasi_albert_shape() {
        let mut rng = StdRng::seed_from_u64(43);
        let g = barabasi_albert_graph(50, 2, 1.0, 1.0, &mut rng);
        assert_eq!(g.node_count(), 50);
        assert!(is_connected(&g), "BA graphs are connected by construction");
        // Edge count: seed clique C(3,2)=3 plus ~2 per remaining node.
        let expected = 3 + 2 * (50 - 3);
        assert!(
            (g.edge_count() as i64 - expected as i64).abs() <= 10,
            "edges {}",
            g.edge_count()
        );
        // Scale-free signature: the max degree dwarfs the median.
        let s = degree_stats(&g).unwrap();
        assert!(s.max >= 3 * s.min.max(1), "max {} min {}", s.max, s.min);
    }

    #[test]
    fn barabasi_albert_tiny_cases() {
        let mut rng = StdRng::seed_from_u64(44);
        assert_eq!(
            barabasi_albert_graph(0, 2, 1.0, 1.0, &mut rng).node_count(),
            0
        );
        let g = barabasi_albert_graph(1, 2, 1.0, 1.0, &mut rng);
        assert_eq!((g.node_count(), g.edge_count()), (1, 0));
        let g = barabasi_albert_graph(2, 5, 1.0, 1.0, &mut rng);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn gnp_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = gnp_graph(60, 0.3, 1.0, 1.0, &mut rng);
        let density = degree_stats(&g).unwrap().density;
        assert!((density - 0.3).abs() < 0.08, "density {density}");
    }
}
