//! Topology-aware platform generators: grid, torus, fat-tree, dragonfly.
//!
//! The paper's §5.2 family draws `c_{s,b}` link costs uniformly, but real
//! heterogeneous platforms derive communication cost from interconnect
//! *hop distance* (Glantz et al., *Algorithms for Mapping Parallel
//! Processes onto Grid and Torus Architectures*). Each generator here
//! builds a platform whose routed link cost is an exactly monotone
//! function of hop count:
//!
//! ```text
//!   c_{s,b} = per_hop · hops(s, b)
//! ```
//!
//! where `per_hop` is one uniform integer draw from the paper's 10–20
//! link-weight range and `hops` is the topology's graph distance. The
//! grid and torus are built as sparse nearest-neighbour graphs with
//! uniform link weight (so the shortest-path closure *is* the hop
//! metric); the fat-tree and dragonfly are built as complete metric
//! graphs over their standard hierarchical distances. All arithmetic is
//! integer-valued in `f64`, so `link_cost(s, b) == per_hop · hops(s, b)`
//! holds bit-exactly — the property tests assert equality, not
//! tolerance.
//!
//! Per-resource memory/bandwidth capacities and per-task demands
//! (Wilhelm et al., *Modeling Task Mapping for Data-intensive
//! Applications in Heterogeneous Systems*) ride along as an optional
//! [`CapacitySpec`]; `match-core` turns them into a penalty term on the
//! Eq. 1 objective.

use crate::graph::Graph;
use crate::resource::ResourceGraph;
use crate::tig::TaskGraph;
use crate::InstancePair;
use rand::Rng;

use super::paper::PaperFamilyConfig;

/// Which interconnect topology to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// 2-D mesh: resources on a `rows × cols` grid, nearest-neighbour
    /// links, hop distance = Manhattan distance.
    Grid,
    /// 2-D torus: the grid plus wrap-around links; hop distance =
    /// wrap-around Manhattan distance.
    Torus,
    /// Fat-tree with arity [`TopologyConfig::FAT_TREE_ARITY`]: resources
    /// are leaves; hop distance = `2 · (levels to the lowest common
    /// ancestor)`.
    FatTree,
    /// Dragonfly: resources partitioned into `⌈√n⌉`-sized groups;
    /// 1 hop inside a group, 3 hops (local–global–local) across groups.
    Dragonfly,
}

impl TopologyKind {
    /// The CLI/corpus name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Grid => "grid",
            TopologyKind::Torus => "torus",
            TopologyKind::FatTree => "fattree",
            TopologyKind::Dragonfly => "dragonfly",
        }
    }

    /// Parse a CLI/corpus name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "grid" => Some(TopologyKind::Grid),
            "torus" => Some(TopologyKind::Torus),
            "fattree" => Some(TopologyKind::FatTree),
            "dragonfly" => Some(TopologyKind::Dragonfly),
            _ => None,
        }
    }

    /// All four kinds, in canonical order.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::Grid,
        TopologyKind::Torus,
        TopologyKind::FatTree,
        TopologyKind::Dragonfly,
    ];
}

/// Configuration for a topology-aware instance: a paper-family TIG
/// mapped onto a hop-distance-routed platform.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// The interconnect shape.
    pub kind: TopologyKind,
    /// Number of tasks and of resources.
    pub n: usize,
    /// Platform node (per-unit processing cost) range, inclusive. Paper: 1–5.
    pub res_node_weights: (u32, u32),
    /// Per-hop link cost range, inclusive; one integer draw per
    /// platform. Paper link range: 10–20.
    pub per_hop_cost: (u32, u32),
    /// Per-task memory demand range for [`TopologyConfig::generate_caps`].
    pub mem_demand: (u32, u32),
    /// Per-task bandwidth demand range for [`TopologyConfig::generate_caps`].
    pub bw_demand: (u32, u32),
}

impl TopologyConfig {
    /// Fat-tree arity (children per switch).
    pub const FAT_TREE_ARITY: usize = 2;

    /// Defaults at size `n`: paper weight ranges, modest capacity demands.
    pub fn new(kind: TopologyKind, n: usize) -> Self {
        TopologyConfig {
            kind,
            n,
            res_node_weights: (1, 5),
            per_hop_cost: (10, 20),
            mem_demand: (1, 8),
            bw_demand: (5, 20),
        }
    }

    /// Grid/torus dimensions for `n` resources: `rows` is the largest
    /// divisor of `n` with `rows ≤ √n` (1 for primes, degrading to a
    /// ring/path), `cols = n / rows`.
    pub fn dims(n: usize) -> (usize, usize) {
        if n == 0 {
            return (0, 0);
        }
        let mut rows = 1;
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                rows = d;
            }
            d += 1;
        }
        (rows, n / rows)
    }

    /// The dragonfly group size for `n` resources: `⌈√n⌉`.
    pub fn dragonfly_group(n: usize) -> usize {
        if n == 0 {
            return 1;
        }
        let mut g = 1;
        while g * g < n {
            g += 1;
        }
        g
    }

    /// The topology's hop distance between resources `a` and `b` — the
    /// pure metric the generated platform's link costs scale. Symmetric,
    /// zero iff `a == b`, and satisfies the triangle inequality.
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        hop_distance(self.kind, self.n, a, b)
    }

    /// Generate one TIG/platform pair: a §5.2 paper-family TIG and a
    /// hop-distance-routed platform.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> InstancePair {
        let tig = self.generate_tig(rng);
        let resources = self.generate_platform(rng);
        InstancePair { tig, resources }
    }

    /// Generate only the TIG (the §5.2 paper family at size `n`).
    pub fn generate_tig<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskGraph {
        PaperFamilyConfig::new(self.n).generate_tig(rng)
    }

    /// Generate only the platform. Node weights are per-resource draws
    /// from [`TopologyConfig::res_node_weights`]; link structure and
    /// weights follow the topology's hop metric scaled by one
    /// `per_hop_cost` draw.
    pub fn generate_platform<R: Rng + ?Sized>(&self, rng: &mut R) -> ResourceGraph {
        let n = self.n;
        let weights: Vec<f64> = (0..n)
            .map(|_| draw(rng, self.res_node_weights) as f64)
            .collect();
        let per_hop = draw(rng, self.per_hop_cost) as f64;
        let mut g = Graph::from_node_weights(weights).expect("positive weights");
        match self.kind {
            TopologyKind::Grid | TopologyKind::Torus => {
                // Sparse nearest-neighbour links of uniform weight: the
                // shortest-path closure then equals per_hop · hops
                // exactly (every intermediate Dijkstra sum is an
                // integer-valued f64).
                let (rows, cols) = Self::dims(n);
                for r in 0..rows {
                    for c in 0..cols {
                        let v = r * cols + c;
                        if c + 1 < cols {
                            g.add_edge(v, v + 1, per_hop).expect("fresh edge");
                        }
                        if r + 1 < rows {
                            g.add_edge(v, v + cols, per_hop).expect("fresh edge");
                        }
                    }
                }
                if self.kind == TopologyKind::Torus {
                    // Wrap links; a dimension of length ≤ 2 already has
                    // its wrap neighbour adjacent.
                    if cols > 2 {
                        for r in 0..rows {
                            g.add_edge(r * cols, r * cols + cols - 1, per_hop)
                                .expect("fresh edge");
                        }
                    }
                    if rows > 2 {
                        for c in 0..cols {
                            g.add_edge(c, (rows - 1) * cols + c, per_hop)
                                .expect("fresh edge");
                        }
                    }
                }
            }
            TopologyKind::FatTree | TopologyKind::Dragonfly => {
                // Complete metric graph: hop counts already satisfy the
                // triangle inequality, so the closure preserves every
                // direct weight.
                for a in 0..n {
                    for b in (a + 1)..n {
                        let hops = hop_distance(self.kind, n, a, b) as f64;
                        g.add_edge(a, b, per_hop * hops).expect("fresh edge");
                    }
                }
            }
        }
        ResourceGraph::new(g).expect("valid platform by construction")
    }

    /// Generate per-task demands and per-resource capacities (memory and
    /// bandwidth, à la Wilhelm et al.). Capacities are drawn so the
    /// aggregate comfortably fits but individual resources can overflow
    /// under a bad mapping — the capacity penalty has teeth without
    /// making the instance infeasible.
    pub fn generate_caps<R: Rng + ?Sized>(&self, rng: &mut R) -> CapacitySpec {
        let n = self.n;
        let mem_demand: Vec<f64> = (0..n).map(|_| draw(rng, self.mem_demand) as f64).collect();
        let bw_demand: Vec<f64> = (0..n).map(|_| draw(rng, self.bw_demand) as f64).collect();
        let mem_capacity = draw_capacities(rng, &mem_demand, n);
        let bw_capacity = draw_capacities(rng, &bw_demand, n);
        CapacitySpec {
            mem_demand,
            mem_capacity,
            bw_demand,
            bw_capacity,
        }
    }
}

/// The pure hop metric of `kind` over `n` resources. Exposed standalone
/// so property tests can cross-check generated link costs against it.
pub fn hop_distance(kind: TopologyKind, n: usize, a: usize, b: usize) -> usize {
    assert!(a < n && b < n, "resource out of range");
    if a == b {
        return 0;
    }
    match kind {
        TopologyKind::Grid => {
            let (_, cols) = TopologyConfig::dims(n);
            let (ra, ca) = (a / cols, a % cols);
            let (rb, cb) = (b / cols, b % cols);
            ra.abs_diff(rb) + ca.abs_diff(cb)
        }
        TopologyKind::Torus => {
            let (rows, cols) = TopologyConfig::dims(n);
            let (ra, ca) = (a / cols, a % cols);
            let (rb, cb) = (b / cols, b % cols);
            let dr = ra.abs_diff(rb);
            let dc = ca.abs_diff(cb);
            dr.min(rows - dr) + dc.min(cols - dc)
        }
        TopologyKind::FatTree => {
            // Leaves of an arity-k tree: climb both until they meet.
            let k = TopologyConfig::FAT_TREE_ARITY;
            let (mut x, mut y) = (a, b);
            let mut levels = 0;
            while x != y {
                x /= k;
                y /= k;
                levels += 1;
            }
            2 * levels
        }
        TopologyKind::Dragonfly => {
            let g = TopologyConfig::dragonfly_group(n);
            if a / g == b / g {
                1
            } else {
                3
            }
        }
    }
}

fn draw<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (u32, u32)) -> u32 {
    rng.random_range(lo..=hi)
}

fn draw_capacities<R: Rng + ?Sized>(rng: &mut R, demand: &[f64], n: usize) -> Vec<f64> {
    let total: f64 = demand.iter().sum();
    let max = demand.iter().fold(0.0f64, |m, &d| m.max(d));
    let lo = (total / n as f64).ceil().max(1.0) as u32;
    let hi = ((2.0 * total / n as f64).ceil() as u32 + max as u32).max(lo + 1);
    (0..n).map(|_| draw(rng, (lo, hi)) as f64).collect()
}

/// Per-task demands and per-resource capacities for the optional
/// capacity term on the Eq. 1 objective (Wilhelm et al.).
///
/// All vectors are strictly positive; demand vectors are per-task,
/// capacity vectors per-resource. Serialized with the same
/// line-oriented text shape as the graph I/O:
///
/// ```text
/// caps <n_tasks> <n_resources>
/// mem_demand <v0> <v1> …
/// mem_capacity <v0> …
/// bw_demand <v0> …
/// bw_capacity <v0> …
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitySpec {
    /// Memory demand per task.
    pub mem_demand: Vec<f64>,
    /// Memory capacity per resource.
    pub mem_capacity: Vec<f64>,
    /// Bandwidth demand per task.
    pub bw_demand: Vec<f64>,
    /// Bandwidth capacity per resource.
    pub bw_capacity: Vec<f64>,
}

impl CapacitySpec {
    /// Serialize to the line-oriented text format.
    pub fn to_text(&self) -> String {
        fn line(name: &str, vs: &[f64]) -> String {
            let mut s = String::from(name);
            for v in vs {
                s.push(' ');
                s.push_str(&format!("{v}"));
            }
            s.push('\n');
            s
        }
        let mut out = format!(
            "caps {} {}\n",
            self.mem_demand.len(),
            self.mem_capacity.len()
        );
        out.push_str(&line("mem_demand", &self.mem_demand));
        out.push_str(&line("mem_capacity", &self.mem_capacity));
        out.push_str(&line("bw_demand", &self.bw_demand));
        out.push_str(&line("bw_capacity", &self.bw_capacity));
        out
    }

    /// Parse the text format produced by [`CapacitySpec::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut tasks = 0usize;
        let mut resources = 0usize;
        let mut fields: [Option<Vec<f64>>; 4] = [None, None, None, None];
        const NAMES: [&str; 4] = ["mem_demand", "mem_capacity", "bw_demand", "bw_capacity"];
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().unwrap();
            if head == "caps" {
                tasks = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {}: bad caps header", lineno + 1))?;
                resources = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {}: bad caps header", lineno + 1))?;
                continue;
            }
            let Some(slot) = NAMES.iter().position(|&n| n == head) else {
                return Err(format!("line {}: unknown record `{head}`", lineno + 1));
            };
            let vs: Result<Vec<f64>, _> = parts.map(|s| s.parse::<f64>()).collect();
            let vs = vs.map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if vs.iter().any(|v| !v.is_finite() || *v <= 0.0) {
                return Err(format!("line {}: values must be positive", lineno + 1));
            }
            fields[slot] = Some(vs);
        }
        let [Some(mem_demand), Some(mem_capacity), Some(bw_demand), Some(bw_capacity)] = fields
        else {
            return Err("missing capacity record".into());
        };
        if mem_demand.len() != tasks
            || bw_demand.len() != tasks
            || mem_capacity.len() != resources
            || bw_capacity.len() != resources
        {
            return Err("capacity vector length mismatch".into());
        }
        Ok(CapacitySpec {
            mem_demand,
            mem_capacity,
            bw_demand,
            bw_capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dims_factor_reasonably() {
        assert_eq!(TopologyConfig::dims(12), (3, 4));
        assert_eq!(TopologyConfig::dims(16), (4, 4));
        assert_eq!(TopologyConfig::dims(7), (1, 7)); // prime → ring/path
        assert_eq!(TopologyConfig::dims(1), (1, 1));
    }

    #[test]
    fn link_cost_is_per_hop_times_hops_exactly() {
        for kind in TopologyKind::ALL {
            let cfg = TopologyConfig::new(kind, 12);
            let mut rng = StdRng::seed_from_u64(11);
            let p = cfg.generate_platform(&mut rng);
            // Recover per_hop from any adjacent (1-hop for grid/torus,
            // minimal-hop otherwise) pair.
            let mut per_hop = f64::INFINITY;
            for a in 0..12 {
                for b in 0..12 {
                    if a != b {
                        let h = cfg.hop_distance(a, b) as f64;
                        per_hop = per_hop.min(p.link_cost(a, b) / h);
                    }
                }
            }
            for a in 0..12 {
                for b in 0..12 {
                    let expected = per_hop * cfg.hop_distance(a, b) as f64;
                    assert_eq!(
                        p.link_cost(a, b).to_bits(),
                        expected.to_bits(),
                        "{} ({a},{b})",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn torus_wraps_shrink_distances() {
        // On a 4×4 torus opposite corners are 2+2 hops by wrapping, not 6.
        assert_eq!(hop_distance(TopologyKind::Torus, 16, 0, 15), 2);
        assert_eq!(hop_distance(TopologyKind::Grid, 16, 0, 15), 6);
    }

    #[test]
    fn fattree_distance_is_even_and_bounded() {
        for a in 0..8 {
            for b in 0..8 {
                let d = hop_distance(TopologyKind::FatTree, 8, a, b);
                if a == b {
                    assert_eq!(d, 0);
                } else {
                    assert!(d.is_multiple_of(2) && d <= 6, "d({a},{b}) = {d}");
                }
            }
        }
        // Siblings under one switch are 2 apart.
        assert_eq!(hop_distance(TopologyKind::FatTree, 8, 0, 1), 2);
        // Opposite halves pay the full climb.
        assert_eq!(hop_distance(TopologyKind::FatTree, 8, 0, 7), 6);
    }

    #[test]
    fn dragonfly_distance_is_one_or_three() {
        let g = TopologyConfig::dragonfly_group(12); // 4
        assert_eq!(g, 4);
        assert_eq!(hop_distance(TopologyKind::Dragonfly, 12, 0, 3), 1);
        assert_eq!(hop_distance(TopologyKind::Dragonfly, 12, 0, 4), 3);
    }

    #[test]
    fn all_topologies_generate_connected_square_pairs() {
        for kind in TopologyKind::ALL {
            let mut rng = StdRng::seed_from_u64(5);
            let pair = TopologyConfig::new(kind, 9).generate(&mut rng);
            assert!(pair.is_square(), "{}", kind.name());
            assert!(is_connected(pair.tig.graph()), "{}", kind.name());
            assert!(pair.resources.is_fully_connected(), "{}", kind.name());
            for s in 0..9 {
                let w = pair.resources.processing_cost(s);
                assert!((1.0..=5.0).contains(&w), "{} node weight {w}", kind.name());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in TopologyKind::ALL {
            let cfg = TopologyConfig::new(kind, 10);
            let a = cfg.generate(&mut StdRng::seed_from_u64(7));
            let b = cfg.generate(&mut StdRng::seed_from_u64(7));
            assert_eq!(a.tig, b.tig, "{}", kind.name());
            assert_eq!(a.resources, b.resources, "{}", kind.name());
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TopologyKind::from_name("mesh3d"), None);
    }

    #[test]
    fn caps_round_trip_through_text() {
        let cfg = TopologyConfig::new(TopologyKind::Grid, 9);
        let caps = cfg.generate_caps(&mut StdRng::seed_from_u64(3));
        assert_eq!(caps.mem_demand.len(), 9);
        assert_eq!(caps.mem_capacity.len(), 9);
        assert!(caps.mem_demand.iter().all(|&d| d >= 1.0));
        assert!(caps.bw_capacity.iter().all(|&c| c > 0.0));
        let parsed = CapacitySpec::from_text(&caps.to_text()).unwrap();
        assert_eq!(parsed, caps);
    }

    #[test]
    fn caps_parse_rejects_garbage() {
        assert!(CapacitySpec::from_text("nope 1 2\n").is_err());
        assert!(CapacitySpec::from_text("caps 2 2\nmem_demand 1 -3\n").is_err());
        assert!(CapacitySpec::from_text("caps 2 2\nmem_demand 1 2\n").is_err());
    }
}
