//! Sparse large-n instance family for the multilevel solver.
//!
//! The paper-family generator ([`super::paper`]) loops over all `n²/2`
//! node pairs with a dense-region probability of 0.7 — faithful at the
//! paper's n ≤ 50, but both too slow and too dense to be meaningful at
//! the 10³–10⁴ tasks the multilevel driver targets (real large task
//! graphs have bounded degree; a 0.7-dense TIG at n = 4096 would carry
//! ~5.9M edges). This family keeps the §5.2 weight ranges but builds
//! bounded-degree graphs in O(n):
//!
//! * **TIG** — a uniform random recursive tree (connectivity) plus
//!   `tig_extra_per_node · n` random extra edges, giving average degree
//!   ≈ `2(1 + tig_extra_per_node)`. Node weights 1–10, edge weights
//!   50–100, as in the paper.
//! * **Platform** — a random spanning tree plus
//!   `platform_extra_per_node · n` extra links, closed under
//!   shortest-path routing exactly like the sparse paper platform.
//!   Node weights 1–5, link weights 10–20.
//!
//! The platform closure (all-pairs Dijkstra over a sparse graph) and
//! its dense `n²` link matrix are the real cost at n = 4096 — roughly a
//! second and ~134 MB — which is why the generator, not the solver, is
//! the floor on end-to-end wall time at that scale.

use crate::graph::Graph;
use crate::resource::ResourceGraph;
use crate::tig::TaskGraph;
use crate::InstancePair;
use rand::Rng;

/// Configuration for the sparse large-n family.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeFamilyConfig {
    /// Number of tasks and of resources (`|V_t| = |V_r| = n`).
    pub n: usize,
    /// TIG node (computation) weight range, inclusive. Paper: 1–10.
    pub tig_node_weights: (u32, u32),
    /// TIG edge (communication volume) weight range, inclusive. Paper: 50–100.
    pub tig_edge_weights: (u32, u32),
    /// Platform node (per-unit processing cost) range, inclusive. Paper: 1–5.
    pub res_node_weights: (u32, u32),
    /// Platform link (per-unit communication cost) range, inclusive. Paper: 10–20.
    pub res_edge_weights: (u32, u32),
    /// Extra TIG edges per node on top of the spanning tree.
    pub tig_extra_per_node: f64,
    /// Extra platform links per node on top of the spanning tree.
    pub platform_extra_per_node: f64,
}

impl LargeFamilyConfig {
    /// The default sparse family at size `n`: §5.2 weight ranges,
    /// average TIG degree ≈ 6, platform link count ≈ 1.25 n.
    pub fn new(n: usize) -> Self {
        LargeFamilyConfig {
            n,
            tig_node_weights: (1, 10),
            tig_edge_weights: (50, 100),
            res_node_weights: (1, 5),
            res_edge_weights: (10, 20),
            tig_extra_per_node: 2.0,
            platform_extra_per_node: 0.25,
        }
    }

    /// Generate one TIG/platform pair.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> InstancePair {
        let tig = self.generate_tig(rng);
        let resources = self.generate_platform(rng);
        InstancePair { tig, resources }
    }

    /// Generate only the TIG.
    pub fn generate_tig<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskGraph {
        let g = sparse_connected(
            rng,
            self.n,
            self.tig_node_weights,
            self.tig_edge_weights,
            self.tig_extra_per_node,
        );
        TaskGraph::new(g).expect("valid TIG by construction")
    }

    /// Generate only the platform (sparse, shortest-path routed).
    pub fn generate_platform<R: Rng + ?Sized>(&self, rng: &mut R) -> ResourceGraph {
        let g = sparse_connected(
            rng,
            self.n,
            self.res_node_weights,
            self.res_edge_weights,
            self.platform_extra_per_node,
        );
        ResourceGraph::new(g).expect("valid platform by construction")
    }
}

/// Spanning tree plus `extra_per_node · n` random extra edges; each
/// extra-edge attempt that lands on an existing pair or a self-loop is
/// simply skipped, so the realised count can fall slightly short.
fn sparse_connected<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    node_range: (u32, u32),
    edge_range: (u32, u32),
    extra_per_node: f64,
) -> Graph {
    let weights: Vec<f64> = (0..n).map(|_| draw(rng, node_range) as f64).collect();
    let mut g = Graph::from_node_weights(weights).expect("positive weights");
    // Uniform random recursive tree, as in the paper family.
    for v in 1..n {
        let u = rng.random_range(0..v);
        let w = draw(rng, edge_range) as f64;
        g.add_edge(u, v, w).expect("fresh edge");
    }
    if n < 2 {
        return g;
    }
    let attempts = (extra_per_node * n as f64).round() as usize;
    for _ in 0..attempts {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        // The weight is drawn unconditionally so the RNG stream consumed
        // per attempt is fixed — skipping a duplicate pair must not
        // shift every later draw.
        let w = draw(rng, edge_range) as f64;
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, w).expect("checked fresh");
        }
    }
    g
}

fn draw<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (u32, u32)) -> u32 {
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_respect_paper_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let pair = LargeFamilyConfig::new(200).generate(&mut rng);
        for t in 0..200 {
            let w = pair.tig.computation(t);
            assert!((1.0..=10.0).contains(&w), "TIG node weight {w}");
        }
        for (_, _, w) in pair.tig.all_interactions() {
            assert!((50.0..=100.0).contains(&w), "TIG edge weight {w}");
        }
        for s in 0..200 {
            let w = pair.resources.processing_cost(s);
            assert!((1.0..=5.0).contains(&w), "platform node weight {w}");
        }
        for (_, _, w) in pair.resources.graph().edges() {
            assert!((10.0..=20.0).contains(&w), "platform edge weight {w}");
        }
    }

    #[test]
    fn graphs_are_sparse_and_connected() {
        let mut rng = StdRng::seed_from_u64(4);
        let pair = LargeFamilyConfig::new(500).generate(&mut rng);
        assert!(is_connected(pair.tig.graph()));
        assert!(pair.resources.is_fully_connected());
        let tig_edges = pair.tig.graph().edge_count();
        assert!(
            (499..=499 + 1000).contains(&tig_edges),
            "TIG edge count {tig_edges} outside tree..tree+2n"
        );
        let plat_edges = pair.resources.graph().edge_count();
        assert!(
            (499..=499 + 125).contains(&plat_edges),
            "platform link count {plat_edges} outside tree..tree+n/4"
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = LargeFamilyConfig::new(64).generate(&mut StdRng::seed_from_u64(7));
        let b = LargeFamilyConfig::new(64).generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a.tig, b.tig);
        assert_eq!(a.resources, b.resources);
    }

    #[test]
    fn single_node_instance() {
        let mut rng = StdRng::seed_from_u64(9);
        let pair = LargeFamilyConfig::new(1).generate(&mut rng);
        assert_eq!(pair.tig.len(), 1);
        assert_eq!(pair.resources.graph().edge_count(), 0);
    }
}
