//! The paper's §5.2 synthetic workload family.
//!
//! Quoting §5.2: *"The system graphs generated had node weights randomly
//! varying from 1 to 5. The edge weights that represented the
//! communication overhead was allowed to vary from 10 to 20. Similarly,
//! for the TIG the node weights were taken from 1 to 10 and the edges
//! were randomly generated with weights varying between 50 to 100. Note
//! that we also chose to randomize the generation of the edges so as to
//! represent regions of high density and regions of lower density."*
//!
//! Interpretation choices (documented in DESIGN.md):
//!
//! * Weights are drawn uniformly (integers, matching the quoted integer
//!   bounds) from the closed ranges above.
//! * The platform is a complete graph — the paper indexes `c_{s,b}` for
//!   arbitrary resource pairs without mentioning routing.
//! * TIG edges: nodes are split into a *dense* region (first half) and a
//!   *sparse* region; pair probabilities differ per region. A random
//!   spanning tree is laid down first so the application is always
//!   connected (a disconnected "parallel application" is ill-formed).

use crate::graph::Graph;
use crate::resource::ResourceGraph;
use crate::tig::TaskGraph;
use crate::InstancePair;
use rand::Rng;

/// Configuration for the paper-family generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperFamilyConfig {
    /// Number of tasks and of resources (`|V_t| = |V_r| = n`).
    pub n: usize,
    /// TIG node (computation) weight range, inclusive. Paper: 1–10.
    pub tig_node_weights: (u32, u32),
    /// TIG edge (communication volume) weight range, inclusive. Paper: 50–100.
    pub tig_edge_weights: (u32, u32),
    /// Platform node (per-unit processing cost) range, inclusive. Paper: 1–5.
    pub res_node_weights: (u32, u32),
    /// Platform link (per-unit communication cost) range, inclusive. Paper: 10–20.
    pub res_edge_weights: (u32, u32),
    /// Edge probability inside the dense region.
    pub dense_edge_prob: f64,
    /// Edge probability inside the sparse region.
    pub sparse_edge_prob: f64,
    /// Edge probability across the two regions.
    pub cross_edge_prob: f64,
    /// Platform topology: `true` builds a complete platform (every
    /// resource pair directly linked); `false` builds a sparse platform
    /// (random spanning tree plus extra links with probability
    /// [`PaperFamilyConfig::platform_extra_link_prob`]), with
    /// inter-resource costs closed under shortest-path routing.
    ///
    /// The paper never states its platform topology; it draws link
    /// weights from 10–20 and indexes `c_{s,b}` freely. A complete
    /// platform bounds the cost ratio between the worst and best
    /// bijective mappings at roughly `(max link)/(min link) = 2`, which
    /// cannot produce Table 1's 38× spread; a sparse *routed* platform —
    /// the natural model of a computational grid, where far-apart sites
    /// pay multi-hop communication — makes mapping quality matter more
    /// as `|V_r|` grows, matching the paper's trend. Sparse is therefore
    /// the default; see DESIGN.md.
    pub complete_platform: bool,
    /// Extra-link probability for the sparse platform.
    pub platform_extra_link_prob: f64,
}

impl PaperFamilyConfig {
    /// The §5.2 defaults at size `n`.
    pub fn new(n: usize) -> Self {
        PaperFamilyConfig {
            n,
            tig_node_weights: (1, 10),
            tig_edge_weights: (50, 100),
            res_node_weights: (1, 5),
            res_edge_weights: (10, 20),
            dense_edge_prob: 0.7,
            sparse_edge_prob: 0.15,
            cross_edge_prob: 0.3,
            complete_platform: false,
            platform_extra_link_prob: 0.1,
        }
    }

    /// Use a complete platform instead of the sparse routed default.
    pub fn with_complete_platform(mut self) -> Self {
        self.complete_platform = true;
        self
    }

    /// Override the computation-to-communication balance by scaling the
    /// TIG node-weight range (the paper varies this ratio across its five
    /// graphs; we expose it as a multiplier on computation weights).
    pub fn with_comp_scale(mut self, scale: u32) -> Self {
        self.tig_node_weights = (
            self.tig_node_weights.0 * scale.max(1),
            self.tig_node_weights.1 * scale.max(1),
        );
        self
    }

    /// Generate one TIG/platform pair.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> InstancePair {
        let tig = self.generate_tig(rng);
        let resources = self.generate_platform(rng);
        InstancePair { tig, resources }
    }

    /// Generate only the TIG.
    pub fn generate_tig<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskGraph {
        let n = self.n;
        let weights: Vec<f64> = (0..n)
            .map(|_| draw(rng, self.tig_node_weights) as f64)
            .collect();
        let mut g = Graph::from_node_weights(weights).expect("positive weights");

        // Random spanning tree for connectivity: attach each node to a
        // random earlier node (uniform random recursive tree).
        for v in 1..n {
            let u = rng.random_range(0..v);
            let w = draw(rng, self.tig_edge_weights) as f64;
            g.add_edge(u, v, w).expect("fresh edge");
        }

        // Density regions: first half dense, second half sparse.
        let split = n / 2;
        for u in 0..n {
            for v in (u + 1)..n {
                if g.has_edge(u, v) {
                    continue;
                }
                let p = if v < split {
                    self.dense_edge_prob
                } else if u >= split {
                    self.sparse_edge_prob
                } else {
                    self.cross_edge_prob
                };
                if rng.random::<f64>() < p {
                    let w = draw(rng, self.tig_edge_weights) as f64;
                    g.add_edge(u, v, w).expect("fresh edge");
                }
            }
        }
        TaskGraph::new(g).expect("valid TIG by construction")
    }

    /// Generate only the platform. Complete when
    /// [`PaperFamilyConfig::complete_platform`] is set; otherwise a
    /// connected sparse graph (random spanning tree + extra links) whose
    /// non-adjacent resource pairs communicate at shortest-path cost.
    pub fn generate_platform<R: Rng + ?Sized>(&self, rng: &mut R) -> ResourceGraph {
        let n = self.n;
        let weights: Vec<f64> = (0..n)
            .map(|_| draw(rng, self.res_node_weights) as f64)
            .collect();
        let mut g = Graph::from_node_weights(weights).expect("positive weights");
        if self.complete_platform {
            for u in 0..n {
                for v in (u + 1)..n {
                    let w = draw(rng, self.res_edge_weights) as f64;
                    g.add_edge(u, v, w).expect("fresh edge");
                }
            }
        } else {
            // Random spanning tree keeps the platform connected.
            for v in 1..n {
                let u = rng.random_range(0..v);
                let w = draw(rng, self.res_edge_weights) as f64;
                g.add_edge(u, v, w).expect("fresh edge");
            }
            for u in 0..n {
                for v in (u + 1)..n {
                    if !g.has_edge(u, v) && rng.random::<f64>() < self.platform_extra_link_prob {
                        let w = draw(rng, self.res_edge_weights) as f64;
                        g.add_edge(u, v, w).expect("fresh edge");
                    }
                }
            }
        }
        ResourceGraph::new(g).expect("valid platform by construction")
    }
}

fn draw<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (u32, u32)) -> u32 {
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_respect_paper_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let pair = PaperFamilyConfig::new(30).generate(&mut rng);
        for t in 0..30 {
            let w = pair.tig.computation(t);
            assert!((1.0..=10.0).contains(&w), "TIG node weight {w}");
        }
        for (_, _, w) in pair.tig.all_interactions() {
            assert!((50.0..=100.0).contains(&w), "TIG edge weight {w}");
        }
        for s in 0..30 {
            let w = pair.resources.processing_cost(s);
            assert!((1.0..=5.0).contains(&w), "platform node weight {w}");
        }
        for (_, _, w) in pair.resources.graph().edges() {
            assert!((10.0..=20.0).contains(&w), "platform edge weight {w}");
        }
    }

    #[test]
    fn complete_platform_option() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = PaperFamilyConfig::new(12)
            .with_complete_platform()
            .generate_platform(&mut rng);
        assert_eq!(p.graph().edge_count(), 12 * 11 / 2);
        assert!(p.is_fully_connected());
    }

    #[test]
    fn sparse_platform_is_connected_and_routed() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = PaperFamilyConfig::new(20).generate_platform(&mut rng);
        assert!(p.graph().edge_count() < 20 * 19 / 2, "should be sparse");
        assert!(p.graph().edge_count() >= 19, "spanning tree present");
        assert!(
            p.is_fully_connected(),
            "routing closure must cover all pairs"
        );
        // Some non-adjacent pair pays more than the max direct link cost.
        let max_direct = p.graph().edges().map(|(_, _, w)| w).fold(0.0f64, f64::max);
        let mut saw_multihop = false;
        for s in 0..20 {
            for b in 0..20 {
                if s != b && p.link_cost(s, b) > max_direct {
                    saw_multihop = true;
                }
            }
        }
        assert!(saw_multihop, "expected some multi-hop link costs");
    }

    #[test]
    fn tig_is_connected_across_sizes() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2, 5, 10, 20, 50] {
            let t = PaperFamilyConfig::new(n).generate_tig(&mut rng);
            assert!(is_connected(t.graph()), "n = {n}");
        }
    }

    #[test]
    fn dense_region_denser_than_sparse() {
        // Statistically: with n=40, the first 20 nodes should have many
        // more intra-edges than the last 20.
        let mut rng = StdRng::seed_from_u64(6);
        let t = PaperFamilyConfig::new(40).generate_tig(&mut rng);
        let mut dense = 0;
        let mut sparse = 0;
        for (u, v, _) in t.all_interactions() {
            if u < 20 && v < 20 {
                dense += 1;
            } else if u >= 20 && v >= 20 {
                sparse += 1;
            }
        }
        assert!(
            dense > sparse,
            "dense region ({dense}) not denser than sparse ({sparse})"
        );
    }

    #[test]
    fn comp_scale_raises_ratio() {
        let base = PaperFamilyConfig::new(20);
        let scaled = PaperFamilyConfig::new(20).with_comp_scale(10);
        let t1 = base.generate_tig(&mut StdRng::seed_from_u64(8));
        let t2 = scaled.generate_tig(&mut StdRng::seed_from_u64(8));
        assert!(t2.comp_comm_ratio() > t1.comp_comm_ratio());
    }

    #[test]
    fn single_node_instance() {
        let mut rng = StdRng::seed_from_u64(9);
        let pair = PaperFamilyConfig::new(1).generate(&mut rng);
        assert_eq!(pair.tig.len(), 1);
        assert_eq!(pair.tig.all_interactions().count(), 0);
        assert_eq!(pair.resources.graph().edge_count(), 0);
    }
}
