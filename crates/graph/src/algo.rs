//! Graph algorithms used by generators, validators and the harness.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Breadth-first order of the component containing `start`.
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(start < n, "start node out of range");
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Connected components: `component[u]` is a dense component id, and the
/// number of components is returned alongside.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut component = vec![usize::MAX; n];
    let mut count = 0;
    for s in 0..n {
        if component[s] != usize::MAX {
            continue;
        }
        for u in bfs_order(g, s) {
            component[u] = count;
        }
        count += 1;
    }
    (component, count)
}

/// True when the graph has at most one connected component.
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() <= 1 || connected_components(g).1 == 1
}

/// Degree distribution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2|E| / |V|`.
    pub mean: f64,
    /// Edge density `|E| / (|V| choose 2)`.
    pub density: f64,
}

/// Compute [`DegreeStats`]; `None` for an empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    let n = g.node_count();
    if n == 0 {
        return None;
    }
    let degrees: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
    let max_edges = n * (n - 1) / 2;
    Some(DegreeStats {
        min: *degrees.iter().min().unwrap(),
        max: *degrees.iter().max().unwrap(),
        mean: 2.0 * g.edge_count() as f64 / n as f64,
        density: if max_edges == 0 {
            0.0
        } else {
            g.edge_count() as f64 / max_edges as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_uniform_nodes(n, 1.0);
        for i in 1..n {
            g.add_edge(i - 1, i, 1.0).unwrap();
        }
        g
    }

    #[test]
    fn bfs_visits_component_in_level_order() {
        let g = path(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = path(3);
        g.add_node(1.0).unwrap();
        g.add_node(1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_node_and_empty_are_connected() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&Graph::with_uniform_nodes(1, 1.0)));
    }

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&path(10)));
    }

    #[test]
    fn degree_stats_of_path() {
        let s = degree_stats(&path(4)).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert!((s.density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        assert!(degree_stats(&Graph::new()).is_none());
        let s = degree_stats(&Graph::with_uniform_nodes(1, 1.0)).unwrap();
        assert_eq!(s.density, 0.0);
    }
}
