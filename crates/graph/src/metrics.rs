//! Whole-graph summary metrics, used by `matchctl info` and the
//! experiment reports.

use crate::algo::{connected_components, degree_stats};
use crate::graph::Graph;
use std::collections::VecDeque;

/// A one-stop structural summary.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Connected components.
    pub components: usize,
    /// Unweighted diameter of the largest component (longest shortest
    /// path in hops); `0` for graphs with fewer than 2 nodes.
    pub diameter: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Edge density.
    pub density: f64,
    /// Total node weight.
    pub total_node_weight: f64,
    /// Total edge weight.
    pub total_edge_weight: f64,
}

/// Hop distances from `start` (usize::MAX for unreachable nodes).
pub fn hop_distances(g: &Graph, start: usize) -> Vec<usize> {
    let n = g.node_count();
    assert!(start < n, "start out of range");
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for (v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Unweighted diameter of the largest connected component (exact,
/// all-sources BFS — fine for the instance sizes of this workspace).
pub fn diameter(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    let mut best = 0;
    for s in 0..n {
        for &d in hop_distances(g, s).iter() {
            if d != usize::MAX {
                best = best.max(d);
            }
        }
    }
    best
}

/// Compute a [`GraphSummary`].
pub fn summarize(g: &Graph) -> GraphSummary {
    let (_, components) = connected_components(g);
    let deg = degree_stats(g);
    GraphSummary {
        nodes: g.node_count(),
        edges: g.edge_count(),
        components,
        diameter: diameter(g),
        min_degree: deg.as_ref().map_or(0, |d| d.min),
        max_degree: deg.as_ref().map_or(0, |d| d.max),
        mean_degree: deg.as_ref().map_or(0.0, |d| d.mean),
        density: deg.as_ref().map_or(0.0, |d| d.density),
        total_node_weight: g.total_node_weight(),
        total_edge_weight: g.total_edge_weight(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::classic::{complete_graph, ring_graph, star_graph};

    #[test]
    fn hop_distances_on_ring() {
        let g = ring_graph(6, 1.0, 1.0);
        let d = hop_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn diameters_of_known_shapes() {
        assert_eq!(diameter(&ring_graph(6, 1.0, 1.0)), 3);
        assert_eq!(diameter(&ring_graph(7, 1.0, 1.0)), 3);
        assert_eq!(diameter(&star_graph(5, 1.0, 1.0)), 2);
        assert_eq!(diameter(&complete_graph(4, 1.0, 1.0)), 1);
        assert_eq!(diameter(&Graph::new()), 0);
        assert_eq!(diameter(&Graph::with_uniform_nodes(1, 1.0)), 0);
    }

    #[test]
    fn disconnected_diameter_is_within_components() {
        let mut g = Graph::with_uniform_nodes(5, 1.0);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        // Nodes 3, 4 isolated.
        assert_eq!(diameter(&g), 2);
        let d = hop_distances(&g, 0);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn summary_fields() {
        let g = star_graph(5, 2.0, 3.0);
        let s = summarize(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.components, 1);
        assert_eq!(s.diameter, 2);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.total_node_weight, 10.0);
        assert_eq!(s.total_edge_weight, 12.0);
    }
}
