//! The shared weighted undirected graph container.
//!
//! Both the TIG and the resource graph are "weighted undirected graphs"
//! in the paper's formulation — node weights and edge weights are plain
//! non-negative reals whose *meaning* differs per wrapper ([`crate::tig`],
//! [`crate::resource`]). This module provides the common storage:
//! adjacency lists for traversal plus a canonical edge list for
//! generators and I/O.

use serde::{Deserialize, Serialize};

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An endpoint index was `>= node_count`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// Self-loops are not allowed (a task does not communicate with
    /// itself; a resource has zero-cost local communication implicitly).
    SelfLoop(usize),
    /// The edge already exists.
    DuplicateEdge(usize, usize),
    /// A weight was negative, NaN or infinite.
    InvalidWeight(f64),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range (graph has {len} nodes)")
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop at node {u}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::InvalidWeight(w) => write!(f, "invalid weight {w}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected graph with `f64` node and edge weights.
///
/// Node indices are dense `0..node_count`. Edges are stored once in
/// canonical `(min, max)` order plus twice in adjacency lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Graph {
    node_weights: Vec<f64>,
    /// `adj[u]` lists `(v, weight)` pairs.
    adj: Vec<Vec<(u32, f64)>>,
    /// Canonical edge list, `u < v`.
    edges: Vec<(u32, u32, f64)>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// A graph with `n` nodes of weight `w` and no edges.
    pub fn with_uniform_nodes(n: usize, w: f64) -> Self {
        Graph {
            node_weights: vec![w; n],
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// A graph whose node weights are given; no edges.
    pub fn from_node_weights(weights: Vec<f64>) -> Result<Self, GraphError> {
        for &w in &weights {
            check_weight(w)?;
        }
        let n = weights.len();
        Ok(Graph {
            node_weights: weights,
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        })
    }

    /// Append a node with weight `w`; returns its index.
    pub fn add_node(&mut self, w: f64) -> Result<usize, GraphError> {
        check_weight(w)?;
        self.node_weights.push(w);
        self.adj.push(Vec::new());
        Ok(self.node_weights.len() - 1)
    }

    /// Add the undirected edge `(u, v)` with weight `w`.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<(), GraphError> {
        let n = self.node_weights.len();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, len: n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, len: n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        check_weight(w)?;
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32, w));
        self.adj[u].push((v as u32, w));
        self.adj[v].push((u as u32, w));
        Ok(())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Weight of node `u`.
    pub fn node_weight(&self, u: usize) -> f64 {
        self.node_weights[u]
    }

    /// All node weights.
    pub fn node_weights(&self) -> &[f64] {
        &self.node_weights
    }

    /// Overwrite the weight of node `u`.
    pub fn set_node_weight(&mut self, u: usize, w: f64) -> Result<(), GraphError> {
        check_weight(w)?;
        self.node_weights[u] = w;
        Ok(())
    }

    /// Neighbors of `u` as `(neighbor, edge weight)` pairs, in insertion
    /// order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.adj[u].iter().map(|&(v, w)| (v as usize, w))
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// True when the edge `(u, v)` exists (order-insensitive).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Scan the shorter adjacency list.
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].iter().any(|&(x, _)| x as usize == b)
    }

    /// Weight of the edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj[u]
            .iter()
            .find(|&&(x, _)| x as usize == v)
            .map(|&(_, w)| w)
    }

    /// Canonical `(u, v, weight)` edge triples with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.edges
            .iter()
            .map(|&(u, v, w)| (u as usize, v as usize, w))
    }

    /// Sum of all node weights.
    pub fn total_node_weight(&self) -> f64 {
        self.node_weights.iter().sum()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }
}

fn check_weight(w: f64) -> Result<(), GraphError> {
    if !w.is_finite() || w < 0.0 {
        Err(GraphError::InvalidWeight(w))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::from_node_weights(vec![1.0, 2.0, 3.0]).unwrap();
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(1, 2, 20.0).unwrap();
        g.add_edge(2, 0, 30.0).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_node_weight(), 0.0);
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.node_weight(1), 2.0);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(2, 0), Some(30.0));
        assert_eq!(g.edge_weight(0, 2), Some(30.0));
        assert_eq!(g.total_node_weight(), 6.0);
        assert_eq!(g.total_edge_weight(), 60.0);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for u in 0..3 {
            for (v, w) in g.neighbors(u) {
                assert_eq!(g.edge_weight(v, u), Some(w));
            }
        }
    }

    #[test]
    fn edges_canonical_order() {
        let g = triangle();
        for (u, v, _) in g.edges() {
            assert!(u < v);
        }
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::with_uniform_nodes(2, 1.0);
        assert_eq!(g.add_edge(1, 1, 5.0), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_duplicate_edge_either_order() {
        let mut g = Graph::with_uniform_nodes(2, 1.0);
        g.add_edge(0, 1, 5.0).unwrap();
        assert_eq!(g.add_edge(0, 1, 6.0), Err(GraphError::DuplicateEdge(0, 1)));
        assert_eq!(g.add_edge(1, 0, 6.0), Err(GraphError::DuplicateEdge(1, 0)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::with_uniform_nodes(2, 1.0);
        assert!(matches!(
            g.add_edge(0, 5, 1.0),
            Err(GraphError::NodeOutOfRange { node: 5, len: 2 })
        ));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut g = Graph::with_uniform_nodes(2, 1.0);
        assert!(matches!(
            g.add_edge(0, 1, -1.0),
            Err(GraphError::InvalidWeight(_))
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight(_))
        ));
        assert!(matches!(
            g.add_node(f64::INFINITY),
            Err(GraphError::InvalidWeight(_))
        ));
        assert!(Graph::from_node_weights(vec![1.0, -2.0]).is_err());
    }

    #[test]
    fn set_node_weight_works() {
        let mut g = triangle();
        g.set_node_weight(0, 9.0).unwrap();
        assert_eq!(g.node_weight(0), 9.0);
        assert!(g.set_node_weight(0, f64::NAN).is_err());
    }

    #[test]
    fn serde_roundtrip_via_clone_eq() {
        // Exercise the Serialize/Deserialize derives through a manual
        // token-free roundtrip: PartialEq + Clone suffice to verify the
        // struct is well-formed for serde's derive (compile-time), and we
        // check structural equality here.
        let g = triangle();
        let h = g.clone();
        assert_eq!(g, h);
    }
}
