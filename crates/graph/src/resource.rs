//! Resource (system) graphs.
//!
//! §2: each resource `r_i` has a processing weight `w_i` — "its
//! processing cost per unit of computation" — and each link `(r_i, r_j)`
//! a link weight `c_{i,j}` — "the cost per unit of communication". The
//! cost model (Eq. 1) charges `C^{t,a} × c_{s,b}` for every interacting
//! task pair split across resources `s ≠ b`.
//!
//! The paper's generated platforms are complete graphs, so `c_{s,b}` is
//! always a direct link weight. For generality this type also supports
//! sparse platforms: effective inter-resource costs are closed under
//! shortest path (Dijkstra over link weights), the natural model for a
//! routed interconnect. Unreachable pairs get `+∞` cost, which any
//! sensible mapper will avoid.

use crate::graph::{Graph, GraphError};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heterogeneous platform with per-unit processing and communication
/// costs, plus the precomputed all-pairs effective link-cost matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceGraph {
    graph: Graph,
    /// Row-major `n × n` effective communication costs; `[s][s] = 0`.
    link_costs: Vec<f64>,
}

impl ResourceGraph {
    /// Wrap a platform graph. Processing weights must be strictly
    /// positive (a zero-cost processor would absorb every task and make
    /// Eq. 1 degenerate); link weights must be strictly positive.
    pub fn new(graph: Graph) -> Result<Self, GraphError> {
        for u in 0..graph.node_count() {
            let w = graph.node_weight(u);
            if w <= 0.0 {
                return Err(GraphError::InvalidWeight(w));
            }
        }
        for (_, _, w) in graph.edges() {
            if w <= 0.0 {
                return Err(GraphError::InvalidWeight(w));
            }
        }
        let link_costs = all_pairs_shortest(&graph);
        Ok(ResourceGraph { graph, link_costs })
    }

    /// Number of resources `|V_r|`.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// True when the platform has no resources.
    pub fn is_empty(&self) -> bool {
        self.graph.node_count() == 0
    }

    /// Processing cost per unit of computation, `w_s`.
    pub fn processing_cost(&self, s: usize) -> f64 {
        self.graph.node_weight(s)
    }

    /// Effective communication cost per unit between resources `s` and
    /// `b`: `0` when `s == b`, the direct link weight when adjacent, the
    /// shortest-path cost otherwise (`+∞` if disconnected).
    pub fn link_cost(&self, s: usize, b: usize) -> f64 {
        self.link_costs[s * self.len() + b]
    }

    /// The full link-cost matrix, row-major.
    pub fn link_cost_matrix(&self) -> &[f64] {
        &self.link_costs
    }

    /// True when every resource can reach every other.
    pub fn is_fully_connected(&self) -> bool {
        self.link_costs.iter().all(|c| c.is_finite())
    }

    /// Access the underlying graph (read-only).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

/// Dijkstra from every source over positive link weights.
fn all_pairs_shortest(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![f64::INFINITY; n * n];

    #[derive(PartialEq)]
    struct Entry {
        dist: f64,
        node: usize,
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on dist (weights are finite positive; total order ok).
            other
                .dist
                .partial_cmp(&self.dist)
                .unwrap_or(Ordering::Equal)
        }
    }

    for src in 0..n {
        let row = &mut out[src * n..(src + 1) * n];
        row[src] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            dist: 0.0,
            node: src,
        });
        while let Some(Entry { dist, node }) = heap.pop() {
            if dist > row[node] {
                continue;
            }
            for (v, w) in g.neighbors(node) {
                let nd = dist + w;
                if nd < row[v] {
                    row[v] = nd;
                    heap.push(Entry { dist: nd, node: v });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete3() -> ResourceGraph {
        let mut g = Graph::from_node_weights(vec![1.0, 2.0, 5.0]).unwrap();
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(1, 2, 15.0).unwrap();
        g.add_edge(0, 2, 20.0).unwrap();
        ResourceGraph::new(g).unwrap()
    }

    #[test]
    fn complete_platform_uses_direct_links() {
        let r = complete3();
        assert_eq!(r.len(), 3);
        assert_eq!(r.processing_cost(2), 5.0);
        assert_eq!(r.link_cost(0, 0), 0.0);
        assert_eq!(r.link_cost(0, 1), 10.0);
        assert_eq!(r.link_cost(1, 0), 10.0);
        assert_eq!(r.link_cost(0, 2), 20.0);
        assert!(r.is_fully_connected());
    }

    #[test]
    fn sparse_platform_routes_via_shortest_path() {
        // Path 0 -10- 1 -15- 2: effective cost 0<->2 is 25.
        let mut g = Graph::from_node_weights(vec![1.0, 1.0, 1.0]).unwrap();
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(1, 2, 15.0).unwrap();
        let r = ResourceGraph::new(g).unwrap();
        assert_eq!(r.link_cost(0, 2), 25.0);
        assert_eq!(r.link_cost(2, 0), 25.0);
        assert!(r.is_fully_connected());
    }

    #[test]
    fn shortcut_beats_direct_link() {
        // Direct 0-2 edge costs 100, but 0-1-2 costs 25: closure takes 25.
        let mut g = Graph::from_node_weights(vec![1.0, 1.0, 1.0]).unwrap();
        g.add_edge(0, 1, 10.0).unwrap();
        g.add_edge(1, 2, 15.0).unwrap();
        g.add_edge(0, 2, 100.0).unwrap();
        let r = ResourceGraph::new(g).unwrap();
        assert_eq!(r.link_cost(0, 2), 25.0);
    }

    #[test]
    fn disconnected_pairs_are_infinite() {
        let g = Graph::from_node_weights(vec![1.0, 1.0]).unwrap();
        let r = ResourceGraph::new(g).unwrap();
        assert!(r.link_cost(0, 1).is_infinite());
        assert!(!r.is_fully_connected());
        assert_eq!(r.link_cost(0, 0), 0.0);
    }

    #[test]
    fn rejects_nonpositive_weights() {
        let g = Graph::from_node_weights(vec![1.0, 0.0]);
        // 0.0 passes Graph's check but not ResourceGraph's.
        assert!(ResourceGraph::new(g.unwrap()).is_err());

        let mut g = Graph::from_node_weights(vec![1.0, 1.0]).unwrap();
        g.add_edge(0, 1, 0.0).unwrap();
        assert!(ResourceGraph::new(g).is_err());
    }

    #[test]
    fn matrix_is_symmetric() {
        let r = complete3();
        for s in 0..3 {
            for b in 0..3 {
                assert_eq!(r.link_cost(s, b), r.link_cost(b, s));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_after_closure() {
        let r = complete3();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    assert!(r.link_cost(a, c) <= r.link_cost(a, b) + r.link_cost(b, c) + 1e-12);
                }
            }
        }
    }
}
