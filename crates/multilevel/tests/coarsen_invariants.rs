//! Proptest coverage for the coarsening invariants the multilevel
//! driver's correctness rests on:
//!
//! * conservation — total interaction volume (counting absorbed
//!   intra-pair weight) and total computation mass survive every level;
//! * validity — projecting any coarse mapping yields a valid fine
//!   mapping (a bijection on square instances, in-range many-to-one on
//!   rectangular ones);
//! * exactness — with task-only coarsening the coarse Eq. 1 cost of a
//!   mapping equals the fine cost of its projection (children
//!   co-located with their parent), up to float summation order.

use match_core::{exec_time, Mapping, MappingInstance};
use match_graph::gen::InstanceGenerator;
use match_multilevel::{coarsen, coarsen_step, Hierarchy};
use match_rngutil::random_permutation;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_inst(n: usize, seed: u64) -> MappingInstance {
    MappingInstance::from_pair(
        &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(seed)),
    )
}

fn rect_inst(tasks: usize, resources: usize, seed: u64) -> MappingInstance {
    let tig = InstanceGenerator::paper_family(tasks)
        .generate(&mut StdRng::seed_from_u64(seed))
        .tig;
    let plat = InstanceGenerator::paper_family(resources)
        .generate(&mut StdRng::seed_from_u64(seed ^ 0x9e37_79b9))
        .resources;
    MappingInstance::new(&tig, &plat)
}

fn total_edge_weight(inst: &MappingInstance) -> f64 {
    let mut sum = 0.0;
    for t in 0..inst.n_tasks() {
        for (a, c) in inst.interactions(t) {
            if a > t {
                sum += c;
            }
        }
    }
    sum
}

fn total_comp(inst: &MappingInstance) -> f64 {
    (0..inst.n_tasks()).map(|t| inst.computation(t)).sum()
}

fn check_conservation(fine: &MappingInstance, hier: &Hierarchy) {
    let mut parent_w = total_edge_weight(fine);
    let mut parent_c = total_comp(fine);
    for (i, level) in hier.levels.iter().enumerate() {
        let w = total_edge_weight(&level.inst);
        let c = total_comp(&level.inst);
        let w_tol = 1e-9 * parent_w.max(1.0);
        let c_tol = 1e-9 * parent_c.max(1.0);
        assert!(
            (w + level.absorbed_comm - parent_w).abs() <= w_tol,
            "level {i}: edge mass {w} + absorbed {} != parent {parent_w}",
            level.absorbed_comm
        );
        assert!(
            (c - parent_c).abs() <= c_tol,
            "level {i}: computation mass {c} != parent {parent_c}"
        );
        parent_w = w;
        parent_c = c;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn square_mass_is_conserved_at_every_level(
        n in 4usize..48,
        seed in 0u64..10_000,
        target in 2usize..16,
    ) {
        let inst = paper_inst(n, seed);
        let hier = coarsen(&inst, target);
        check_conservation(&inst, &hier);
        for level in &hier.levels {
            prop_assert!(level.inst.is_square());
        }
    }

    #[test]
    fn rectangular_mass_is_conserved_at_every_level(
        tasks in 11usize..40,
        resources in 2usize..10,
        seed in 0u64..10_000,
    ) {
        let inst = rect_inst(tasks, resources, seed);
        let hier = coarsen(&inst, 6);
        check_conservation(&inst, &hier);
        for level in &hier.levels {
            prop_assert_eq!(level.inst.n_resources(), resources);
        }
    }

    #[test]
    fn any_coarse_permutation_projects_to_a_valid_fine_mapping(
        n in 4usize..48,
        seed in 0u64..10_000,
        map_seed in 0u64..10_000,
        target in 2usize..16,
    ) {
        let inst = paper_inst(n, seed);
        let hier = coarsen(&inst, target);
        let mut rng = StdRng::seed_from_u64(map_seed);
        let mut assign = random_permutation(hier.coarsest(&inst).n_tasks(), &mut rng);
        for (i, level) in hier.levels.iter().enumerate().rev() {
            let parent = if i == 0 { &inst } else { &hier.levels[i - 1].inst };
            assign = match_multilevel::project(level, parent.n_resources(), &assign);
            prop_assert!(Mapping::new(assign.clone()).validate(parent).is_ok(),
                "projection to level {i} is not a valid bijection");
        }
    }

    #[test]
    fn rect_projection_is_valid_and_cost_exact(
        tasks in 11usize..40,
        resources in 2usize..10,
        seed in 0u64..10_000,
        map_seed in 0u64..10_000,
    ) {
        let inst = rect_inst(tasks, resources, seed);
        let level = coarsen_step(&inst, false);
        let mut rng = StdRng::seed_from_u64(map_seed);
        let coarse: Vec<usize> = (0..level.inst.n_tasks())
            .map(|_| rand::Rng::random_range(&mut rng, 0..resources))
            .collect();
        let fine = match_multilevel::project(&level, resources, &coarse);
        prop_assert!(Mapping::new(fine.clone()).validate(&inst).is_ok());
        // Restricted to merged pairs (children inherit the parent's
        // resource), the coarse Eq. 1 cost is the fine cost.
        let c_cost = exec_time(&level.inst, &coarse);
        let f_cost = exec_time(&inst, &fine);
        prop_assert!(
            (c_cost - f_cost).abs() <= 1e-9 * c_cost.abs().max(1.0),
            "coarse cost {} != projected fine cost {}", c_cost, f_cost
        );
    }
}
