//! Projection of a coarse mapping down one level.
//!
//! Square (lockstep) levels: every coarse task cluster sits on exactly
//! one coarse resource cluster, so child tasks are dealt onto the child
//! resources of that cluster in ascending-id order. Cluster sizes can
//! disagree (a pair of tasks on a singleton resource, or vice versa);
//! leftover tasks and leftover resources are collected and zipped in
//! ascending order afterwards, which always yields a permutation — the
//! refinement pass immediately after projection is what repairs any
//! quality lost to this arbitrary-but-deterministic completion.
//!
//! Rectangular levels: children simply inherit their parent's resource
//! (the platform was never coarsened), which preserves the coarse
//! mapping's Eq. 1 cost exactly — see the crate-level invariant tests.

use crate::coarsen::CoarseLevel;

/// Project a mapping on `level.inst` down to the parent level.
///
/// `parent_n_resources` is the parent level's resource count (resources
/// are either coarsened via `level.res_parent` or carried through); the
/// parent task count is `level.task_parent.len()`.
pub fn project(level: &CoarseLevel, parent_n_resources: usize, coarse: &[usize]) -> Vec<usize> {
    let n_fine = level.task_parent.len();
    let n_coarse = level.inst.n_tasks();
    assert_eq!(coarse.len(), n_coarse, "coarse mapping length mismatch");
    match &level.res_parent {
        None => {
            // Rectangular path: inherit the parent's resource.
            level
                .task_parent
                .iter()
                .map(|&c| coarse[c as usize])
                .collect()
        }
        Some(res_parent) => {
            debug_assert_eq!(res_parent.len(), parent_n_resources);
            // Children per coarse id, ascending by construction.
            let mut task_members: Vec<Vec<u32>> = vec![Vec::new(); n_coarse];
            for (t, &c) in level.task_parent.iter().enumerate() {
                task_members[c as usize].push(t as u32);
            }
            let mut res_members: Vec<Vec<u32>> = vec![Vec::new(); level.inst.n_resources()];
            for (s, &c) in res_parent.iter().enumerate() {
                res_members[c as usize].push(s as u32);
            }
            let mut assign = vec![usize::MAX; n_fine];
            let mut free_tasks: Vec<u32> = Vec::new();
            let mut free_res: Vec<u32> = Vec::new();
            for (c, tm) in task_members.iter().enumerate() {
                let rm = &res_members[coarse[c]];
                let k = tm.len().min(rm.len());
                for i in 0..k {
                    assign[tm[i] as usize] = rm[i] as usize;
                }
                free_tasks.extend_from_slice(&tm[k..]);
                free_res.extend_from_slice(&rm[k..]);
            }
            debug_assert_eq!(free_tasks.len(), free_res.len());
            free_tasks.sort_unstable();
            free_res.sort_unstable();
            for (t, s) in free_tasks.iter().zip(&free_res) {
                assign[*t as usize] = *s as usize;
            }
            debug_assert!(assign.iter().all(|&s| s != usize::MAX));
            assign
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::coarsen::{coarsen, coarsen_step};
    use crate::project::project;
    use match_core::{exec_time, Mapping, MappingInstance};
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::random_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_inst(n: usize, seed: u64) -> MappingInstance {
        MappingInstance::from_pair(
            &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(seed)),
        )
    }

    #[test]
    fn square_projection_is_a_permutation_at_every_level() {
        let inst = paper_inst(41, 9);
        let h = coarsen(&inst, 6);
        let mut rng = StdRng::seed_from_u64(10);
        let mut assign = random_permutation(h.coarsest(&inst).n_tasks(), &mut rng);
        for (i, level) in h.levels.iter().enumerate().rev() {
            let parent_res = if i == 0 {
                inst.n_resources()
            } else {
                h.levels[i - 1].inst.n_resources()
            };
            assign = project(level, parent_res, &assign);
            let parent = if i == 0 { &inst } else { &h.levels[i - 1].inst };
            Mapping::new(assign.clone())
                .validate(parent)
                .expect("projection must stay a valid bijection");
        }
        assert_eq!(assign.len(), 41);
    }

    #[test]
    fn rectangular_projection_preserves_cost_exactly_per_step() {
        // Task-only coarsening against the same platform: the coarse
        // Eq. 1 cost of a coarse mapping equals the fine cost of its
        // projection (children co-located with their parent), up to
        // float summation order.
        let pair = InstanceGenerator::paper_family(24).generate(&mut StdRng::seed_from_u64(11));
        let plat = InstanceGenerator::paper_family(7)
            .generate(&mut StdRng::seed_from_u64(12))
            .resources;
        let inst = MappingInstance::new(&pair.tig, &plat);
        let level = coarsen_step(&inst, false);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let coarse: Vec<usize> = (0..level.inst.n_tasks())
                .map(|_| rand::Rng::random_range(&mut rng, 0..7))
                .collect();
            let fine = project(&level, 7, &coarse);
            let c_cost = exec_time(&level.inst, &coarse);
            let f_cost = exec_time(&inst, &fine);
            assert!(
                (c_cost - f_cost).abs() <= 1e-9 * c_cost.max(1.0),
                "coarse {c_cost} != projected fine {f_cost}"
            );
        }
    }

    #[test]
    fn mismatched_cluster_sizes_are_repaired() {
        // n = 9: one singleton task cluster and one singleton resource
        // cluster. Map the pair-cluster onto the singleton resource so
        // the repair path must fire; the result must stay a bijection.
        let inst = paper_inst(9, 14);
        let level = coarsen_step(&inst, true);
        let nc = level.inst.n_tasks();
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..20 {
            let coarse = random_permutation(nc, &mut rng);
            let fine = project(&level, 9, &coarse);
            Mapping::new(fine)
                .validate(&inst)
                .expect("repaired bijection");
        }
    }
}
