//! Delta-cost local refinement: parallel proposals, sequential commit.
//!
//! Each pass fans the proposal phase out over `match-par` with one
//! `SplitMix64::stream(pass_seed, t)` RNG per task, so the proposal set
//! is a pure function of `(instance, assignment, pass_seed)` — results
//! are bit-identical across thread counts, like the PR 3/4 samplers.
//! Every task scores a handful of random partners plus one guided
//! partner (whoever sits on its heaviest neighbour's resource) using a
//! *local* Eq. 1 delta over only the affected resources, in
//! O(degree). The commit phase is sequential and deterministic: the
//! proposals are ranked (largest local peak reduction first, then
//! largest total-load reduction, then ids), each surviving proposal is
//! applied with [`apply_swap_delta`]/[`apply_move_delta`] and accepted
//! only if the *global* makespan did not get worse — local scores are a
//! ranking heuristic, the commit re-checks against the true Eq. 2.
//!
//! Square levels refine with swaps (bijectivity is preserved by
//! construction); rectangular levels refine with single-task moves.

use match_core::{apply_move_delta, apply_swap_delta, MappingInstance};
use match_par::parallel_map;
use match_rngutil::SplitMix64;
use rand::RngCore;

/// Outcome of one refinement pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PassStats {
    /// Proposals committed (makespan-improving swaps/moves applied).
    pub accepted: usize,
    /// Local delta evaluations performed (the pass's work measure).
    pub evaluations: u64,
    /// Makespan (Eq. 2) after the pass, from the incremental loads.
    pub best: f64,
}

#[derive(Debug, Clone, Copy)]
struct Proposal {
    t: u32,
    /// Partner task (square/swap mode) or target resource (move mode).
    partner: u32,
    /// Local peak reduction: `old local max − new local max`.
    gain_max: f64,
    /// Total load change (negative is better).
    delta_sum: f64,
}

/// Sparse per-resource load delta; the touched set is O(degree), so a
/// linear-scan association list beats any hash map here.
struct DeltaMap {
    entries: Vec<(usize, f64)>,
}

impl DeltaMap {
    fn new() -> Self {
        DeltaMap {
            entries: Vec::with_capacity(8),
        }
    }

    fn add(&mut self, r: usize, d: f64) {
        for e in &mut self.entries {
            if e.0 == r {
                e.1 += d;
                return;
            }
        }
        self.entries.push((r, d));
    }

    /// `(old local max, new local max, total delta)` over the touched
    /// resources.
    fn gains(&self, loads: &[f64]) -> (f64, f64, f64) {
        let mut old_max = f64::NEG_INFINITY;
        let mut new_max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &(r, d) in &self.entries {
            old_max = old_max.max(loads[r]);
            new_max = new_max.max(loads[r] + d);
            sum += d;
        }
        (old_max, new_max, sum)
    }
}

/// Mirror of [`apply_move_delta`]'s arithmetic into a [`DeltaMap`],
/// with `res(a)` supplying the neighbour's current resource (so the
/// second half of a swap sees the first half's relocation).
fn move_into(
    inst: &MappingInstance,
    t: usize,
    from: usize,
    to: usize,
    res: impl Fn(usize) -> usize,
    dm: &mut DeltaMap,
) {
    dm.add(from, -inst.computation(t) * inst.processing_cost(from));
    dm.add(to, inst.computation(t) * inst.processing_cost(to));
    for (a, c) in inst.interactions(t) {
        let b = res(a);
        if b != from {
            dm.add(from, -c * inst.link_cost(from, b));
            dm.add(b, -c * inst.link_cost(b, from));
        }
        if b != to {
            dm.add(to, c * inst.link_cost(to, b));
            dm.add(b, c * inst.link_cost(b, to));
        }
    }
}

fn swap_gains(
    inst: &MappingInstance,
    assign: &[usize],
    loads: &[f64],
    t: usize,
    u: usize,
) -> (f64, f64, f64) {
    let (r_t, r_u) = (assign[t], assign[u]);
    let mut dm = DeltaMap::new();
    move_into(inst, t, r_t, r_u, |a| assign[a], &mut dm);
    move_into(
        inst,
        u,
        r_u,
        r_t,
        |a| if a == t { r_u } else { assign[a] },
        &mut dm,
    );
    dm.gains(loads)
}

fn move_gains(
    inst: &MappingInstance,
    assign: &[usize],
    loads: &[f64],
    t: usize,
    to: usize,
) -> (f64, f64, f64) {
    let mut dm = DeltaMap::new();
    move_into(inst, t, assign[t], to, |a| assign[a], &mut dm);
    dm.gains(loads)
}

/// The task interacting with `t` over the largest volume (smallest id
/// on ties); `None` for isolated tasks.
fn heaviest_neighbour(inst: &MappingInstance, t: usize) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for (a, c) in inst.interactions(t) {
        let better = match best {
            None => true,
            Some((bc, ba)) => c > bc || (c == bc && a < ba),
        };
        if better {
            best = Some((c, a));
        }
    }
    best.map(|(_, a)| a)
}

fn scan(loads: &[f64]) -> (f64, f64) {
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &l in loads {
        max = max.max(l);
        sum += l;
    }
    (max, sum)
}

/// Is the proposal's local score an improvement worth ranking?
fn improves(old_max: f64, new_max: f64, sum: f64) -> bool {
    new_max < old_max || (new_max <= old_max && sum < 0.0)
}

/// One propose-and-commit refinement pass.
///
/// `assign`/`loads` must be consistent on entry and are on exit. `inv`
/// is the resource→task inverse, maintained only in square (swap) mode;
/// pass an empty vec in move mode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn refine_pass(
    inst: &MappingInstance,
    assign: &mut [usize],
    inv: &mut [usize],
    loads: &mut [f64],
    square: bool,
    pass_seed: u64,
    candidates: usize,
    threads: usize,
) -> PassStats {
    let n = inst.n_tasks();
    let n_r = inst.n_resources();
    let partner_range = if square { n } else { n_r };
    let assign_ro: &[usize] = assign;
    let loads_ro: &[f64] = loads;
    let inv_ro: &[usize] = inv;

    let results: Vec<(Option<Proposal>, u64)> = parallel_map(n, threads, |t| {
        let mut rng = SplitMix64::stream(pass_seed, t as u64);
        let mut evals = 0u64;
        let mut best: Option<Proposal> = None;
        for i in 0..candidates + 1 {
            let partner = if i < candidates {
                (rng.next_u64() % partner_range as u64) as usize
            } else {
                // Guided: chase the heaviest neighbour's resource.
                let Some(a) = heaviest_neighbour(inst, t) else {
                    continue;
                };
                let r_a = assign_ro[a];
                if square {
                    inv_ro[r_a]
                } else {
                    r_a
                }
            };
            let (old_max, new_max, sum) = if square {
                if partner == t || assign_ro[partner] == assign_ro[t] {
                    continue;
                }
                evals += 1;
                swap_gains(inst, assign_ro, loads_ro, t, partner)
            } else {
                if partner == assign_ro[t] {
                    continue;
                }
                evals += 1;
                move_gains(inst, assign_ro, loads_ro, t, partner)
            };
            if !improves(old_max, new_max, sum) {
                continue;
            }
            let p = Proposal {
                t: t as u32,
                partner: partner as u32,
                gain_max: old_max - new_max,
                delta_sum: sum,
            };
            let better = match &best {
                None => true,
                Some(b) => match p.gain_max.total_cmp(&b.gain_max) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => {
                        p.delta_sum < b.delta_sum
                            || (p.delta_sum == b.delta_sum && p.partner < b.partner)
                    }
                },
            };
            if better {
                best = Some(p);
            }
        }
        (best, evals)
    });

    let evaluations: u64 = results.iter().map(|(_, e)| e).sum();
    let mut props: Vec<Proposal> = results.into_iter().filter_map(|(p, _)| p).collect();
    props.sort_by(|a, b| {
        b.gain_max
            .total_cmp(&a.gain_max)
            .then(a.delta_sum.total_cmp(&b.delta_sum))
            .then(a.t.cmp(&b.t))
            .then(a.partner.cmp(&b.partner))
    });

    let mut touched = vec![false; n];
    let (mut cur_max, mut cur_sum) = scan(loads);
    let mut accepted = 0usize;
    for p in &props {
        let t = p.t as usize;
        if square {
            let u = p.partner as usize;
            if touched[t] || touched[u] {
                continue;
            }
            apply_swap_delta(inst, assign, loads, t, u);
            let (new_max, new_sum) = scan(loads);
            if new_max < cur_max || (new_max <= cur_max && new_sum < cur_sum) {
                cur_max = new_max;
                cur_sum = new_sum;
                touched[t] = true;
                touched[u] = true;
                inv[assign[t]] = t;
                inv[assign[u]] = u;
                accepted += 1;
            } else {
                apply_swap_delta(inst, assign, loads, t, u);
            }
        } else {
            if touched[t] {
                continue;
            }
            let to = p.partner as usize;
            let from = assign[t];
            if from == to {
                continue;
            }
            apply_move_delta(inst, assign, loads, t, to);
            let (new_max, new_sum) = scan(loads);
            if new_max < cur_max || (new_max <= cur_max && new_sum < cur_sum) {
                cur_max = new_max;
                cur_sum = new_sum;
                touched[t] = true;
                accepted += 1;
            } else {
                apply_move_delta(inst, assign, loads, t, from);
            }
        }
    }

    // Full Eq. 1 as the debug oracle: the incremental loads (including
    // any revert round-trips) must track a fresh recomputation.
    #[cfg(debug_assertions)]
    {
        let fresh = match_core::exec_per_resource(inst, assign);
        for (s, (&inc, &full)) in loads.iter().zip(&fresh).enumerate() {
            let tol = 1e-9 * full.abs().max(1.0);
            debug_assert!(
                (inc - full).abs() <= tol,
                "incremental load drifted on resource {s}: {inc} vs {full}"
            );
        }
    }

    PassStats {
        accepted,
        evaluations,
        best: cur_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::{exec_per_resource, exec_time, Mapping};
    use match_graph::gen::InstanceGenerator;
    use match_rngutil::random_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_inst(n: usize, seed: u64) -> MappingInstance {
        MappingInstance::from_pair(
            &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(seed)),
        )
    }

    fn run_pass(inst: &MappingInstance, threads: usize) -> (Vec<usize>, f64, usize) {
        let n = inst.n_tasks();
        let mut assign = random_permutation(n, &mut StdRng::seed_from_u64(77));
        let mut inv = vec![0usize; n];
        for (t, &s) in assign.iter().enumerate() {
            inv[s] = t;
        }
        let mut loads = exec_per_resource(inst, &assign);
        let mut accepted = 0;
        for pass in 0..3u64 {
            let stats = refine_pass(
                inst,
                &mut assign,
                &mut inv,
                &mut loads,
                true,
                1000 + pass,
                4,
                threads,
            );
            accepted += stats.accepted;
        }
        let cost = exec_time(inst, &assign);
        (assign, cost, accepted)
    }

    #[test]
    fn refinement_improves_and_stays_bijective() {
        let inst = paper_inst(24, 21);
        let start = exec_time(
            &inst,
            &random_permutation(24, &mut StdRng::seed_from_u64(77)),
        );
        let (assign, cost, accepted) = run_pass(&inst, 1);
        assert!(accepted > 0, "no swap accepted on a random start");
        assert!(
            cost < start,
            "refinement failed to improve {start} -> {cost}"
        );
        Mapping::new(assign).validate(&inst).expect("bijective");
    }

    #[test]
    fn passes_are_bit_identical_across_thread_counts() {
        let inst = paper_inst(32, 22);
        let (a1, c1, _) = run_pass(&inst, 1);
        let (a2, c2, _) = run_pass(&inst, 2);
        let (a8, c8, _) = run_pass(&inst, 8);
        assert_eq!(a1, a2);
        assert_eq!(a1, a8);
        assert_eq!(c1.to_bits(), c2.to_bits());
        assert_eq!(c1.to_bits(), c8.to_bits());
    }

    #[test]
    fn move_mode_refines_rectangular_instances() {
        let pair = InstanceGenerator::paper_family(18).generate(&mut StdRng::seed_from_u64(23));
        let plat = InstanceGenerator::paper_family(5)
            .generate(&mut StdRng::seed_from_u64(24))
            .resources;
        let inst = MappingInstance::new(&pair.tig, &plat);
        let mut assign: Vec<usize> = (0..18).map(|t| t % 5).collect();
        let mut loads = exec_per_resource(&inst, &assign);
        let start = scan(&loads).0;
        let mut inv = Vec::new();
        let mut accepted = 0;
        for pass in 0..4u64 {
            let stats = refine_pass(
                &inst,
                &mut assign,
                &mut inv,
                &mut loads,
                false,
                500 + pass,
                4,
                2,
            );
            accepted += stats.accepted;
        }
        assert!(accepted > 0);
        assert!(exec_time(&inst, &assign) < start);
        Mapping::new(assign).validate(&inst).expect("valid mapping");
    }

    #[test]
    fn accepted_swaps_never_worsen_makespan() {
        let inst = paper_inst(20, 25);
        let mut assign = random_permutation(20, &mut StdRng::seed_from_u64(26));
        let mut inv = vec![0usize; 20];
        for (t, &s) in assign.iter().enumerate() {
            inv[s] = t;
        }
        let mut loads = exec_per_resource(&inst, &assign);
        let mut prev = scan(&loads).0;
        for pass in 0..5u64 {
            refine_pass(
                &inst,
                &mut assign,
                &mut inv,
                &mut loads,
                true,
                9000 + pass,
                3,
                1,
            );
            let cur = exec_time(&inst, &assign);
            assert!(
                cur <= prev + 1e-9 * prev,
                "pass {pass} worsened makespan {prev} -> {cur}"
            );
            prev = cur;
        }
    }
}
