//! The multilevel driver: coarsen, solve the coarsest level with an
//! existing paper-scale heuristic, then project and refine level by
//! level.
//!
//! Levels are numbered `L0` (the input instance) up to `L<depth>` (the
//! coarsest); telemetry emits `coarsen`, `solve@L<depth>` and one
//! `refine@L<k>` span per descent level, plus one `Iter` event per
//! refinement pass, so `matchctl report` shows the phase budget of the
//! hierarchy and the per-pass best curve feeds the golden-trajectory
//! harness.
//!
//! RNG discipline: one `next_u64` is drawn from the caller's RNG as the
//! run master seed; the coarse solve runs on `rng_from(master, 1)` and
//! every `(level, pass)` derives its own seed by label. Nothing else
//! touches the caller's stream, and no phase's randomness depends on
//! thread count, so whole runs are bit-identical across 1/2/8 threads.

use crate::coarsen::coarsen;
use crate::project::project;
use crate::refine::refine_pass;
use match_core::{
    exec_per_resource, exec_time, record_run_end, record_run_start, EvalBackend, Mapper,
    MapperOutcome, Mapping, MappingInstance, MatchConfig, Matcher, MultilevelConfig, SamplerMode,
    StopToken,
};
use match_ga::{FastMapGa, GaConfig};
use match_rngutil::{derive_seed_str, rng_from};
use match_telemetry::{Event, IterEvent, NullRecorder, Recorder, Span};
use rand::rngs::StdRng;
use rand::RngCore;
use std::time::Instant;

/// Which existing heuristic solves the coarsest instance.
///
/// Both arms pin [`SamplerMode::Batched`]: `Auto` resolves against the
/// thread count, which would break the driver's bit-identity guarantee
/// across thread counts. The inner run is never traced — the driver
/// emits its own telemetry envelope.
#[derive(Debug, Clone)]
pub enum CoarseSolver {
    /// MaTCH CE (the paper's solver) with this configuration.
    Ce(MatchConfig),
    /// FastMap-GA with this configuration. Rectangular coarsest
    /// instances fall back to CE's many-to-one model (the GA's
    /// permutation encoding needs a square instance).
    Ga(GaConfig),
}

impl CoarseSolver {
    /// Default coarse solver: batched CE with the paper configuration.
    pub fn default_ce() -> Self {
        CoarseSolver::Ce(MatchConfig {
            sampler: SamplerMode::Batched,
            ..MatchConfig::default()
        })
    }

    fn solve(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        stop: &StopToken,
        backend: EvalBackend,
    ) -> MapperOutcome {
        match self {
            CoarseSolver::Ce(cfg) => {
                let matcher = Matcher::new(MatchConfig {
                    sampler: SamplerMode::Batched,
                    backend,
                    ..cfg.clone()
                });
                if inst.is_square() {
                    matcher
                        .run_controlled(inst, rng, &mut NullRecorder, stop)
                        .into_mapper_outcome()
                } else {
                    matcher.run_many_to_one(inst, rng).into_mapper_outcome()
                }
            }
            CoarseSolver::Ga(cfg) => {
                if inst.is_square() {
                    FastMapGa::new(GaConfig {
                        sampler: SamplerMode::Batched,
                        backend,
                        ..cfg.clone()
                    })
                    .run_controlled(inst, rng, &mut NullRecorder, stop)
                    .outcome
                } else {
                    Matcher::new(MatchConfig {
                        sampler: SamplerMode::Batched,
                        backend,
                        ..MatchConfig::default()
                    })
                    .run_many_to_one(inst, rng)
                    .into_mapper_outcome()
                }
            }
        }
    }
}

/// The multilevel coarsen–solve–refine mapper.
pub struct MultilevelMapper {
    config: MultilevelConfig,
    coarse: CoarseSolver,
}

impl MultilevelMapper {
    /// A driver with the given knobs and the default CE coarse solver.
    pub fn new(config: MultilevelConfig) -> Self {
        MultilevelMapper {
            config,
            coarse: CoarseSolver::default_ce(),
        }
    }

    /// Replace the coarse solver.
    pub fn with_coarse_solver(mut self, coarse: CoarseSolver) -> Self {
        self.coarse = coarse;
        self
    }

    /// The driver's configuration.
    pub fn config(&self) -> &MultilevelConfig {
        &self.config
    }

    fn solve_impl(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        self.config.validate();
        let start = Instant::now();
        let master = rng.next_u64();
        record_run_start(recorder, "multilevel", inst);

        let span = Span::start("coarsen", 0);
        let hier = coarsen(inst, self.config.coarsen_target);
        span.finish(recorder);

        let depth = hier.depth();
        let span = Span::start(format!("solve@L{depth}"), 0);
        let mut coarse_rng = rng_from(master, 1);
        let coarse_out = self.coarse.solve(
            hier.coarsest(inst),
            &mut coarse_rng,
            stop,
            self.config.backend,
        );
        span.finish(recorder);

        let mut evaluations = coarse_out.evaluations;
        let mut iterations = 0usize;
        let mut iter_no = 0u64;
        let mut assign: Vec<usize> = coarse_out.mapping.as_slice().to_vec();

        if depth == 0 {
            self.refine_level(
                inst,
                &mut assign,
                master,
                0,
                recorder,
                stop,
                &mut evaluations,
                &mut iterations,
                &mut iter_no,
            );
        } else {
            for i in (0..depth).rev() {
                let fine_inst = if i == 0 {
                    inst
                } else {
                    &hier.levels[i - 1].inst
                };
                assign = project(&hier.levels[i], fine_inst.n_resources(), &assign);
                self.refine_level(
                    fine_inst,
                    &mut assign,
                    master,
                    i,
                    recorder,
                    stop,
                    &mut evaluations,
                    &mut iterations,
                    &mut iter_no,
                );
            }
        }

        let cost = exec_time(inst, &assign);
        let outcome = MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations,
            iterations,
            elapsed: start.elapsed(),
        };
        record_run_end(recorder, &outcome);
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn refine_level(
        &self,
        inst: &MappingInstance,
        assign: &mut [usize],
        master: u64,
        level: usize,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
        evaluations: &mut u64,
        iterations: &mut usize,
        iter_no: &mut u64,
    ) {
        if self.config.refine_passes == 0 || stop.should_stop() {
            return;
        }
        let square = inst.is_square();
        let mut inv = vec![0usize; if square { inst.n_resources() } else { 0 }];
        if square {
            for (t, &s) in assign.iter().enumerate() {
                inv[s] = t;
            }
        }
        let mut loads = exec_per_resource(inst, assign);
        let span = Span::start(format!("refine@L{level}"), *iter_no);
        for pass in 0..self.config.refine_passes {
            if stop.should_stop() {
                break;
            }
            let pass_seed = derive_seed_str(master, &format!("refine/L{level}/p{pass}"));
            let pass_start = Instant::now();
            let stats = refine_pass(
                inst,
                assign,
                &mut inv,
                &mut loads,
                square,
                pass_seed,
                self.config.refine_candidates,
                self.config.threads,
            );
            *evaluations += stats.evaluations;
            *iterations += 1;
            if recorder.enabled() {
                recorder.record(Event::Iter(IterEvent {
                    iter: *iter_no,
                    best: stats.best,
                    mean: stats.best,
                    gamma: None,
                    elite_size: stats.accepted as u64,
                    wall_ns: pass_start.elapsed().as_nanos() as u64,
                }));
            }
            *iter_no += 1;
            if stats.accepted == 0 {
                break;
            }
        }
        span.finish(recorder);
    }
}

impl Mapper for MultilevelMapper {
    fn name(&self) -> &str {
        "multilevel"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.solve_impl(inst, rng, &mut NullRecorder, &StopToken::never())
    }

    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.solve_impl(inst, rng, recorder, &StopToken::never())
    }

    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        self.solve_impl(inst, rng, recorder, stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::InstanceGenerator;
    use match_telemetry::MemoryRecorder;
    use rand::SeedableRng;

    fn paper_inst(n: usize, seed: u64) -> MappingInstance {
        MappingInstance::from_pair(
            &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(seed)),
        )
    }

    fn mapper() -> MultilevelMapper {
        MultilevelMapper::new(MultilevelConfig {
            coarsen_target: 12,
            ..MultilevelConfig::default()
        })
    }

    #[test]
    fn solves_beyond_paper_scale_to_a_valid_permutation() {
        let inst = paper_inst(40, 31);
        let out = mapper().map(&inst, &mut StdRng::seed_from_u64(5));
        out.mapping.validate(&inst).expect("valid bijection");
        assert_eq!(
            out.cost.to_bits(),
            exec_time(&inst, out.mapping.as_slice()).to_bits()
        );
        assert!(out.evaluations > 0);
        assert!(out.iterations > 0, "refinement passes must be counted");
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let inst = paper_inst(36, 32);
        let outs: Vec<MapperOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                MultilevelMapper::new(MultilevelConfig {
                    coarsen_target: 10,
                    threads,
                    ..MultilevelConfig::default()
                })
                .map(&inst, &mut StdRng::seed_from_u64(6))
            })
            .collect();
        for o in &outs[1..] {
            assert_eq!(o.mapping.as_slice(), outs[0].mapping.as_slice());
            assert_eq!(o.cost.to_bits(), outs[0].cost.to_bits());
            assert_eq!(o.evaluations, outs[0].evaluations);
        }
    }

    #[test]
    fn eval_backends_produce_identical_multilevel_runs() {
        // The coarse solve is the only stage using the batch kernels
        // (refinement scores candidates via O(degree) deltas), and the
        // coarse link matrices carry non-zero diagonals — this pins the
        // masked lane variant to the scalar trajectory end to end.
        let inst = paper_inst(36, 32);
        let run = |backend: EvalBackend, threads: usize| {
            MultilevelMapper::new(MultilevelConfig {
                coarsen_target: 10,
                threads,
                backend,
                ..MultilevelConfig::default()
            })
            .map(&inst, &mut StdRng::seed_from_u64(6))
        };
        let base = run(EvalBackend::Scalar, 1);
        for backend in [EvalBackend::Simd, EvalBackend::Auto] {
            for threads in [1, 2, 8] {
                let other = run(backend, threads);
                assert_eq!(
                    other.mapping.as_slice(),
                    base.mapping.as_slice(),
                    "{backend:?} threads={threads}"
                );
                assert_eq!(
                    other.cost.to_bits(),
                    base.cost.to_bits(),
                    "{backend:?} threads={threads}"
                );
                assert_eq!(other.evaluations, base.evaluations);
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let inst = paper_inst(30, 33);
        let m = mapper();
        let a = m.map(&inst, &mut StdRng::seed_from_u64(7));
        let b = m.map(&inst, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.mapping.as_slice(), b.mapping.as_slice());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        let c = m.map(&inst, &mut StdRng::seed_from_u64(8));
        assert!(
            c.mapping.as_slice() != a.mapping.as_slice() || c.cost != a.cost,
            "different seeds should explore differently"
        );
    }

    #[test]
    fn handles_rectangular_instances() {
        let pair = InstanceGenerator::paper_family(22).generate(&mut StdRng::seed_from_u64(34));
        let plat = InstanceGenerator::paper_family(6)
            .generate(&mut StdRng::seed_from_u64(35))
            .resources;
        let inst = MappingInstance::new(&pair.tig, &plat);
        let out = mapper().map(&inst, &mut StdRng::seed_from_u64(9));
        out.mapping
            .validate(&inst)
            .expect("valid many-to-one mapping");
        assert_eq!(
            out.cost.to_bits(),
            exec_time(&inst, out.mapping.as_slice()).to_bits()
        );
    }

    #[test]
    fn small_instances_skip_coarsening_but_still_refine() {
        let inst = paper_inst(8, 36);
        let mut rec = MemoryRecorder::new();
        let out = mapper().map_traced(&inst, &mut StdRng::seed_from_u64(10), &mut rec);
        out.mapping.validate(&inst).expect("valid");
        let spans: Vec<String> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s.name.to_string()),
                _ => None,
            })
            .collect();
        assert!(spans.iter().any(|s| s == "coarsen"));
        assert!(spans.iter().any(|s| s == "solve@L0"));
        assert!(spans.iter().any(|s| s == "refine@L0"));
    }

    #[test]
    fn telemetry_names_every_level() {
        let inst = paper_inst(40, 37);
        let mut rec = MemoryRecorder::new();
        let m = MultilevelMapper::new(MultilevelConfig {
            coarsen_target: 10,
            ..MultilevelConfig::default()
        });
        let out = m.map_traced(&inst, &mut StdRng::seed_from_u64(11), &mut rec);
        // 40 -> 20 -> 10: two coarse levels.
        let spans: Vec<String> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) => Some(s.name.to_string()),
                _ => None,
            })
            .collect();
        for expected in ["coarsen", "solve@L2", "refine@L1", "refine@L0"] {
            assert!(
                spans.iter().any(|s| s == expected),
                "missing span {expected} in {spans:?}"
            );
        }
        let iters = rec
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Iter(_)))
            .count();
        assert_eq!(iters, out.iterations, "one Iter event per refine pass");
        // Tracing must not perturb the trajectory.
        let untraced = m.map(&inst, &mut StdRng::seed_from_u64(11));
        assert_eq!(untraced.mapping.as_slice(), out.mapping.as_slice());
        assert_eq!(untraced.cost.to_bits(), out.cost.to_bits());
    }

    #[test]
    fn ga_coarse_solver_works() {
        let inst = paper_inst(30, 38);
        let m = MultilevelMapper::new(MultilevelConfig {
            coarsen_target: 12,
            ..MultilevelConfig::default()
        })
        .with_coarse_solver(CoarseSolver::Ga(GaConfig {
            population: 60,
            generations: 20,
            ..GaConfig::paper_default()
        }));
        let out = m.map(&inst, &mut StdRng::seed_from_u64(12));
        out.mapping.validate(&inst).expect("valid");
    }

    #[test]
    fn cancellation_still_returns_a_valid_fine_mapping() {
        use match_core::StopFlag;
        let inst = paper_inst(40, 39);
        let flag = StopFlag::new();
        flag.trip();
        let out = mapper().map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(13),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        out.mapping
            .validate(&inst)
            .expect("projection must complete even when cancelled");
    }
}
