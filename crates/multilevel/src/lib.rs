//! `match-multilevel` — the coarsen–solve–refine driver that takes the
//! paper's solver past its `N = 2|V_r|²` sampling wall.
//!
//! MaTCH's CE sampler draws `2n²` mappings per iteration, which caps
//! the flat solver at the paper's n ≈ 50. Following the multilevel
//! scheme of *Shared-Memory Hierarchical Process Mapping* (Schulz &
//! Woydt), this crate:
//!
//! 1. [`coarsen`]s the instance by iterated heavy-edge matching —
//!    merging the task pairs that communicate the most, so the
//!    communication a coarse level can no longer see is exactly the
//!    communication any mapping of it keeps free — until at most
//!    `coarsen_target` (default 48, paper scale) tasks remain. Square
//!    instances coarsen the platform in lockstep along cheapest links,
//!    keeping every level inside the paper's bijective GenPerm regime.
//! 2. Solves the coarsest level with an existing heuristic — batched CE
//!    or FastMap-GA via [`CoarseSolver`] — at full paper fidelity,
//!    since the instance is back at paper scale.
//! 3. [`project`]s the mapping down one level at a time and runs
//!    delta-cost local refinement (parallel proposals over `match-par`,
//!    per-task `SplitMix64` streams, sequential deterministic commit
//!    through `apply_swap_delta`/`apply_move_delta`), bit-identical
//!    across thread counts.
//!
//! The driver implements [`match_core::Mapper`] under the name
//! `"multilevel"` and is registered in `matchctl solve` and the
//! `match-serve` registry.
//!
//! [`coarsen`]: coarsen::coarsen
//! [`project`]: project::project

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod driver;
pub mod project;
mod refine;

pub use coarsen::{coarsen, coarsen_step, CoarseLevel, Hierarchy};
pub use driver::{CoarseSolver, MultilevelMapper};
pub use match_core::MultilevelConfig;
pub use project::project;
