//! Iterated heavy-edge coarsening of a mapping instance.
//!
//! Each step matches task pairs along the heaviest interaction edges
//! (ties broken by vertex id, so the matching is a pure function of the
//! instance), merges matched pairs, sums their computation weights, and
//! collapses parallel edges by summing volumes. Intra-pair edges vanish
//! from the coarse graph — their weight is *absorbed*: any mapping
//! keeps a merged pair co-located, so Eq. 1 charges nothing for that
//! communication, which is exactly why heavy edges are the right ones
//! to hide first.
//!
//! On square instances the platform is coarsened in lockstep (resource
//! pairs matched along the *cheapest* links, the dual of heavy-edge:
//! close resources act as one), so every level stays square and the
//! paper's bijective GenPerm machinery applies unchanged at the
//! coarsest level. On rectangular instances only tasks are coarsened
//! and the coarse solve falls back to the many-to-one model.
//!
//! Both matchings force exactly `⌊n/2⌋` merges per step (leftover free
//! vertices are paired in index order), so the vertex count halves
//! every level and the hierarchy has `O(log n)` depth regardless of the
//! edge structure.

use match_core::MappingInstance;
use std::collections::BTreeMap;

/// One coarsening step: the coarse instance plus the maps projecting
/// the *parent* level's vertices onto it.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarse instance.
    pub inst: MappingInstance,
    /// Coarse task id of each parent-level task.
    pub task_parent: Vec<u32>,
    /// Coarse resource id of each parent-level resource; `None` when
    /// the platform was carried through unchanged (rectangular path).
    pub res_parent: Option<Vec<u32>>,
    /// Total interaction volume that became intra-cluster at this step.
    /// Conservation invariant: coarse total edge weight + absorbed
    /// equals the parent's total edge weight.
    pub absorbed_comm: f64,
}

/// The coarsening hierarchy. `levels[0]`'s parent is the input
/// instance; `levels.last()` is the coarsest level.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// Coarse levels, finest first.
    pub levels: Vec<CoarseLevel>,
}

impl Hierarchy {
    /// Number of coarse levels (0 when the input was already at or
    /// below the coarsen target).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The coarsest instance — the input itself for an empty hierarchy.
    pub fn coarsest<'a>(&'a self, fine: &'a MappingInstance) -> &'a MappingInstance {
        self.levels.last().map(|l| &l.inst).unwrap_or(fine)
    }
}

/// Coarsen `inst` until at most `target` tasks remain. Square inputs
/// are coarsened in lockstep (every level square); rectangular inputs
/// coarsen tasks only.
pub fn coarsen(inst: &MappingInstance, target: usize) -> Hierarchy {
    let lockstep = inst.is_square();
    let mut levels: Vec<CoarseLevel> = Vec::new();
    loop {
        let next = {
            let parent = levels.last().map(|l| &l.inst).unwrap_or(inst);
            if parent.n_tasks() <= target.max(2) {
                break;
            }
            coarsen_step(parent, lockstep)
        };
        levels.push(next);
    }
    Hierarchy { levels }
}

/// One coarsening step of `parent`.
pub fn coarsen_step(parent: &MappingInstance, lockstep: bool) -> CoarseLevel {
    let n = parent.n_tasks();
    let forced = n / 2;
    let task_mate = heavy_edge_mates(parent, forced);
    let (task_parent, task_members) = clusters(&task_mate);
    let n_coarse = task_members.len();

    let task_comp: Vec<f64> = task_members
        .iter()
        .map(|&(a, b)| {
            parent.computation(a as usize) + b.map_or(0.0, |b| parent.computation(b as usize))
        })
        .collect();

    // Collapse parallel edges; BTreeMap keeps accumulation order (and
    // therefore float sums) deterministic.
    let mut acc: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    let mut absorbed = 0.0;
    for t in 0..n {
        for (a, c) in parent.interactions(t) {
            if a <= t {
                continue;
            }
            let (cu, cv) = (task_parent[t], task_parent[a]);
            if cu == cv {
                absorbed += c;
            } else {
                *acc.entry((cu.min(cv), cu.max(cv))).or_insert(0.0) += c;
            }
        }
    }
    let edges: Vec<(u32, u32, f64)> = acc.into_iter().map(|((u, v), w)| (u, v, w)).collect();

    if lockstep {
        let r = parent.n_resources();
        debug_assert_eq!(r, n, "lockstep coarsening needs a square parent");
        let res_mate = min_link_mates(parent, forced);
        let (res_parent, res_members) = clusters(&res_mate);
        debug_assert_eq!(res_members.len(), n_coarse);
        let proc_cost: Vec<f64> = res_members
            .iter()
            .map(|&(a, b)| match b {
                Some(b) => {
                    (parent.processing_cost(a as usize) + parent.processing_cost(b as usize)) / 2.0
                }
                None => parent.processing_cost(a as usize),
            })
            .collect();
        let rc = res_members.len();
        let mut link = vec![0.0f64; rc * rc];
        for s in 0..rc {
            for b in 0..rc {
                if s == b {
                    continue;
                }
                let mut sum = 0.0;
                let mut cnt = 0.0;
                for x in member_iter(res_members[s]) {
                    for y in member_iter(res_members[b]) {
                        sum += parent.link_cost(x, y);
                        cnt += 1.0;
                    }
                }
                link[s * rc + b] = sum / cnt;
            }
        }
        CoarseLevel {
            inst: MappingInstance::from_parts(task_comp, &edges, proc_cost, link),
            task_parent,
            res_parent: Some(res_parent),
            absorbed_comm: absorbed,
        }
    } else {
        let rc = parent.n_resources();
        let proc_cost: Vec<f64> = (0..rc).map(|s| parent.processing_cost(s)).collect();
        let mut link = vec![0.0f64; rc * rc];
        for s in 0..rc {
            for b in 0..rc {
                link[s * rc + b] = parent.link_cost(s, b);
            }
        }
        CoarseLevel {
            inst: MappingInstance::from_parts(task_comp, &edges, proc_cost, link),
            task_parent,
            res_parent: None,
            absorbed_comm: absorbed,
        }
    }
}

fn member_iter((a, b): (u32, Option<u32>)) -> impl Iterator<Item = usize> {
    std::iter::once(a as usize).chain(b.map(|b| b as usize))
}

/// Greedy heavy-edge matching forced to exactly `forced` merges:
/// canonical edges sorted by weight descending (ties by endpoint ids),
/// then leftover free vertices paired in index order until the quota is
/// met. Returns `mate[v]` (`== v` for singletons).
fn heavy_edge_mates(parent: &MappingInstance, forced: usize) -> Vec<u32> {
    let n = parent.n_tasks();
    let mut edges: Vec<(f64, u32, u32)> = Vec::with_capacity(parent.adjacency_len() / 2);
    for t in 0..n {
        for (a, c) in parent.interactions(t) {
            if a > t {
                edges.push((c, t as u32, a as u32));
            }
        }
    }
    edges.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    greedy_mates(n, forced, edges.iter().map(|&(_, u, v)| (u, v)))
}

/// Matching over the platform: every resource nominates its cheapest
/// link partner, nominations are taken cheapest-first, and the same
/// forced-quota fallback applies. Merging resources joined by cheap
/// links loses the least routing information: the coarse mean link cost
/// stays close to every member pair's true cost.
fn min_link_mates(parent: &MappingInstance, forced: usize) -> Vec<u32> {
    let r = parent.n_resources();
    let mut cand: Vec<(f64, u32, u32)> = Vec::with_capacity(r);
    for s in 0..r {
        let mut best = f64::INFINITY;
        let mut best_b = usize::MAX;
        for b in 0..r {
            if b != s {
                let c = parent.link_cost(s, b);
                if c < best {
                    best = c;
                    best_b = b;
                }
            }
        }
        if best_b != usize::MAX {
            cand.push((best, s as u32, best_b as u32));
        }
    }
    cand.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    greedy_mates(r, forced, cand.iter().map(|&(_, u, v)| (u, v)))
}

fn greedy_mates(n: usize, forced: usize, pairs: impl Iterator<Item = (u32, u32)>) -> Vec<u32> {
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut merges = 0usize;
    for (u, v) in pairs {
        if merges == forced {
            break;
        }
        let (u, v) = (u as usize, v as usize);
        if u != v && mate[u] == u as u32 && mate[v] == v as u32 {
            mate[u] = v as u32;
            mate[v] = u as u32;
            merges += 1;
        }
    }
    if merges < forced {
        let free: Vec<usize> = (0..n).filter(|&v| mate[v] == v as u32).collect();
        for pair in free.chunks(2) {
            if merges == forced {
                break;
            }
            if let [u, v] = *pair {
                mate[u] = v as u32;
                mate[v] = u as u32;
                merges += 1;
            }
        }
    }
    debug_assert_eq!(merges, forced, "forced matching quota not met");
    mate
}

/// Number coarse clusters in first-encounter order. Returns the
/// parent→coarse map and, per coarse id, its members `(low, Some(high))`
/// or `(v, None)` for singletons.
fn clusters(mate: &[u32]) -> (Vec<u32>, Vec<(u32, Option<u32>)>) {
    let n = mate.len();
    let mut parent_map = vec![u32::MAX; n];
    let mut members: Vec<(u32, Option<u32>)> = Vec::new();
    for v in 0..n {
        if parent_map[v] != u32::MAX {
            continue;
        }
        let id = members.len() as u32;
        let m = mate[v] as usize;
        parent_map[v] = id;
        if m != v {
            parent_map[m] = id;
            members.push((v as u32, Some(m as u32)));
        } else {
            members.push((v as u32, None));
        }
    }
    (parent_map, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::InstanceGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_inst(n: usize, seed: u64) -> MappingInstance {
        MappingInstance::from_pair(
            &InstanceGenerator::paper_family(n).generate(&mut StdRng::seed_from_u64(seed)),
        )
    }

    fn total_edge_weight(inst: &MappingInstance) -> f64 {
        let mut sum = 0.0;
        for t in 0..inst.n_tasks() {
            for (a, c) in inst.interactions(t) {
                if a > t {
                    sum += c;
                }
            }
        }
        sum
    }

    fn total_comp(inst: &MappingInstance) -> f64 {
        (0..inst.n_tasks()).map(|t| inst.computation(t)).sum()
    }

    #[test]
    fn one_step_halves_and_conserves_mass() {
        let inst = paper_inst(20, 3);
        let level = coarsen_step(&inst, true);
        assert_eq!(level.inst.n_tasks(), 10);
        assert_eq!(level.inst.n_resources(), 10);
        let fine_w = total_edge_weight(&inst);
        let coarse_w = total_edge_weight(&level.inst);
        assert!(
            (coarse_w + level.absorbed_comm - fine_w).abs() < 1e-9 * fine_w.max(1.0),
            "edge mass not conserved: {coarse_w} + {} != {fine_w}",
            level.absorbed_comm
        );
        assert!(
            (total_comp(&level.inst) - total_comp(&inst)).abs() < 1e-9 * total_comp(&inst),
            "computation mass not conserved"
        );
    }

    #[test]
    fn odd_size_leaves_one_singleton_per_side() {
        let inst = paper_inst(9, 4);
        let level = coarsen_step(&inst, true);
        assert_eq!(level.inst.n_tasks(), 5);
        assert_eq!(level.inst.n_resources(), 5);
        let singles = level
            .task_parent
            .iter()
            .fold(vec![0usize; 5], |mut acc, &c| {
                acc[c as usize] += 1;
                acc
            });
        assert_eq!(singles.iter().filter(|&&s| s == 1).count(), 1);
        assert_eq!(singles.iter().filter(|&&s| s == 2).count(), 4);
    }

    #[test]
    fn hierarchy_reaches_target_and_stays_square() {
        let inst = paper_inst(50, 5);
        let h = coarsen(&inst, 12);
        assert!(h.depth() >= 2);
        assert!(h.coarsest(&inst).n_tasks() <= 12);
        for level in &h.levels {
            assert!(level.inst.is_square());
            assert!(level.res_parent.is_some());
        }
        // Strictly decreasing level sizes.
        let mut prev = inst.n_tasks();
        for level in &h.levels {
            assert!(level.inst.n_tasks() < prev);
            prev = level.inst.n_tasks();
        }
    }

    #[test]
    fn coarsening_is_deterministic() {
        let inst = paper_inst(30, 6);
        let a = coarsen(&inst, 8);
        let b = coarsen(&inst, 8);
        assert_eq!(a.depth(), b.depth());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.inst, y.inst);
            assert_eq!(x.task_parent, y.task_parent);
            assert_eq!(x.res_parent, y.res_parent);
            assert_eq!(x.absorbed_comm.to_bits(), y.absorbed_comm.to_bits());
        }
    }

    #[test]
    fn rectangular_coarsening_keeps_platform() {
        let pair = InstanceGenerator::paper_family(16).generate(&mut StdRng::seed_from_u64(7));
        let tig = pair.tig;
        let small = InstanceGenerator::paper_family(5)
            .generate(&mut StdRng::seed_from_u64(8))
            .resources;
        let inst = MappingInstance::new(&tig, &small);
        let h = coarsen(&inst, 8);
        assert!(h.depth() >= 1);
        for level in &h.levels {
            assert_eq!(level.inst.n_resources(), 5);
            assert!(level.res_parent.is_none());
        }
        let c = h.coarsest(&inst);
        assert!(c.n_tasks() <= 8);
        for s in 0..5 {
            assert_eq!(c.processing_cost(s), inst.processing_cost(s));
            for b in 0..5 {
                assert_eq!(c.link_cost(s, b), inst.link_cost(s, b));
            }
        }
    }
}
