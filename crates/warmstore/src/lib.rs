//! Persisted warm-start store for converged CE stochastic matrices.
//!
//! Real arrival streams at a mapping service are dominated by
//! near-duplicate task graphs (the same application template resubmitted
//! with slightly different weights), so the converged matrix `P` from one
//! solve is a high-value prior for the next. This crate stores those
//! matrices keyed by a **graph-structure hash** — computed upstream in
//! `match-serve` with edge weights excluded and node costs quantized, so
//! near-duplicates collide on purpose — and round-trips them
//! **bit-exactly** via [`StochasticMatrix::from_raw`] (f64 bit patterns in
//! hex, never re-normalised).
//!
//! Durability model: an append-only text log (one record per line) plus an
//! in-memory index. `put` appends; on reload the last record per key wins.
//! When superseded/evicted records outnumber live ones the log is
//! compacted in place (write temp, rename). [`WarmStore::flush`] flushes
//! the buffered writer **and fsyncs**, which the serve shutdown drain
//! calls so a kill right after drain loses nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use match_ce::StochasticMatrix;

/// One stored warm-start entry: the converged matrix plus the cold-solve
/// statistics that let a warm hit report `iterations_saved` honestly.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmEntry {
    /// Side length of the (square) matrix — the instance's task count.
    pub n: usize,
    /// CE iterations the *cold* solve that produced this matrix took.
    /// Warm hits report `cold_iterations − warm_iterations` as savings.
    pub cold_iterations: u64,
    /// Final cost of the producing solve (diagnostics only).
    pub cost: f64,
    /// The converged row-stochastic matrix, bit-exact.
    pub matrix: StochasticMatrix,
}

struct Slot {
    entry: WarmEntry,
    stamp: u64,
}

struct Log {
    path: PathBuf,
    writer: BufWriter<File>,
}

struct Inner {
    index: HashMap<u64, Slot>,
    stamp: u64,
    cap: usize,
    /// Records in the log file superseded by a later record or evicted —
    /// when they outnumber live entries the log is compacted.
    dead: usize,
    log: Option<Log>,
}

/// Append-only warm-start store with an in-memory LRU index.
///
/// All methods take `&self`; the store is internally locked and safe to
/// share behind an `Arc` between serve workers.
pub struct WarmStore {
    inner: Mutex<Inner>,
}

/// Counters reported by [`WarmStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStoreStats {
    /// Live entries in the index.
    pub entries: usize,
    /// Dead (superseded or evicted) records still sitting in the log.
    pub dead_records: usize,
    /// Whether the store is file-backed.
    pub persistent: bool,
}

impl WarmStore {
    /// A purely in-memory store (tests, `--warm-store` not configured
    /// but warm starts still wanted within one process lifetime).
    ///
    /// `cap` bounds the number of entries; 0 disables storage entirely
    /// (every `get` misses, every `put` is dropped).
    pub fn in_memory(cap: usize) -> Self {
        WarmStore {
            inner: Mutex::new(Inner {
                index: HashMap::new(),
                stamp: 0,
                cap,
                dead: 0,
                log: None,
            }),
        }
    }

    /// Open (or create) a file-backed store, replaying the log into the
    /// in-memory index. Later records win; unparseable lines (torn tail
    /// write from a crash) are skipped.
    pub fn open(path: &Path, cap: usize) -> std::io::Result<Self> {
        let mut index: HashMap<u64, Slot> = HashMap::new();
        let mut stamp = 0u64;
        let mut records = 0usize;
        if path.exists() {
            let reader = BufReader::new(File::open(path)?);
            for line in reader.lines() {
                let line = line?;
                if let Some((key, entry)) = parse_record(&line) {
                    records += 1;
                    stamp += 1;
                    index.insert(key, Slot { entry, stamp });
                }
            }
        }
        // LRU-trim a log that was written under a larger cap.
        let mut dead = records.saturating_sub(index.len());
        while cap > 0 && index.len() > cap {
            if let Some((&key, _)) = index.iter().min_by_key(|(_, s)| s.stamp) {
                index.remove(&key);
                dead += 1;
            }
        }
        let writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        Ok(WarmStore {
            inner: Mutex::new(Inner {
                index,
                stamp,
                cap,
                dead,
                log: Some(Log {
                    path: path.to_path_buf(),
                    writer,
                }),
            }),
        })
    }

    /// Look up the prior for a structure key, refreshing its LRU stamp.
    pub fn get(&self, key: u64) -> Option<WarmEntry> {
        let mut inner = self.inner.lock().expect("warmstore poisoned");
        inner.stamp += 1;
        let stamp = inner.stamp;
        let slot = inner.index.get_mut(&key)?;
        slot.stamp = stamp;
        Some(slot.entry.clone())
    }

    /// Insert or overwrite the entry for a structure key, appending to
    /// the log when file-backed. Evicts the least-recently-used entry
    /// beyond `cap`; compacts the log when dead records outnumber live
    /// ones. I/O errors are returned but leave the index consistent.
    pub fn put(&self, key: u64, entry: WarmEntry) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("warmstore poisoned");
        if inner.cap == 0 {
            return Ok(());
        }
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some(log) = &mut inner.log {
            let mut line = String::new();
            write_record(&mut line, key, &entry);
            log.writer.write_all(line.as_bytes())?;
        }
        if inner.index.insert(key, Slot { entry, stamp }).is_some() {
            inner.dead += 1;
        }
        if inner.index.len() > inner.cap {
            if let Some((&victim, _)) = inner.index.iter().min_by_key(|(_, s)| s.stamp) {
                inner.index.remove(&victim);
                inner.dead += 1;
            }
        }
        if inner.log.is_some() && inner.dead > inner.index.len().max(16) {
            compact(&mut inner)?;
        }
        Ok(())
    }

    /// Flush buffered writes and fsync the log file. A no-op for
    /// in-memory stores. Called from the serve shutdown drain.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("warmstore poisoned");
        if let Some(log) = &mut inner.log {
            log.writer.flush()?;
            log.writer.get_ref().sync_all()?;
        }
        Ok(())
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("warmstore poisoned").index.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store health counters.
    pub fn stats(&self) -> WarmStoreStats {
        let inner = self.inner.lock().expect("warmstore poisoned");
        WarmStoreStats {
            entries: inner.index.len(),
            dead_records: inner.dead,
            persistent: inner.log.is_some(),
        }
    }
}

/// Rewrite the log with only live records (temp file + rename), then
/// reopen the append writer. Resets the dead-record count.
fn compact(inner: &mut Inner) -> std::io::Result<()> {
    let Some(log) = &mut inner.log else {
        return Ok(());
    };
    log.writer.flush()?;
    let tmp = log.path.with_extension("compact.tmp");
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        // Stamp order so a reload preserves LRU recency.
        let mut live: Vec<(&u64, &Slot)> = inner.index.iter().collect();
        live.sort_by_key(|(_, s)| s.stamp);
        let mut line = String::new();
        for (key, slot) in live {
            line.clear();
            write_record(&mut line, *key, &slot.entry);
            w.write_all(line.as_bytes())?;
        }
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, &log.path)?;
    log.writer = BufWriter::new(OpenOptions::new().append(true).open(&log.path)?);
    inner.dead = 0;
    Ok(())
}

/// One record: `v1 <key:hex> <n> <cold_iters> <cost:f64-bits-hex>
/// <n*n f64-bits-hex...>` — all-hex f64 bit patterns make the round
/// trip bit-exact and the file greppable.
fn write_record(out: &mut String, key: u64, entry: &WarmEntry) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "v1 {key:016x} {} {} {:016x}",
        entry.n,
        entry.cold_iterations,
        entry.cost.to_bits()
    );
    for v in entry.matrix.data() {
        let _ = write!(out, " {:016x}", v.to_bits());
    }
    out.push('\n');
}

fn parse_record(line: &str) -> Option<(u64, WarmEntry)> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "v1" {
        return None;
    }
    let key = u64::from_str_radix(parts.next()?, 16).ok()?;
    let n: usize = parts.next()?.parse().ok()?;
    let cold_iterations: u64 = parts.next()?.parse().ok()?;
    let cost = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
    let mut data = Vec::with_capacity(n * n);
    for p in parts {
        data.push(f64::from_bits(u64::from_str_radix(p, 16).ok()?));
    }
    if data.len() != n * n || n == 0 {
        return None;
    }
    Some((
        key,
        WarmEntry {
            n,
            cold_iterations,
            cost,
            matrix: StochasticMatrix::from_raw(n, n, data),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize, iters: u64, seed: f64) -> WarmEntry {
        // Rows that do NOT sum to exactly 1.0 in floating point — the
        // bit-exactness assertions below would catch a normalising
        // constructor sneaking into the reload path.
        let data: Vec<f64> = (0..n * n)
            .map(|i| 0.1 + seed * (i as f64 + 1.0) * 1e-3)
            .collect();
        WarmEntry {
            n,
            cold_iterations: iters,
            cost: 42.5 + seed,
            matrix: StochasticMatrix::from_raw(n, n, data),
        }
    }

    fn assert_bit_equal(a: &WarmEntry, b: &WarmEntry) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.cold_iterations, b.cold_iterations);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.matrix.data().len(), b.matrix.data().len());
        for (x, y) in a.matrix.data().iter().zip(b.matrix.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "warmstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn in_memory_round_trip() {
        let store = WarmStore::in_memory(4);
        assert!(store.get(7).is_none());
        store.put(7, entry(3, 12, 1.0)).unwrap();
        let got = store.get(7).unwrap();
        assert_bit_equal(&got, &entry(3, 12, 1.0));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn cap_zero_disables() {
        let store = WarmStore::in_memory(0);
        store.put(1, entry(2, 5, 1.0)).unwrap();
        assert!(store.get(1).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn lru_eviction_at_cap() {
        let store = WarmStore::in_memory(2);
        store.put(1, entry(2, 1, 1.0)).unwrap();
        store.put(2, entry(2, 2, 2.0)).unwrap();
        // Touch key 1 so key 2 is the LRU victim.
        assert!(store.get(1).is_some());
        store.put(3, entry(2, 3, 3.0)).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(1).is_some());
        assert!(store.get(2).is_none());
        assert!(store.get(3).is_some());
    }

    #[test]
    fn file_backed_reload_is_bit_exact() {
        let path = temp_path("reload");
        let _ = std::fs::remove_file(&path);
        {
            let store = WarmStore::open(&path, 8).unwrap();
            store.put(10, entry(4, 33, 1.0)).unwrap();
            store.put(11, entry(3, 21, 2.0)).unwrap();
            // Overwrite: the reload must surface the later record.
            store.put(10, entry(4, 44, 5.0)).unwrap();
            store.flush().unwrap();
        }
        let store = WarmStore::open(&path, 8).unwrap();
        assert_eq!(store.len(), 2);
        assert_bit_equal(&store.get(10).unwrap(), &entry(4, 44, 5.0));
        assert_bit_equal(&store.get(11).unwrap(), &entry(3, 21, 2.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_line_is_skipped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = WarmStore::open(&path, 8).unwrap();
            store.put(1, entry(2, 9, 1.0)).unwrap();
            store.flush().unwrap();
        }
        // Simulate a crash mid-append: garbage tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "v1 00000000000000ff 2 3 4").unwrap();
        }
        let store = WarmStore::open(&path, 8).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.get(1).is_some());
        assert!(store.get(0xff).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_dead_records() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let store = WarmStore::open(&path, 4).unwrap();
        // Hammer one key: every overwrite is a dead record, so the
        // dead > max(live, 16) threshold must trip and compact.
        for i in 0..40u64 {
            store.put(1, entry(2, i, i as f64)).unwrap();
        }
        store.flush().unwrap();
        assert!(store.stats().dead_records <= 17);
        let lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert!(lines < 40, "log should have been compacted, {lines} lines");
        // The survivor is the latest record.
        let reloaded = WarmStore::open(&path, 4).unwrap();
        assert_bit_equal(&reloaded.get(1).unwrap(), &entry(2, 39, 39.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reload_respects_smaller_cap() {
        let path = temp_path("cap");
        let _ = std::fs::remove_file(&path);
        {
            let store = WarmStore::open(&path, 8).unwrap();
            for k in 0..6u64 {
                store.put(k, entry(2, k, k as f64)).unwrap();
            }
            store.flush().unwrap();
        }
        let store = WarmStore::open(&path, 3).unwrap();
        assert_eq!(store.len(), 3);
        // Most recent three survive the trim.
        assert!(store.get(5).is_some());
        assert!(store.get(4).is_some());
        assert!(store.get(3).is_some());
        assert!(store.get(0).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
