//! Greedy constructive mapping (heaviest-task-first list scheduling).
//!
//! Tasks are placed one at a time in descending order of total load
//! potential (`W^t` plus total interaction volume); each task goes to the
//! resource that minimises the makespan of the *partial* mapping, charging
//! communication only toward already-placed neighbours. On square
//! instances the choice is restricted to still-free resources so the
//! result is a bijection, matching the other heuristics' search space.

use match_core::{exec_time, Mapper, MapperOutcome, Mapping, MappingInstance};
use rand::rngs::StdRng;
use std::time::Instant;

/// The greedy list scheduler. Deterministic — the RNG is unused.
#[derive(Debug, Clone, Default)]
pub struct GreedyMapper;

impl GreedyMapper {
    /// Construct the greedy mapping, returning the assignment and the
    /// number of candidate evaluations performed.
    fn construct(inst: &MappingInstance) -> (Vec<usize>, u64) {
        let n = inst.n_tasks();
        let r = inst.n_resources();
        const UNPLACED: usize = usize::MAX;

        // Order: heaviest first, weight = computation + interaction volume.
        let mut order: Vec<usize> = (0..n).collect();
        let potential = |t: usize| -> f64 {
            inst.computation(t) + inst.interactions(t).map(|(_, c)| c).sum::<f64>()
        };
        order.sort_by(|&a, &b| {
            potential(b)
                .partial_cmp(&potential(a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut assign = vec![UNPLACED; n];
        let mut loads = vec![0.0f64; r];
        let mut free = vec![true; r];
        let mut evals: u64 = 0;

        for &t in &order {
            let mut best_s = usize::MAX;
            let mut best_makespan = f64::INFINITY;
            #[allow(clippy::needless_range_loop)] // s indexes `free` and the instance
            for s in 0..r {
                if inst.is_square() && !free[s] {
                    continue;
                }
                evals += 1;
                // Added cost on s for task t against placed neighbours…
                let mut add_s = inst.computation(t) * inst.processing_cost(s);
                // …and the load increases on the neighbours' resources.
                let mut candidate_makespan = 0.0f64;
                let mut neighbour_adds: Vec<(usize, f64)> = Vec::new();
                for (a, c) in inst.interactions(t) {
                    let b = assign[a];
                    if b != UNPLACED && b != s {
                        add_s += c * inst.link_cost(s, b);
                        neighbour_adds.push((b, c * inst.link_cost(b, s)));
                    }
                }
                for (s2, load) in loads.iter().enumerate() {
                    let mut l = *load;
                    if s2 == s {
                        l += add_s;
                    }
                    for &(b, add) in &neighbour_adds {
                        if b == s2 {
                            l += add;
                        }
                    }
                    candidate_makespan = candidate_makespan.max(l);
                }
                if candidate_makespan < best_makespan {
                    best_makespan = candidate_makespan;
                    best_s = s;
                }
            }
            // Commit.
            let s = best_s;
            assign[t] = s;
            free[s] = false;
            loads[s] += inst.computation(t) * inst.processing_cost(s);
            for (a, c) in inst.interactions(t) {
                let b = assign[a];
                if b != UNPLACED && b != s {
                    loads[s] += c * inst.link_cost(s, b);
                    loads[b] += c * inst.link_cost(b, s);
                }
            }
        }
        (assign, evals)
    }
}

impl Mapper for GreedyMapper {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn map(&self, inst: &MappingInstance, _rng: &mut StdRng) -> MapperOutcome {
        let start = Instant::now();
        let (assign, evals) = GreedyMapper::construct(inst);
        let cost = exec_time(inst, &assign);
        MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations: evals,
            iterations: inst.n_tasks(),
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::exec_time;
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::gen::InstanceGenerator;
    use match_graph::InstancePair;
    use match_rngutil::perm::random_permutation;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn square_output_is_permutation() {
        let inst = instance(12, 1);
        let out = GreedyMapper.map(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn beats_average_random_mapping() {
        let inst = instance(14, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = 0.0;
        for _ in 0..200 {
            acc += exec_time(&inst, &random_permutation(14, &mut rng));
        }
        let random_mean = acc / 200.0;
        let out = GreedyMapper.map(&inst, &mut rng);
        assert!(
            out.cost < random_mean,
            "greedy {} vs random mean {random_mean}",
            out.cost
        );
    }

    #[test]
    fn rectangular_instances_supported() {
        let mut rng = StdRng::seed_from_u64(5);
        let tig = PaperFamilyConfig::new(10).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(4).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let out = GreedyMapper.map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.as_slice().iter().all(|&s| s < 4));
    }

    #[test]
    fn deterministic() {
        let inst = instance(10, 6);
        let a = GreedyMapper.map(&inst, &mut StdRng::seed_from_u64(7));
        let b = GreedyMapper.map(&inst, &mut StdRng::seed_from_u64(99));
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn single_task_instance() {
        let inst = instance(1, 8);
        let out = GreedyMapper.map(&inst, &mut StdRng::seed_from_u64(9));
        assert_eq!(out.mapping.as_slice(), &[0]);
    }
}
