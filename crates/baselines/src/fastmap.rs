//! The FastMap hierarchical scheme (the paper's reference [16],
//! reconstructed).
//!
//! §5 describes FastMap as "a hierarchical mapping strategy using a
//! clustering and distribution technique, in which a GA is used to map
//! the tasks". The pipeline implemented here:
//!
//! 1. **Cluster** the TIG into `|V_r|` clusters by heavy-edge
//!    agglomerative merging (largest communication volume first, with a
//!    balance cap so no cluster exceeds ~2× the average computation
//!    weight) — co-locating chatty tasks so their volume disappears
//!    from the cost (Eq. 1 charges nothing intra-resource).
//! 2. **Coarsen**: build the cluster-level TIG (cluster computation =
//!    summed `W^t`; cluster-pair volume = summed cross volumes).
//! 3. **Map** the (now square) cluster graph with an inner
//!    [`Mapper`] — the GA by default, matching the FastMap-GA of the
//!    paper; MaTCH slots in equally well.
//! 4. **Expand** the cluster mapping back to tasks.
//!
//! On square instances clustering is skipped (every task is its own
//! cluster). The scheme's value shows on many-to-one instances, where
//! flat per-task search spaces dwarf the clustered one.

use match_core::{exec_time, Mapper, MapperOutcome, Mapping, MappingInstance};
use match_graph::graph::Graph;
use match_graph::{InstancePair, ResourceGraph, TaskGraph};
use rand::rngs::StdRng;
use std::time::Instant;

/// Disjoint-set forest for agglomerative clustering.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Cluster the TIG into at most `k` groups; returns `cluster[task]`
/// with dense ids `0..actual_k`.
///
/// Heavy-edge agglomeration: process interactions by descending volume,
/// merging endpoint clusters while (a) more than `k` clusters remain
/// and (b) the merged computation weight stays within `balance_cap ×`
/// the ideal per-cluster weight.
pub fn cluster_tig(tig: &TaskGraph, k: usize, balance_cap: f64) -> Vec<usize> {
    let n = tig.len();
    let k = k.max(1);
    if n == 0 {
        return Vec::new();
    }
    let mut dsu = Dsu::new(n);
    let mut weight: Vec<f64> = (0..n).map(|t| tig.computation(t)).collect();
    let ideal = weight.iter().sum::<f64>() / k as f64;
    let cap = balance_cap.max(1.0) * ideal;
    let mut clusters = n;

    let mut edges: Vec<(usize, usize, f64)> = tig.all_interactions().collect();
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    for (u, v, _) in edges {
        if clusters <= k {
            break;
        }
        let (ru, rv) = (dsu.find(u), dsu.find(v));
        if ru == rv {
            continue;
        }
        if weight[ru] + weight[rv] > cap {
            continue;
        }
        let merged = weight[ru] + weight[rv];
        dsu.union(ru, rv);
        let root = dsu.find(ru);
        weight[root] = merged;
        clusters -= 1;
    }
    // Balance-cap refusals can leave more than k clusters; force-merge
    // the lightest roots until the count fits (they must map somewhere).
    while clusters > k {
        let mut roots: Vec<(usize, f64)> = (0..n)
            .filter(|&t| dsu.find(t) == t)
            .map(|t| (t, weight[t]))
            .collect();
        roots.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let (a, _) = roots[0];
        let (b, _) = roots[1];
        let merged = weight[a] + weight[b];
        dsu.union(a, b);
        let root = dsu.find(a);
        weight[root] = merged;
        clusters -= 1;
    }

    // Dense ids.
    let mut id_of_root = std::collections::HashMap::new();
    let mut out = vec![0usize; n];
    #[allow(clippy::needless_range_loop)] // t indexes `out` and the DSU together
    for t in 0..n {
        let root = dsu.find(t);
        let next = id_of_root.len();
        let id = *id_of_root.entry(root).or_insert(next);
        out[t] = id;
    }
    out
}

/// Build the cluster-level TIG from a clustering with `k` dense ids.
pub fn coarsen_tig(tig: &TaskGraph, cluster: &[usize], k: usize) -> TaskGraph {
    let mut weights = vec![0.0f64; k];
    for (t, &c) in cluster.iter().enumerate() {
        weights[c] += tig.computation(t);
    }
    // Zero-weight clusters cannot exist (every cluster has ≥1 task),
    // but guard against rounding by flooring at a tiny epsilon.
    let mut g = Graph::from_node_weights(weights.into_iter().map(|w| w.max(1e-9)).collect())
        .expect("positive weights");
    let mut volumes = std::collections::HashMap::new();
    for (u, v, c) in tig.all_interactions() {
        let (cu, cv) = (cluster[u], cluster[v]);
        if cu != cv {
            let key = if cu < cv { (cu, cv) } else { (cv, cu) };
            *volumes.entry(key).or_insert(0.0) += c;
        }
    }
    for ((u, v), c) in volumes {
        g.add_edge(u, v, c).expect("fresh edge");
    }
    TaskGraph::new(g).expect("valid coarse TIG")
}

/// The FastMap hierarchical scheme: cluster → coarsen → inner-map →
/// expand.
pub struct FastMapScheme<M: Mapper> {
    inner: M,
    /// Balance cap multiplier for clustering (≥ 1; default 2).
    pub balance_cap: f64,
}

impl<M: Mapper> FastMapScheme<M> {
    /// Wrap an inner mapper (the paper used its GA).
    pub fn new(inner: M) -> Self {
        FastMapScheme {
            inner,
            balance_cap: 2.0,
        }
    }

    /// Access the inner mapper.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Mapper> Mapper for FastMapScheme<M> {
    fn name(&self) -> &str {
        "FastMap-hier"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        let start = Instant::now();
        let n = inst.n_tasks();
        let r = inst.n_resources();

        // Reconstruct graph views from the flattened instance.
        let mut tg = Graph::from_node_weights((0..n).map(|t| inst.computation(t)).collect())
            .expect("positive weights");
        for t in 0..n {
            for (a, c) in inst.interactions(t) {
                if t < a {
                    tg.add_edge(t, a, c).expect("fresh edge");
                }
            }
        }
        let tig = TaskGraph::new(tg).expect("valid TIG");

        let cluster = cluster_tig(&tig, r, self.balance_cap);
        let k = cluster.iter().copied().max().map_or(0, |m| m + 1);

        // Coarse platform: keep all resources (k ≤ r always holds).
        let mut rg = Graph::from_node_weights((0..r).map(|s| inst.processing_cost(s)).collect())
            .expect("positive weights");
        for s in 0..r {
            for b in (s + 1)..r {
                let c = inst.link_cost(s, b);
                if c.is_finite() && c > 0.0 {
                    rg.add_edge(s, b, c).expect("fresh edge");
                }
            }
        }
        let platform = ResourceGraph::new(rg).expect("valid platform");

        let coarse_tig = coarsen_tig(&tig, &cluster, k);
        let coarse_inst = MappingInstance::from_pair(&InstancePair {
            tig: coarse_tig,
            resources: platform,
        });

        let coarse_out = self.inner.map(&coarse_inst, rng);
        // Expand: task → its cluster's resource.
        let assign: Vec<usize> = cluster
            .iter()
            .map(|&c| coarse_out.mapping.resource_of(c))
            .collect();
        let cost = exec_time(inst, &assign);
        MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations: coarse_out.evaluations,
            iterations: coarse_out.iterations,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSearch;
    use match_ga::{FastMapGa, GaConfig};
    use match_graph::gen::paper::PaperFamilyConfig;
    use rand::SeedableRng;

    fn many_to_one_instance(tasks: usize, resources: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let tig = PaperFamilyConfig::new(tasks).generate_tig(&mut rng);
        let platform = PaperFamilyConfig::new(resources).generate_platform(&mut rng);
        MappingInstance::from_pair(&InstancePair {
            tig,
            resources: platform,
        })
    }

    fn tig(n: usize, seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        PaperFamilyConfig::new(n).generate_tig(&mut rng)
    }

    #[test]
    fn clustering_produces_dense_ids_within_k() {
        let t = tig(20, 1);
        for k in [1, 3, 7, 20, 30] {
            let c = cluster_tig(&t, k, 2.0);
            assert_eq!(c.len(), 20);
            let max = c.iter().copied().max().unwrap();
            assert!(max < k.min(20), "k={k}: max id {max}");
            // Dense: every id 0..=max appears.
            for id in 0..=max {
                assert!(c.contains(&id), "k={k}: id {id} missing");
            }
        }
    }

    #[test]
    fn coarsening_conserves_weight_and_volume() {
        let t = tig(15, 2);
        let c = cluster_tig(&t, 4, 2.0);
        let k = c.iter().copied().max().unwrap() + 1;
        let coarse = coarsen_tig(&t, &c, k);
        assert!((coarse.total_computation() - t.total_computation()).abs() < 1e-9);
        // Cross-cluster volume ≤ total volume (intra disappears).
        assert!(coarse.total_comm_volume() <= t.total_comm_volume() + 1e-9);
    }

    #[test]
    fn heavy_edges_merge_first() {
        // A path with one dominant edge: with k = n-1 clusters exactly
        // that edge's endpoints must share a cluster.
        let mut g = Graph::from_node_weights(vec![1.0; 4]).unwrap();
        g.add_edge(0, 1, 5.0).unwrap();
        g.add_edge(1, 2, 100.0).unwrap();
        g.add_edge(2, 3, 5.0).unwrap();
        let t = TaskGraph::new(g).unwrap();
        let c = cluster_tig(&t, 3, 10.0);
        assert_eq!(c[1], c[2], "heaviest edge not merged: {c:?}");
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn scheme_maps_many_to_one_validly() {
        let inst = many_to_one_instance(24, 6, 3);
        let scheme = FastMapScheme::new(FastMapGa::new(GaConfig {
            population: 40,
            generations: 60,
            ..GaConfig::paper_default()
        }));
        let out = scheme.map(&inst, &mut StdRng::seed_from_u64(4));
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.as_slice().iter().all(|&s| s < 6));
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn clustering_beats_flat_random_on_many_to_one() {
        let inst = many_to_one_instance(30, 5, 5);
        let scheme = FastMapScheme::new(RandomSearch::new(2000));
        let flat = RandomSearch::new(2000);
        let hier = scheme.map(&inst, &mut StdRng::seed_from_u64(6));
        let base = flat.map(&inst, &mut StdRng::seed_from_u64(6));
        assert!(
            hier.cost < base.cost,
            "hierarchical {} vs flat {}",
            hier.cost,
            base.cost
        );
    }

    #[test]
    fn square_instance_reduces_to_inner_mapper_space() {
        // With |V_t| = |V_r| the balance cap keeps tasks separate, so
        // the coarse problem has one task per cluster.
        let mut rng = StdRng::seed_from_u64(7);
        let pair = PaperFamilyConfig::new(8).generate(&mut rng);
        let inst = MappingInstance::from_pair(&pair);
        let scheme = FastMapScheme::new(RandomSearch::new(500));
        let out = scheme.map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
    }
}
