//! Simulated annealing over the swap / move neighbourhood.
//!
//! Metropolis acceptance with geometric cooling. The initial temperature
//! is calibrated from the instance itself (mean absolute delta of random
//! moves) so one configuration works across the paper's size sweep.

use match_core::{
    record_run_end, record_run_start, IncrementalCost, Mapper, MapperOutcome, Mapping,
    MappingInstance, StopToken,
};
use match_rngutil::perm::random_permutation;
use match_telemetry::{Event, IterEvent, Recorder};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Simulated-annealing mapper.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Total proposed moves.
    pub iterations: u64,
    /// Geometric cooling factor per step (e.g. `0.9995`).
    pub cooling: f64,
    /// Initial acceptance probability target for an average uphill move
    /// (calibrates the starting temperature).
    pub initial_acceptance: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 200_000,
            cooling: 0.99995,
            initial_acceptance: 0.8,
        }
    }
}

impl SimulatedAnnealing {
    /// An annealer with the given move budget and cooling factor.
    pub fn new(iterations: u64, cooling: f64) -> Self {
        assert!(iterations >= 1, "need at least one move");
        assert!(
            (0.0..1.0).contains(&cooling) || cooling == 1.0,
            "cooling in (0,1]"
        );
        SimulatedAnnealing {
            iterations,
            cooling,
            ..SimulatedAnnealing::default()
        }
    }

    /// Panic with a clear message on nonsensical settings. Called at the
    /// top of [`Mapper::map`].
    pub fn validate(&self) {
        assert!(self.iterations >= 1, "need at least one move");
        assert!(
            self.cooling > 0.0 && self.cooling <= 1.0,
            "cooling in (0,1]"
        );
        assert!(
            self.initial_acceptance > 0.0 && self.initial_acceptance <= 1.0,
            "initial acceptance in (0,1]"
        );
    }

    /// Calibrate T₀ so an average uphill move is accepted with
    /// probability `initial_acceptance`.
    fn initial_temperature(
        &self,
        inc: &mut IncrementalCost<'_>,
        square: bool,
        n: usize,
        r: usize,
        rng: &mut StdRng,
    ) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u32;
        let current = inc.cost();
        for _ in 0..64.min(n * n) {
            let c = if square && n >= 2 {
                let a = rng.random_range(0..n);
                let mut b = rng.random_range(0..n);
                while b == a {
                    b = rng.random_range(0..n);
                }
                inc.peek_swap(a, b)
            } else if n >= 1 && r >= 2 {
                let t = rng.random_range(0..n);
                let s = rng.random_range(0..r);
                inc.peek_move(t, s)
            } else {
                current
            };
            let delta = c - current;
            if delta > 0.0 {
                sum += delta;
                count += 1;
            }
        }
        if count == 0 {
            return 1.0;
        }
        let mean_uphill = sum / count as f64;
        // exp(-Δ/T₀) = p  ⇒  T₀ = Δ / ln(1/p)
        mean_uphill / (1.0 / self.initial_acceptance).ln().max(1e-9)
    }
}

impl Mapper for SimulatedAnnealing {
    fn name(&self) -> &str {
        "SimAnneal"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.map_traced(inst, rng, &mut match_telemetry::NullRecorder)
    }

    /// Telemetry override: one `iter` event per temperature epoch (a
    /// fixed fraction of the move budget), with `gamma` carrying the
    /// current temperature and `elite_size` the moves accepted in the
    /// epoch.
    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.map_controlled(inst, rng, recorder, &StopToken::never())
    }

    /// Cancellation override: the stop token is polled every 1024 moves
    /// (an `Instant::now()` per move would dominate the move itself), so
    /// a fired deadline returns the best-so-far permutation within a
    /// thousand moves. `iterations` reports the moves actually proposed.
    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        self.validate();
        record_run_start(recorder, "SimAnneal", inst);
        let traced = recorder.enabled();
        let start_t = Instant::now();
        let n = inst.n_tasks();
        let r = inst.n_resources();
        let square = inst.is_square();
        let start: Vec<usize> = if square {
            random_permutation(n, rng)
        } else {
            (0..n).map(|_| rng.random_range(0..r)).collect()
        };
        let mut inc = IncrementalCost::new(inst, start.clone());
        let mut best = start;
        let mut best_cost = inc.cost();
        let mut evals: u64 = 1;

        if n < 2 || (!square && r < 2) {
            let outcome = MapperOutcome {
                mapping: Mapping::new(best),
                cost: best_cost,
                evaluations: evals,
                iterations: 0,
                elapsed: start_t.elapsed(),
            };
            record_run_end(recorder, &outcome);
            return outcome;
        }

        let mut temp = self.initial_temperature(&mut inc, square, n, r, rng);
        evals += 64.min((n * n) as u64);

        // A temperature epoch: enough moves that per-epoch events stay
        // cheap even for multi-million-move budgets, capped at 256
        // epochs per run.
        let epoch_len = (self.iterations / 256).max(1);
        let mut epoch: u64 = 0;
        let mut epoch_accepted: u64 = 0;
        let mut epoch_start = traced.then(Instant::now);

        let mut steps_run: u64 = 0;
        for step in 0..self.iterations {
            let current = inc.cost();
            let candidate_cost;
            let op: (usize, usize);
            if square {
                let a = rng.random_range(0..n);
                let mut b = rng.random_range(0..n);
                while b == a {
                    b = rng.random_range(0..n);
                }
                candidate_cost = inc.peek_swap(a, b);
                op = (a, b);
            } else {
                let t = rng.random_range(0..n);
                let s = rng.random_range(0..r);
                candidate_cost = inc.peek_move(t, s);
                op = (t, s);
            }
            evals += 1;
            let delta = candidate_cost - current;
            let accept =
                delta <= 0.0 || (temp > 0.0 && rng.random::<f64>() < (-delta / temp).exp());
            if accept {
                if square {
                    inc.apply_swap(op.0, op.1);
                } else {
                    inc.apply_move(op.0, op.1);
                }
                if candidate_cost < best_cost {
                    best_cost = candidate_cost;
                    best = inc.assign().to_vec();
                }
                epoch_accepted += 1;
            }
            temp *= self.cooling;

            if traced && (step + 1) % epoch_len == 0 {
                recorder.record(Event::Counter {
                    name: "accepted_moves".into(),
                    value: epoch_accepted,
                });
                recorder.record(Event::Iter(IterEvent {
                    iter: epoch,
                    best: best_cost,
                    mean: inc.cost(),
                    gamma: Some(temp),
                    elite_size: epoch_accepted,
                    wall_ns: epoch_start.map_or(0, |t| t.elapsed().as_nanos() as u64),
                }));
                epoch += 1;
                epoch_accepted = 0;
                epoch_start = Some(Instant::now());
            }
            steps_run = step + 1;
            if steps_run.is_multiple_of(1024) && stop.should_stop() {
                break;
            }
        }

        let outcome = MapperOutcome {
            mapping: Mapping::new(best),
            cost: best_cost,
            evaluations: evals,
            iterations: steps_run as usize,
            elapsed: start_t.elapsed(),
        };
        record_run_end(recorder, &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::exec_time;
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::gen::InstanceGenerator;
    use match_graph::InstancePair;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn produces_valid_permutation() {
        let inst = instance(10, 1);
        let sa = SimulatedAnnealing::new(20_000, 0.9995);
        let out = sa.map(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.is_permutation());
        assert!((out.cost - exec_time(&inst, out.mapping.as_slice())).abs() < 1e-9);
    }

    #[test]
    fn improves_over_initial_state() {
        let inst = instance(12, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let initial = exec_time(&inst, &random_permutation(12, &mut rng));
        let sa = SimulatedAnnealing::new(50_000, 0.9998);
        let out = sa.map(&inst, &mut StdRng::seed_from_u64(4));
        assert!(out.cost <= initial, "SA {} vs initial {initial}", out.cost);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = instance(8, 5);
        let sa = SimulatedAnnealing::new(10_000, 0.999);
        let a = sa.map(&inst, &mut StdRng::seed_from_u64(6));
        let b = sa.map(&inst, &mut StdRng::seed_from_u64(6));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn rectangular_instances_supported() {
        let mut rng = StdRng::seed_from_u64(7);
        let tig = PaperFamilyConfig::new(9).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(3).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let sa = SimulatedAnnealing::new(20_000, 0.9995);
        let out = sa.map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
    }

    #[test]
    #[should_panic(expected = "need at least one move")]
    fn zero_iterations_panics() {
        SimulatedAnnealing::new(0, 0.999);
    }

    #[test]
    #[should_panic(expected = "cooling in (0,1]")]
    fn invalid_cooling_panics() {
        let inst = instance(4, 60);
        let sa = SimulatedAnnealing {
            cooling: 0.0,
            ..SimulatedAnnealing::default()
        };
        sa.map(&inst, &mut StdRng::seed_from_u64(61));
    }

    #[test]
    #[should_panic(expected = "initial acceptance in (0,1]")]
    fn invalid_acceptance_panics() {
        let inst = instance(4, 60);
        let sa = SimulatedAnnealing {
            initial_acceptance: 2.0,
            ..SimulatedAnnealing::default()
        };
        sa.map(&inst, &mut StdRng::seed_from_u64(61));
    }

    #[test]
    fn tripped_stop_token_truncates_the_move_budget() {
        use match_core::StopFlag;
        use match_telemetry::NullRecorder;
        let inst = instance(10, 1);
        let sa = SimulatedAnnealing::new(100_000, 0.9995);
        let flag = StopFlag::new();
        flag.trip();
        let out = sa.map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        assert_eq!(out.iterations, 1024, "stops at the first poll point");
        assert!(out.mapping.is_permutation());
        assert!((out.cost - exec_time(&inst, out.mapping.as_slice())).abs() < 1e-9);
    }

    #[test]
    fn never_token_matches_plain_run() {
        use match_telemetry::NullRecorder;
        let inst = instance(8, 5);
        let sa = SimulatedAnnealing::new(10_000, 0.999);
        let plain = sa.map(&inst, &mut StdRng::seed_from_u64(6));
        let controlled = sa.map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(6),
            &mut NullRecorder,
            &StopToken::never(),
        );
        assert_eq!(plain.mapping, controlled.mapping);
        assert_eq!(plain.cost, controlled.cost);
        assert_eq!(plain.iterations, controlled.iterations);
    }

    #[test]
    fn single_task_instance_survives() {
        let inst = instance(1, 8);
        let out = SimulatedAnnealing::default().map(&inst, &mut StdRng::seed_from_u64(9));
        assert_eq!(out.mapping.as_slice(), &[0]);
    }
}
