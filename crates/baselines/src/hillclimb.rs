//! Hill climbing over the swap / move neighbourhood.
//!
//! Steepest-descent local search using the O(degree) incremental deltas
//! of [`match_core::IncrementalCost`]: on square instances the
//! neighbourhood is all task-pair swaps (preserving bijectivity); on
//! rectangular instances it is all single-task moves. Optional random
//! restarts escape local optima within an evaluation budget.

use match_core::{IncrementalCost, Mapper, MapperOutcome, Mapping, MappingInstance};
use match_rngutil::perm::random_permutation;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Steepest-descent hill climber with random restarts.
#[derive(Debug, Clone)]
pub struct HillClimber {
    /// Random restarts (1 = single descent).
    pub restarts: usize,
    /// Evaluation budget across all restarts; the climber stops mid-
    /// descent when exhausted.
    pub max_evaluations: u64,
}

impl Default for HillClimber {
    fn default() -> Self {
        HillClimber {
            restarts: 5,
            max_evaluations: 2_000_000,
        }
    }
}

impl HillClimber {
    /// A climber with the given restart count and evaluation budget.
    pub fn new(restarts: usize, max_evaluations: u64) -> Self {
        assert!(restarts >= 1, "need at least one descent");
        HillClimber {
            restarts,
            max_evaluations,
        }
    }

    /// One full steepest descent from `start`. Returns the local optimum
    /// and the evaluations spent.
    fn descend(
        &self,
        inst: &MappingInstance,
        start: Vec<usize>,
        budget: u64,
    ) -> (Vec<usize>, f64, u64) {
        let n = inst.n_tasks();
        let r = inst.n_resources();
        let square = inst.is_square();
        let mut inc = IncrementalCost::new(inst, start);
        let mut evals: u64 = 1;
        loop {
            let current = inc.cost();
            let mut best_delta_cost = current;
            let mut best_op: Option<(usize, usize)> = None;
            if square {
                'outer_swap: for a in 0..n {
                    for b in (a + 1)..n {
                        if evals >= budget {
                            break 'outer_swap;
                        }
                        evals += 1;
                        let c = inc.peek_swap(a, b);
                        if c < best_delta_cost {
                            best_delta_cost = c;
                            best_op = Some((a, b));
                        }
                    }
                }
            } else {
                'outer_move: for t in 0..n {
                    for s in 0..r {
                        if s == inc.assign()[t] {
                            continue;
                        }
                        if evals >= budget {
                            break 'outer_move;
                        }
                        evals += 1;
                        let c = inc.peek_move(t, s);
                        if c < best_delta_cost {
                            best_delta_cost = c;
                            best_op = Some((t, s));
                        }
                    }
                }
            }
            match best_op {
                Some((a, b)) if best_delta_cost < current => {
                    if square {
                        inc.apply_swap(a, b);
                    } else {
                        inc.apply_move(a, b);
                    }
                }
                _ => break, // local optimum or budget exhausted
            }
            if evals >= budget {
                break;
            }
        }
        let cost = inc.cost();
        (inc.assign().to_vec(), cost, evals)
    }
}

impl Mapper for HillClimber {
    fn name(&self) -> &str {
        "HillClimb"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        let start_t = Instant::now();
        let n = inst.n_tasks();
        let r = inst.n_resources();
        let mut best: Option<Vec<usize>> = None;
        let mut best_cost = f64::INFINITY;
        let mut total_evals: u64 = 0;
        let mut descents = 0usize;
        for _ in 0..self.restarts {
            if total_evals >= self.max_evaluations {
                break;
            }
            let start: Vec<usize> = if inst.is_square() {
                random_permutation(n, rng)
            } else {
                (0..n).map(|_| rng.random_range(0..r)).collect()
            };
            let (assign, cost, evals) =
                self.descend(inst, start, self.max_evaluations - total_evals);
            total_evals += evals;
            descents += 1;
            if cost < best_cost {
                best_cost = cost;
                best = Some(assign);
            }
        }
        MapperOutcome {
            mapping: Mapping::new(best.expect("at least one descent")),
            cost: best_cost,
            evaluations: total_evals,
            iterations: descents,
            elapsed: start_t.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::exec_time;
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::gen::InstanceGenerator;
    use match_graph::InstancePair;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn reaches_local_optimum() {
        let inst = instance(10, 1);
        let out = HillClimber::new(1, 1_000_000).map(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.is_permutation());
        // Verify local optimality: no single swap improves.
        let mut inc = IncrementalCost::new(&inst, out.mapping.as_slice().to_vec());
        let cost = inc.cost();
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert!(
                    inc.peek_swap(a, b) >= cost - 1e-9,
                    "swap ({a},{b}) improves a 'local optimum'"
                );
            }
        }
    }

    #[test]
    fn cost_reported_matches_mapping() {
        let inst = instance(12, 3);
        let out = HillClimber::default().map(&inst, &mut StdRng::seed_from_u64(4));
        assert!((out.cost - exec_time(&inst, out.mapping.as_slice())).abs() < 1e-9);
    }

    #[test]
    fn restarts_never_hurt() {
        let inst = instance(12, 5);
        let one = HillClimber::new(1, 10_000_000).map(&inst, &mut StdRng::seed_from_u64(6));
        let five = HillClimber::new(5, 10_000_000).map(&inst, &mut StdRng::seed_from_u64(6));
        assert!(five.cost <= one.cost);
    }

    #[test]
    fn budget_respected() {
        let inst = instance(15, 7);
        let out = HillClimber::new(10, 500).map(&inst, &mut StdRng::seed_from_u64(8));
        assert!(out.evaluations <= 505, "evaluations {}", out.evaluations);
        assert!(out.mapping.is_permutation());
    }

    #[test]
    fn rectangular_move_neighbourhood() {
        let mut rng = StdRng::seed_from_u64(9);
        let tig = PaperFamilyConfig::new(8).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(3).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let out = HillClimber::new(2, 100_000).map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.as_slice().iter().all(|&s| s < 3));
    }
}
