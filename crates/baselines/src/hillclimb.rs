//! Hill climbing over the swap / move neighbourhood.
//!
//! Steepest-descent local search using the O(degree) incremental deltas
//! of [`match_core::IncrementalCost`]: on square instances the
//! neighbourhood is all task-pair swaps (preserving bijectivity); on
//! rectangular instances it is all single-task moves. Optional random
//! restarts escape local optima within an evaluation budget.

use match_core::{
    record_run_end, record_run_start, IncrementalCost, Mapper, MapperOutcome, Mapping,
    MappingInstance, StopToken,
};
use match_rngutil::perm::random_permutation;
use match_telemetry::{Event, IterEvent, NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Steepest-descent hill climber with random restarts.
#[derive(Debug, Clone)]
pub struct HillClimber {
    /// Random restarts (1 = single descent).
    pub restarts: usize,
    /// Evaluation budget across all restarts; the climber stops mid-
    /// descent when exhausted.
    pub max_evaluations: u64,
}

impl Default for HillClimber {
    fn default() -> Self {
        HillClimber {
            restarts: 5,
            max_evaluations: 2_000_000,
        }
    }
}

impl HillClimber {
    /// A climber with the given restart count and evaluation budget.
    pub fn new(restarts: usize, max_evaluations: u64) -> Self {
        let climber = HillClimber {
            restarts,
            max_evaluations,
        };
        climber.validate();
        climber
    }

    /// Panic with a clear message on nonsensical settings. Called at the
    /// top of [`Mapper::map`].
    pub fn validate(&self) {
        assert!(self.restarts >= 1, "need at least one descent");
        assert!(
            self.max_evaluations >= 1,
            "need a positive evaluation budget"
        );
    }

    /// One full steepest descent from `start`. Returns the local optimum
    /// and the evaluations spent.
    fn descend(
        &self,
        inst: &MappingInstance,
        start: Vec<usize>,
        budget: u64,
        stop: &StopToken,
    ) -> (Vec<usize>, f64, u64) {
        let n = inst.n_tasks();
        let r = inst.n_resources();
        let square = inst.is_square();
        let mut inc = IncrementalCost::new(inst, start);
        let mut evals: u64 = 1;
        loop {
            // Polled once per neighbourhood scan (O(n²) evaluations), so
            // cancellation lands between scans with the state consistent.
            if stop.should_stop() {
                break;
            }
            let current = inc.cost();
            let mut best_delta_cost = current;
            let mut best_op: Option<(usize, usize)> = None;
            if square {
                'outer_swap: for a in 0..n {
                    for b in (a + 1)..n {
                        if evals >= budget {
                            break 'outer_swap;
                        }
                        evals += 1;
                        let c = inc.peek_swap(a, b);
                        if c < best_delta_cost {
                            best_delta_cost = c;
                            best_op = Some((a, b));
                        }
                    }
                }
            } else {
                'outer_move: for t in 0..n {
                    for s in 0..r {
                        if s == inc.assign()[t] {
                            continue;
                        }
                        if evals >= budget {
                            break 'outer_move;
                        }
                        evals += 1;
                        let c = inc.peek_move(t, s);
                        if c < best_delta_cost {
                            best_delta_cost = c;
                            best_op = Some((t, s));
                        }
                    }
                }
            }
            match best_op {
                Some((a, b)) if best_delta_cost < current => {
                    if square {
                        inc.apply_swap(a, b);
                    } else {
                        inc.apply_move(a, b);
                    }
                }
                _ => break, // local optimum or budget exhausted
            }
            if evals >= budget {
                break;
            }
        }
        let cost = inc.cost();
        (inc.assign().to_vec(), cost, evals)
    }
}

impl Mapper for HillClimber {
    fn name(&self) -> &str {
        "HillClimb"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.map_traced(inst, rng, &mut NullRecorder)
    }

    /// Telemetry override: one `iter` event per restart (running best,
    /// the restart's local-optimum cost as `mean`, wall time of the
    /// descent) plus an `evaluations` counter per descent.
    fn map_traced(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
    ) -> MapperOutcome {
        self.map_controlled(inst, rng, recorder, &StopToken::never())
    }

    /// Cancellation override: the stop token is polled between restarts
    /// and between neighbourhood scans inside a descent. The first
    /// descent always returns a valid assignment even when the token is
    /// already tripped at entry.
    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        self.validate();
        record_run_start(recorder, "HillClimb", inst);
        let traced = recorder.enabled();
        let start_t = Instant::now();
        let n = inst.n_tasks();
        let r = inst.n_resources();
        let mut best: Option<Vec<usize>> = None;
        let mut best_cost = f64::INFINITY;
        let mut total_evals: u64 = 0;
        let mut descents = 0usize;
        for restart in 0..self.restarts {
            if total_evals >= self.max_evaluations {
                break;
            }
            if descents > 0 && stop.should_stop() {
                break;
            }
            let descent_start = traced.then(Instant::now);
            let start: Vec<usize> = if inst.is_square() {
                random_permutation(n, rng)
            } else {
                (0..n).map(|_| rng.random_range(0..r)).collect()
            };
            let (assign, cost, evals) =
                self.descend(inst, start, self.max_evaluations - total_evals, stop);
            total_evals += evals;
            descents += 1;
            if cost < best_cost {
                best_cost = cost;
                best = Some(assign);
            }
            if let Some(descent_start) = descent_start {
                recorder.record(Event::Counter {
                    name: "evaluations".into(),
                    value: evals,
                });
                recorder.record(Event::Iter(IterEvent {
                    iter: restart as u64,
                    best: best_cost,
                    mean: cost,
                    gamma: None,
                    elite_size: 0,
                    wall_ns: descent_start.elapsed().as_nanos() as u64,
                }));
            }
        }
        let outcome = MapperOutcome {
            mapping: Mapping::new(best.expect("at least one descent")),
            cost: best_cost,
            evaluations: total_evals,
            iterations: descents,
            elapsed: start_t.elapsed(),
        };
        record_run_end(recorder, &outcome);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::exec_time;
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::gen::InstanceGenerator;
    use match_graph::InstancePair;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn reaches_local_optimum() {
        let inst = instance(10, 1);
        let out = HillClimber::new(1, 1_000_000).map(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.is_permutation());
        // Verify local optimality: no single swap improves.
        let mut inc = IncrementalCost::new(&inst, out.mapping.as_slice().to_vec());
        let cost = inc.cost();
        for a in 0..10 {
            for b in (a + 1)..10 {
                assert!(
                    inc.peek_swap(a, b) >= cost - 1e-9,
                    "swap ({a},{b}) improves a 'local optimum'"
                );
            }
        }
    }

    #[test]
    fn cost_reported_matches_mapping() {
        let inst = instance(12, 3);
        let out = HillClimber::default().map(&inst, &mut StdRng::seed_from_u64(4));
        assert!((out.cost - exec_time(&inst, out.mapping.as_slice())).abs() < 1e-9);
    }

    #[test]
    fn restarts_never_hurt() {
        let inst = instance(12, 5);
        let one = HillClimber::new(1, 10_000_000).map(&inst, &mut StdRng::seed_from_u64(6));
        let five = HillClimber::new(5, 10_000_000).map(&inst, &mut StdRng::seed_from_u64(6));
        assert!(five.cost <= one.cost);
    }

    #[test]
    fn budget_respected() {
        let inst = instance(15, 7);
        let out = HillClimber::new(10, 500).map(&inst, &mut StdRng::seed_from_u64(8));
        assert!(out.evaluations <= 505, "evaluations {}", out.evaluations);
        assert!(out.mapping.is_permutation());
    }

    #[test]
    #[should_panic(expected = "need at least one descent")]
    fn zero_restarts_panics() {
        HillClimber::new(0, 1000);
    }

    #[test]
    #[should_panic(expected = "need a positive evaluation budget")]
    fn zero_budget_panics() {
        let inst = instance(4, 70);
        let climber = HillClimber {
            restarts: 1,
            max_evaluations: 0,
        };
        climber.map(&inst, &mut StdRng::seed_from_u64(71));
    }

    #[test]
    fn tripped_stop_token_stops_after_first_descent_scan() {
        use match_core::StopFlag;
        let inst = instance(10, 1);
        let flag = StopFlag::new();
        flag.trip();
        let out = HillClimber::default().map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        assert_eq!(out.iterations, 1, "only the first restart runs");
        assert!(out.mapping.is_permutation());
        assert!((out.cost - exec_time(&inst, out.mapping.as_slice())).abs() < 1e-9);
    }

    #[test]
    fn never_token_matches_plain_run() {
        let inst = instance(10, 1);
        let plain = HillClimber::default().map(&inst, &mut StdRng::seed_from_u64(2));
        let controlled = HillClimber::default().map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::never(),
        );
        assert_eq!(plain.mapping, controlled.mapping);
        assert_eq!(plain.cost, controlled.cost);
        assert_eq!(plain.evaluations, controlled.evaluations);
    }

    #[test]
    fn rectangular_move_neighbourhood() {
        let mut rng = StdRng::seed_from_u64(9);
        let tig = PaperFamilyConfig::new(8).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(3).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let out = HillClimber::new(2, 100_000).map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.as_slice().iter().all(|&s| s < 3));
    }
}
