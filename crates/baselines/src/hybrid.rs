//! CE + local-search hybrid: MaTCH followed by a hill-climb polish.
//!
//! The reproduction's Table 3 run found that MaTCH's CE plateau sits
//! ~1% above the best known mapping on small instances: once the
//! stochastic matrix concentrates, row-independent sampling almost
//! never proposes the *coordinated* pairwise swaps that close the last
//! gap. A cheap steepest-descent polish over the swap neighbourhood —
//! using the O(degree) incremental deltas — fixes exactly that failure
//! mode. This is the standard memetic refinement; the paper does not
//! include it, so it lives with the baselines as an extension.

use crate::hillclimb::HillClimber;
use match_core::{
    IncrementalCost, Mapper, MapperOutcome, Mapping, MappingInstance, Matcher, StopToken,
};
use match_telemetry::{NullRecorder, Recorder};
use rand::rngs::StdRng;
use std::time::Instant;

/// MaTCH, then steepest-descent swap polish from the CE result.
#[derive(Debug, Clone, Default)]
pub struct PolishedMatcher {
    /// The CE stage.
    pub matcher: Matcher,
    /// Evaluation budget of the polish stage.
    pub polish_budget: u64,
}

impl PolishedMatcher {
    /// Hybrid with the given CE solver and polish budget.
    pub fn new(matcher: Matcher, polish_budget: u64) -> Self {
        PolishedMatcher {
            matcher,
            polish_budget: polish_budget.max(1),
        }
    }

    /// Steepest descent from `start` until a local optimum or the
    /// budget runs out. Returns the assignment, cost and evaluations.
    fn polish(inst: &MappingInstance, start: Vec<usize>, budget: u64) -> (Vec<usize>, f64, u64) {
        let n = inst.n_tasks();
        let mut inc = IncrementalCost::new(inst, start);
        let mut evals: u64 = 1;
        loop {
            let current = inc.cost();
            let mut best = current;
            let mut best_op: Option<(usize, usize)> = None;
            'scan: for a in 0..n {
                for b in (a + 1)..n {
                    if evals >= budget {
                        break 'scan;
                    }
                    evals += 1;
                    let c = inc.peek_swap(a, b);
                    if c < best {
                        best = c;
                        best_op = Some((a, b));
                    }
                }
            }
            match best_op {
                Some((a, b)) if best < current => inc.apply_swap(a, b),
                _ => break,
            }
            if evals >= budget {
                break;
            }
        }
        let cost = inc.cost();
        (inc.assign().to_vec(), cost, evals)
    }
}

impl Mapper for PolishedMatcher {
    fn name(&self) -> &str {
        "MaTCH+polish"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.map_controlled(inst, rng, &mut NullRecorder, &StopToken::never())
    }

    /// Cancellation override: the stop token is threaded into the CE
    /// stage (polled per iteration) and, if it has fired by the time CE
    /// returns, the polish stage is skipped entirely — the CE result is
    /// already valid and the deadline has passed.
    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        _recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        let start = Instant::now();
        let ce = self
            .matcher
            .run_controlled(inst, rng, &mut NullRecorder, stop);
        if stop.should_stop() {
            let outcome = ce.into_mapper_outcome();
            return MapperOutcome {
                elapsed: start.elapsed(),
                ..outcome
            };
        }
        let ce = ce.into_mapper_outcome();
        let budget = if self.polish_budget == 1 {
            // Default: one full swap-neighbourhood scan per task pair,
            // a few times over.
            (inst.n_tasks() * inst.n_tasks() * 10) as u64
        } else {
            self.polish_budget
        };
        let (assign, cost, polish_evals) =
            PolishedMatcher::polish(inst, ce.mapping.as_slice().to_vec(), budget);
        debug_assert!(cost <= ce.cost + 1e-9, "polish must not regress");
        MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations: ce.evaluations + polish_evals,
            iterations: ce.iterations,
            elapsed: start.elapsed(),
        }
    }
}

/// Random-restart hill climbing wrapped as the polish stage's sibling:
/// convenience constructor so ablations can compare "CE then polish"
/// against "polish-budget spent on pure hill climbing".
pub fn pure_hillclimb_with_equal_budget(budget: u64) -> HillClimber {
    HillClimber::new(8, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_core::exec_time;
    use match_graph::gen::InstanceGenerator;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn polish_never_regresses_ce_result() {
        let inst = instance(10, 1);
        for seed in 0..5 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let plain = Matcher::default().run(&inst, &mut rng_a);
            let hybrid = PolishedMatcher::default().map(&inst, &mut rng_b);
            assert!(
                hybrid.cost <= plain.cost + 1e-9,
                "seed {seed}: hybrid {} vs plain {}",
                hybrid.cost,
                plain.cost
            );
            assert!(hybrid.mapping.is_permutation());
            assert_eq!(hybrid.cost, exec_time(&inst, hybrid.mapping.as_slice()));
        }
    }

    #[test]
    fn polished_result_is_swap_local_optimum() {
        let inst = instance(8, 2);
        let out = PolishedMatcher::default().map(&inst, &mut StdRng::seed_from_u64(3));
        let mut inc = IncrementalCost::new(&inst, out.mapping.as_slice().to_vec());
        let cost = inc.cost();
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert!(inc.peek_swap(a, b) >= cost - 1e-9);
            }
        }
    }

    #[test]
    fn explicit_budget_respected() {
        let inst = instance(12, 4);
        let m = PolishedMatcher::new(Matcher::default(), 50);
        let plain_evals = Matcher::default()
            .run(&inst, &mut StdRng::seed_from_u64(5))
            .evaluations;
        let out = m.map(&inst, &mut StdRng::seed_from_u64(5));
        assert!(out.evaluations <= plain_evals + 55);
    }

    #[test]
    fn tripped_stop_token_skips_polish() {
        use match_core::StopFlag;
        let inst = instance(10, 1);
        let flag = StopFlag::new();
        flag.trip();
        let out = PolishedMatcher::default().map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        // The CE stage cancels after one iteration and the polish stage
        // is skipped, so the result is exactly the truncated CE result.
        assert_eq!(out.iterations, 1);
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn never_token_matches_plain_run() {
        let inst = instance(9, 6);
        let m = PolishedMatcher::default();
        let plain = m.map(&inst, &mut StdRng::seed_from_u64(7));
        let controlled = m.map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(7),
            &mut NullRecorder,
            &StopToken::never(),
        );
        assert_eq!(plain.mapping, controlled.mapping);
        assert_eq!(plain.cost, controlled.cost);
    }

    #[test]
    fn deterministic() {
        let inst = instance(9, 6);
        let m = PolishedMatcher::default();
        let a = m.map(&inst, &mut StdRng::seed_from_u64(7));
        let b = m.map(&inst, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.cost, b.cost);
    }
}
