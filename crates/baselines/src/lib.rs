//! Additional mapping baselines beyond the paper's single GA comparison.
//!
//! The paper compares MaTCH only against FastMap-GA and acknowledges the
//! comparison is narrow ("we do not have readily available mapping
//! heuristics" for TIGs, §5). To position the reproduction's results more
//! firmly, this crate implements the standard complements used in the
//! mapping literature, all through the common [`match_core::Mapper`]
//! interface:
//!
//! * [`RandomSearch`] — best of `k` uniform random mappings; the
//!   no-intelligence yardstick.
//! * [`RoundRobin`] — tasks dealt to resources in index order; the
//!   classic static scheduler.
//! * [`GreedyMapper`] — heaviest-task-first list scheduling, placing
//!   each task on the resource minimising the resulting makespan (a
//!   min-min style constructive heuristic adapted to TIGs).
//! * [`HillClimber`] — steepest/first-descent local search over the swap
//!   neighbourhood with O(degree) delta evaluation, optional restarts.
//! * [`SimulatedAnnealing`] — Metropolis acceptance over the same
//!   neighbourhood with geometric cooling.
//!
//! All square-instance searchers preserve bijectivity (swap moves);
//! rectangular instances use task-move neighbourhoods.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fastmap;
pub mod greedy;
pub mod hillclimb;
pub mod hybrid;
pub mod partition;
pub mod random;
pub mod sa;

pub use fastmap::{cluster_tig, coarsen_tig, FastMapScheme};
pub use greedy::GreedyMapper;
pub use hillclimb::HillClimber;
pub use hybrid::PolishedMatcher;
pub use partition::RecursiveBisection;
pub use random::{RandomSearch, RoundRobin};
pub use sa::SimulatedAnnealing;
