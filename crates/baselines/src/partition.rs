//! Recursive-bisection partitioning mapper.
//!
//! The paper's related work contrasts MaTCH with partitioning
//! approaches (references [9, 20]: latency-tolerant partitioners for
//! grid environments). This module implements the classic recursive
//! scheme on top of the CE bipartitioner in `match-ce`:
//!
//! 1. Recursively split the task set into two balanced halves with
//!    minimal crossing volume (CE over Bernoulli vectors), until there
//!    are as many parts as resources.
//! 2. Assign parts to resources greedily: heaviest part first, onto
//!    the resource minimising the resulting makespan (same incremental
//!    logic as [`crate::greedy`], at part granularity).
//!
//! It is a *constructive* method like greedy, but topology-aware: the
//! bisection keeps chatty tasks together.

use match_ce::problems::bipartition::bipartition;
use match_core::{exec_time, Mapper, MapperOutcome, Mapping, MappingInstance};
use match_graph::graph::Graph;
use rand::rngs::StdRng;
use std::time::Instant;

/// Recursive-bisection mapper.
#[derive(Debug, Clone)]
pub struct RecursiveBisection {
    /// CE sample size per bisection (default 150).
    pub samples_per_cut: usize,
    /// Imbalance penalty weight for the bipartition objective.
    pub balance_penalty: f64,
}

impl Default for RecursiveBisection {
    fn default() -> Self {
        RecursiveBisection {
            samples_per_cut: 150,
            balance_penalty: 100.0,
        }
    }
}

impl RecursiveBisection {
    /// Split the tasks in `members` into `parts` groups by recursive
    /// CE bisection over the instance's interaction structure.
    fn partition(
        &self,
        inst: &MappingInstance,
        members: Vec<usize>,
        parts: usize,
        rng: &mut StdRng,
        out: &mut Vec<Vec<usize>>,
    ) {
        if parts <= 1 || members.len() <= 1 {
            out.push(members);
            return;
        }
        // Build the induced subgraph over `members`.
        let index_of: std::collections::HashMap<usize, usize> =
            members.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut g =
            Graph::from_node_weights(members.iter().map(|&t| inst.computation(t)).collect())
                .expect("positive weights");
        for (i, &t) in members.iter().enumerate() {
            for (a, c) in inst.interactions(t) {
                if let Some(&j) = index_of.get(&a) {
                    if i < j {
                        g.add_edge(i, j, c).expect("fresh edge");
                    }
                }
            }
        }
        let result = bipartition(&g, self.balance_penalty, self.samples_per_cut, rng);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &t) in members.iter().enumerate() {
            if result.side[i] {
                left.push(t);
            } else {
                right.push(t);
            }
        }
        // A degenerate (empty-side) cut would loop forever; split evenly.
        if left.is_empty() || right.is_empty() {
            let mid = members.len() / 2;
            left = members[..mid].to_vec();
            right = members[mid..].to_vec();
        }
        // Allocate parts proportionally to member counts, clamped so
        // each side gets at least one part and never more parts than
        // members — this keeps the invariant `parts ≤ members`
        // (whenever it holds at the root), so a square instance ends in
        // singleton parts and the final mapping stays bijective.
        let total = members.len() as f64;
        let ideal = (parts as f64 * left.len() as f64 / total).round() as usize;
        let lo = parts.saturating_sub(right.len()).max(1);
        let hi = left.len().min(parts - 1);
        let left_parts = ideal.clamp(lo, hi);
        let right_parts = parts - left_parts;
        self.partition(inst, left, left_parts, rng, out);
        self.partition(inst, right, right_parts, rng, out);
    }
}

impl Mapper for RecursiveBisection {
    fn name(&self) -> &str {
        "RecBisect"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        let start = Instant::now();
        let n = inst.n_tasks();
        let r = inst.n_resources().max(1);
        let mut parts: Vec<Vec<usize>> = Vec::new();
        self.partition(inst, (0..n).collect(), r.min(n.max(1)), rng, &mut parts);

        // Greedy part placement, heaviest (by computation) first.
        parts.sort_by(|a, b| {
            let wa: f64 = a.iter().map(|&t| inst.computation(t)).sum();
            let wb: f64 = b.iter().map(|&t| inst.computation(t)).sum();
            wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
        });
        const UNPLACED: usize = usize::MAX;
        let mut assign = vec![UNPLACED; n];
        let mut loads = vec![0.0f64; r];
        let mut used = vec![false; r];
        let square = inst.is_square();
        let mut evals: u64 = 0;
        for part in &parts {
            let mut best_s = usize::MAX;
            let mut best_makespan = f64::INFINITY;
            #[allow(clippy::needless_range_loop)] // s indexes `used` and the instance
            for s in 0..r {
                if square && used[s] {
                    continue;
                }
                evals += 1;
                // Incremental cost of placing the whole part on `s`,
                // charging communication only toward already-placed
                // neighbours (like the greedy list scheduler, at part
                // granularity). Intra-part volume is free on `s`.
                let mut add_s: f64 = part
                    .iter()
                    .map(|&t| inst.computation(t) * inst.processing_cost(s))
                    .sum();
                let mut neighbour_adds: Vec<(usize, f64)> = Vec::new();
                for &t in part {
                    for (a, c) in inst.interactions(t) {
                        let b = assign[a];
                        if b != UNPLACED && b != s {
                            add_s += c * inst.link_cost(s, b);
                            neighbour_adds.push((b, c * inst.link_cost(b, s)));
                        }
                    }
                }
                let mut candidate = 0.0f64;
                for (s2, load) in loads.iter().enumerate() {
                    let mut l = *load;
                    if s2 == s {
                        l += add_s;
                    }
                    for &(b, add) in &neighbour_adds {
                        if b == s2 {
                            l += add;
                        }
                    }
                    candidate = candidate.max(l);
                }
                if candidate < best_makespan {
                    best_makespan = candidate;
                    best_s = s;
                }
            }
            // Commit the part.
            let s = best_s;
            for &t in part {
                assign[t] = s;
            }
            loads[s] += part
                .iter()
                .map(|&t| inst.computation(t) * inst.processing_cost(s))
                .sum::<f64>();
            for &t in part {
                for (a, c) in inst.interactions(t) {
                    let b = assign[a];
                    if b != UNPLACED && b != s && !part.contains(&a) {
                        loads[s] += c * inst.link_cost(s, b);
                        loads[b] += c * inst.link_cost(b, s);
                    }
                }
            }
            used[s] = true;
        }
        let cost = exec_time(inst, &assign);
        MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations: evals,
            iterations: parts.len(),
            elapsed: start.elapsed(),
        }
    }
}

/// Convenience: expose the partition step for tests and tools.
pub fn partition_tasks(inst: &MappingInstance, parts: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let rb = RecursiveBisection::default();
    let mut out = Vec::new();
    rb.partition(
        inst,
        (0..inst.n_tasks()).collect(),
        parts.max(1),
        rng,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::gen::InstanceGenerator;
    use match_graph::InstancePair;
    use rand::SeedableRng;

    fn square_instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn partition_covers_all_tasks_exactly_once() {
        let inst = square_instance(16, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for parts in [1, 2, 4, 8, 16] {
            let groups = partition_tasks(&inst, parts, &mut rng);
            let mut seen = [false; 16];
            for g in &groups {
                for &t in g {
                    assert!(!seen[t], "task {t} in two parts");
                    seen[t] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "parts = {parts}");
            assert!(groups.len() <= parts.max(1) || parts == 1);
        }
    }

    #[test]
    fn square_mapping_is_bijective() {
        let inst = square_instance(10, 3);
        let out = RecursiveBisection::default().map(&inst, &mut StdRng::seed_from_u64(4));
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn beats_random_single_draw() {
        let inst = square_instance(12, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let rb = RecursiveBisection::default().map(&inst, &mut rng);
        let random = crate::random::RandomSearch::new(1).map(&inst, &mut rng);
        assert!(
            rb.cost <= random.cost * 1.2,
            "RB {} vs random {}",
            rb.cost,
            random.cost
        );
    }

    #[test]
    fn many_to_one_supported() {
        // Comm-dominated weights make consolidation onto one resource
        // optimal (see EXPERIMENTS.md), so use a compute-dominated TIG
        // where the placement genuinely spreads parts.
        let mut rng = StdRng::seed_from_u64(7);
        let tig = PaperFamilyConfig::new(20)
            .with_comp_scale(2000)
            .generate_tig(&mut rng);
        let platform = PaperFamilyConfig::new(4).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair {
            tig,
            resources: platform,
        });
        let out = RecursiveBisection::default().map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.as_slice().iter().all(|&s| s < 4));
        // With computation dominating, at least two resources are used.
        let distinct: std::collections::HashSet<_> = out.mapping.as_slice().iter().collect();
        assert!(
            distinct.len() >= 2,
            "all on one: {:?}",
            out.mapping.as_slice()
        );
    }

    #[test]
    fn deterministic() {
        let inst = square_instance(9, 8);
        let rb = RecursiveBisection::default();
        let a = rb.map(&inst, &mut StdRng::seed_from_u64(9));
        let b = rb.map(&inst, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn single_task_and_single_resource() {
        let inst = square_instance(1, 10);
        let out = RecursiveBisection::default().map(&inst, &mut StdRng::seed_from_u64(11));
        assert_eq!(out.mapping.as_slice(), &[0]);
    }
}
