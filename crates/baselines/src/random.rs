//! Random search and round-robin baselines.

use match_core::{exec_time, Mapper, MapperOutcome, Mapping, MappingInstance, StopToken};
use match_rngutil::perm::random_permutation;
use match_telemetry::Recorder;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Best of `samples` uniformly random mappings.
///
/// On a square instance the samples are random permutations (comparable
/// to MaTCH's and the GA's search space); on a rectangular instance each
/// task draws a uniform resource.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of mappings to draw.
    pub samples: usize,
}

impl RandomSearch {
    /// Random search with a budget of `samples` evaluations.
    pub fn new(samples: usize) -> Self {
        assert!(samples >= 1, "need at least one sample");
        RandomSearch { samples }
    }
}

impl Mapper for RandomSearch {
    fn name(&self) -> &str {
        "Random"
    }

    fn map(&self, inst: &MappingInstance, rng: &mut StdRng) -> MapperOutcome {
        self.map_controlled(
            inst,
            rng,
            &mut match_telemetry::NullRecorder,
            &StopToken::never(),
        )
    }

    /// Cancellation override: the stop token is polled every 256 samples
    /// (each sample is a full O(V+E) evaluation, so the poll is noise).
    /// At least one sample is always drawn.
    fn map_controlled(
        &self,
        inst: &MappingInstance,
        rng: &mut StdRng,
        _recorder: &mut dyn Recorder,
        stop: &StopToken,
    ) -> MapperOutcome {
        let start = Instant::now();
        let n = inst.n_tasks();
        let r = inst.n_resources();
        let mut best: Option<Vec<usize>> = None;
        let mut best_cost = f64::INFINITY;
        let mut drawn = 0usize;
        for sample in 0..self.samples {
            let assign: Vec<usize> = if inst.is_square() {
                random_permutation(n, rng)
            } else {
                (0..n).map(|_| rng.random_range(0..r)).collect()
            };
            let c = exec_time(inst, &assign);
            if c < best_cost {
                best_cost = c;
                best = Some(assign);
            }
            drawn = sample + 1;
            if drawn.is_multiple_of(256) && stop.should_stop() {
                break;
            }
        }
        MapperOutcome {
            mapping: Mapping::new(best.expect("samples >= 1")),
            cost: best_cost,
            evaluations: drawn as u64,
            iterations: drawn,
            elapsed: start.elapsed(),
        }
    }
}

/// Deterministic round-robin: task `t` goes to resource `t mod |V_r|`.
/// On square instances this is the identity permutation — a fixed,
/// topology-blind assignment that any search heuristic should beat.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin;

impl Mapper for RoundRobin {
    fn name(&self) -> &str {
        "RoundRobin"
    }

    fn map(&self, inst: &MappingInstance, _rng: &mut StdRng) -> MapperOutcome {
        let start = Instant::now();
        let r = inst.n_resources().max(1);
        let assign: Vec<usize> = (0..inst.n_tasks()).map(|t| t % r).collect();
        let cost = exec_time(inst, &assign);
        MapperOutcome {
            mapping: Mapping::new(assign),
            cost,
            evaluations: 1,
            iterations: 1,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::paper::PaperFamilyConfig;
    use match_graph::gen::InstanceGenerator;
    use match_graph::InstancePair;
    use rand::SeedableRng;

    fn instance(n: usize, seed: u64) -> MappingInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        MappingInstance::from_pair(&InstanceGenerator::paper_family(n).generate(&mut rng))
    }

    #[test]
    fn random_search_square_yields_permutation() {
        let inst = instance(9, 1);
        let out = RandomSearch::new(50).map(&inst, &mut StdRng::seed_from_u64(2));
        assert!(out.mapping.is_permutation());
        assert_eq!(out.evaluations, 50);
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }

    #[test]
    fn more_samples_never_worse() {
        let inst = instance(10, 3);
        let small = RandomSearch::new(10).map(&inst, &mut StdRng::seed_from_u64(4));
        let big = RandomSearch::new(1000).map(&inst, &mut StdRng::seed_from_u64(4));
        assert!(big.cost <= small.cost);
    }

    #[test]
    fn random_search_rectangular() {
        let mut rng = StdRng::seed_from_u64(5);
        let tig = PaperFamilyConfig::new(10).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(3).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let out = RandomSearch::new(30).map(&inst, &mut rng);
        assert!(out.mapping.validate(&inst).is_ok());
        assert!(out.mapping.as_slice().iter().all(|&s| s < 3));
    }

    #[test]
    fn round_robin_square_is_identity() {
        let inst = instance(6, 6);
        let out = RoundRobin.map(&inst, &mut StdRng::seed_from_u64(7));
        assert_eq!(out.mapping.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn round_robin_wraps() {
        let mut rng = StdRng::seed_from_u64(8);
        let tig = PaperFamilyConfig::new(7).generate_tig(&mut rng);
        let resources = PaperFamilyConfig::new(3).generate_platform(&mut rng);
        let inst = MappingInstance::from_pair(&InstancePair { tig, resources });
        let out = RoundRobin.map(&inst, &mut rng);
        assert_eq!(out.mapping.as_slice(), &[0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        RandomSearch::new(0);
    }

    #[test]
    fn tripped_stop_token_truncates_sampling() {
        use match_core::StopFlag;
        use match_telemetry::NullRecorder;
        let inst = instance(9, 1);
        let flag = StopFlag::new();
        flag.trip();
        let out = RandomSearch::new(100_000).map_controlled(
            &inst,
            &mut StdRng::seed_from_u64(2),
            &mut NullRecorder,
            &StopToken::with_flag(flag),
        );
        assert_eq!(out.evaluations, 256, "stops at the first poll point");
        assert!(out.mapping.is_permutation());
        assert_eq!(out.cost, exec_time(&inst, out.mapping.as_slice()));
    }
}
