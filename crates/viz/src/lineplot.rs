//! Multi-series line plots in terminal cells — used for convergence
//! curves (best cost / γ / entropy per CE iteration or GA generation).

use crate::fmt::format_sig;

/// A terminal line plot: x is the sample index, y is scaled into a
/// fixed-height character grid. Multiple series get distinct glyphs.
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    series: Vec<(String, Vec<f64>)>,
    width: usize,
    height: usize,
    log_y: bool,
}

const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

impl LinePlot {
    /// An empty plot with a title.
    pub fn new<S: Into<String>>(title: S) -> Self {
        LinePlot {
            title: title.into(),
            series: Vec::new(),
            width: 72,
            height: 16,
            log_y: false,
        }
    }

    /// Grid size in characters (clamped to at least 8×4).
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(8);
        self.height = height.max(4);
        self
    }

    /// Logarithmic y axis (positive values only; others are dropped).
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Add a named series.
    pub fn add_series<S: Into<String>>(&mut self, name: S, values: Vec<f64>) -> &mut Self {
        self.series.push((name.into(), values));
        self
    }

    /// Render the plot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');

        let transform = |v: f64| -> Option<f64> {
            if !v.is_finite() {
                return None;
            }
            if self.log_y {
                if v > 0.0 {
                    Some(v.ln())
                } else {
                    None
                }
            } else {
                Some(v)
            }
        };
        let points: Vec<Vec<Option<f64>>> = self
            .series
            .iter()
            .map(|(_, vs)| vs.iter().map(|&v| transform(v)).collect())
            .collect();
        let flat: Vec<f64> = points.iter().flatten().filter_map(|&v| v).collect();
        if flat.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let lo = flat.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = flat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        let max_len = self.series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, pts) in points.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (i, &p) in pts.iter().enumerate() {
                let Some(y) = p else { continue };
                let col = if max_len <= 1 {
                    0
                } else {
                    i * (self.width - 1) / (max_len - 1)
                };
                let row_f = (y - lo) / span;
                let row = self.height
                    - 1
                    - ((row_f * (self.height - 1) as f64).round() as usize).min(self.height - 1);
                grid[row][col] = glyph;
            }
        }

        // y-axis labels on the first/last rows (untransformed values).
        let label = |v: f64| -> String {
            if self.log_y {
                format_sig(v.exp(), 3)
            } else {
                format_sig(v, 3)
            }
        };
        for (r, row) in grid.iter().enumerate() {
            let tag = if r == 0 {
                format!("{:>9} ", label(hi))
            } else if r == self.height - 1 {
                format!("{:>9} ", label(lo))
            } else {
                " ".repeat(10)
            };
            out.push_str(&tag);
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(10));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            out.push_str(&format!(
                "{:>10} {} {}\n",
                "",
                GLYPHS[si % GLYPHS.len()],
                name
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_and_legend() {
        let mut p = LinePlot::new("Convergence").with_size(20, 6);
        p.add_series("best", vec![10.0, 8.0, 5.0, 4.0, 4.0]);
        p.add_series("gamma", vec![12.0, 9.0, 7.0, 5.0, 4.5]);
        let s = p.render();
        assert!(s.starts_with("Convergence"));
        assert!(s.contains('*'));
        assert!(s.contains('+'));
        assert!(s.contains("best"));
        assert!(s.contains("gamma"));
        assert!(s.contains("12")); // max label
        assert!(s.contains('4')); // min label
    }

    #[test]
    fn empty_plot() {
        let p = LinePlot::new("E");
        assert!(p.render().contains("no data"));
    }

    #[test]
    fn constant_series_does_not_crash() {
        let mut p = LinePlot::new("C").with_size(10, 4);
        p.add_series("flat", vec![5.0; 8]);
        let s = p.render();
        assert!(s.contains('*'));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let mut p = LinePlot::new("L").with_log_y();
        p.add_series("s", vec![-1.0, 0.0, 10.0, 100.0]);
        let s = p.render();
        assert!(s.contains('*'));
        assert!(s.contains("100"));
    }

    #[test]
    fn single_point_series() {
        let mut p = LinePlot::new("S").with_size(12, 5);
        p.add_series("one", vec![3.0]);
        assert!(p.render().contains('*'));
    }
}
