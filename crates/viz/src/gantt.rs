//! Gantt-style timeline rendering for simulator traces: one row per
//! server, busy intervals marked along a scaled time axis.
//!
//! [`spans_from_trace`] rebuilds the timeline from the `res{r}:busy` /
//! `res{r}:idle` span events the simulator emits into a JSONL trace, so
//! a schedule can be drawn from a trace file alone.

use match_telemetry::{Event, SIM_SPAN_TIME_SCALE};

/// One interval on a timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanttSpan {
    /// Row (server/resource id).
    pub row: usize,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Glyph class (e.g. 0 = compute, 1 = transfer); classes cycle
    /// through distinct characters.
    pub class: usize,
}

const GLYPHS: [char; 4] = ['█', '▒', '◆', '·'];

/// Render spans as a text Gantt chart with `rows` rows and a `width`-
/// character time axis spanning `[0, horizon]` (auto-computed from the
/// spans when `None`).
pub fn render_gantt(
    spans: &[GanttSpan],
    rows: usize,
    width: usize,
    horizon: Option<f64>,
    title: &str,
) -> String {
    let width = width.max(10);
    let horizon = horizon
        .unwrap_or_else(|| spans.iter().map(|s| s.end).fold(0.0, f64::max))
        .max(1e-12);
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    let col = |t: f64| -> usize {
        (((t / horizon) * width as f64).floor() as usize).min(width.saturating_sub(1))
    };
    let mut grid = vec![vec![' '; width]; rows];
    for s in spans {
        if s.row >= rows || s.end <= s.start {
            continue;
        }
        let glyph = GLYPHS[s.class % GLYPHS.len()];
        let (c0, c1) = (col(s.start), col(s.end - 1e-12).max(col(s.start)));
        for cell in grid[s.row][c0..=c1].iter_mut() {
            *cell = glyph;
        }
    }
    for (r, row) in grid.iter().enumerate() {
        out.push_str(&format!("{r:>4} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      0{:>w$.6}\n",
        "-".repeat(width),
        horizon,
        w = width - 1
    ));
    out
}

/// `res{r}:busy` → `(r, 0)`, `res{r}:idle` → `(r, 1)`; anything else
/// (solver phase spans like `sample`) is not a timeline span.
fn parse_resource_span(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix("res")?;
    let (row, kind) = rest.split_once(':')?;
    let class = match kind {
        "busy" => 0,
        "idle" => 1,
        _ => return None,
    };
    Some((row.parse().ok()?, class))
}

/// Rebuild per-resource timeline spans from a trace's `res{r}:busy` /
/// `res{r}:idle` span events (the simulator encodes the start time in
/// the span's `iter` field and the width in `wall_ns`, both scaled by
/// [`SIM_SPAN_TIME_SCALE`]). Returns the spans in simulated time units
/// plus the row count; other events are ignored.
pub fn spans_from_trace(events: &[Event]) -> (Vec<GanttSpan>, usize) {
    let mut spans = Vec::new();
    let mut rows = 0usize;
    for e in events {
        let Event::Span(s) = e else { continue };
        let Some((row, class)) = parse_resource_span(&s.name) else {
            continue;
        };
        let start = s.iter as f64 / SIM_SPAN_TIME_SCALE;
        let end = start + s.wall_ns as f64 / SIM_SPAN_TIME_SCALE;
        rows = rows.max(row + 1);
        spans.push(GanttSpan {
            row,
            start,
            end,
            class,
        });
    }
    (spans, rows)
}

/// Render the schedule timeline embedded in a trace, or `None` when the
/// trace carries no `res{r}:busy` / `res{r}:idle` spans (e.g. a solver
/// trace rather than a simulator trace).
pub fn trace_gantt(events: &[Event], width: usize, title: &str) -> Option<String> {
    let (spans, rows) = spans_from_trace(events);
    if spans.is_empty() {
        return None;
    }
    Some(render_gantt(&spans, rows, width, None, title))
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_telemetry::SpanEvent;

    #[test]
    fn spans_land_in_their_rows() {
        let spans = [
            GanttSpan {
                row: 0,
                start: 0.0,
                end: 5.0,
                class: 0,
            },
            GanttSpan {
                row: 1,
                start: 5.0,
                end: 10.0,
                class: 1,
            },
        ];
        let s = render_gantt(&spans, 2, 20, Some(10.0), "T");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        let row0 = lines[1];
        let row1 = lines[2];
        assert!(row0.contains('█'));
        assert!(!row0.contains('▒'));
        assert!(row1.contains('▒'));
        // Row 0 busy in the first half only.
        let cells: Vec<char> = row0.chars().skip(6).collect();
        assert_eq!(cells[0], '█');
        assert_eq!(cells[19], ' ');
    }

    #[test]
    fn auto_horizon() {
        let spans = [GanttSpan {
            row: 0,
            start: 0.0,
            end: 42.0,
            class: 0,
        }];
        let s = render_gantt(&spans, 1, 10, None, "");
        assert!(s.contains("42"));
    }

    #[test]
    fn empty_and_out_of_range_spans() {
        let spans = [
            GanttSpan {
                row: 9,
                start: 0.0,
                end: 1.0,
                class: 0,
            }, // beyond rows
            GanttSpan {
                row: 0,
                start: 2.0,
                end: 2.0,
                class: 0,
            }, // empty
        ];
        let s = render_gantt(&spans, 1, 10, Some(5.0), "");
        assert!(!s.contains('█'));
    }

    fn span(name: &str, start: u64, width: u64) -> Event {
        Event::Span(SpanEvent {
            name: name.to_string().into(),
            iter: start,
            wall_ns: width,
        })
    }

    #[test]
    fn trace_spans_round_trip() {
        let k = SIM_SPAN_TIME_SCALE as u64;
        let events = vec![
            span("res0:busy", 0, 3 * k),
            span("res1:idle", 0, 3 * k),
            span("res1:busy", 3 * k, k),
            span("sample", 0, 999), // solver phase span: ignored
        ];
        let (spans, rows) = spans_from_trace(&events);
        assert_eq!(rows, 2);
        assert_eq!(
            spans,
            vec![
                GanttSpan {
                    row: 0,
                    start: 0.0,
                    end: 3.0,
                    class: 0
                },
                GanttSpan {
                    row: 1,
                    start: 0.0,
                    end: 3.0,
                    class: 1
                },
                GanttSpan {
                    row: 1,
                    start: 3.0,
                    end: 4.0,
                    class: 0
                },
            ]
        );
        let chart = trace_gantt(&events, 40, "schedule").unwrap();
        assert!(chart.starts_with("schedule\n"));
        assert!(chart.contains('█'));
        assert!(chart.contains('▒'));
    }

    #[test]
    fn trace_gantt_none_for_solver_traces() {
        let events = vec![span("sample", 0, 10), span("update", 1, 20)];
        assert!(trace_gantt(&events, 40, "").is_none());
        // Malformed resource names are ignored, not misparsed.
        let events = vec![span("res:busy", 0, 10), span("resX:idle", 0, 10)];
        assert!(trace_gantt(&events, 40, "").is_none());
    }

    #[test]
    fn classes_cycle_glyphs() {
        let spans = [
            GanttSpan {
                row: 0,
                start: 0.0,
                end: 1.0,
                class: 0,
            },
            GanttSpan {
                row: 0,
                start: 2.0,
                end: 3.0,
                class: 1,
            },
            GanttSpan {
                row: 0,
                start: 4.0,
                end: 5.0,
                class: 5,
            },
        ];
        let s = render_gantt(&spans, 1, 30, Some(5.0), "");
        assert!(s.contains('█'));
        assert!(s.contains('▒'));
    }
}
