//! Gantt-style timeline rendering for simulator traces: one row per
//! server, busy intervals marked along a scaled time axis.

/// One interval on a timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanttSpan {
    /// Row (server/resource id).
    pub row: usize,
    /// Start time.
    pub start: f64,
    /// End time.
    pub end: f64,
    /// Glyph class (e.g. 0 = compute, 1 = transfer); classes cycle
    /// through distinct characters.
    pub class: usize,
}

const GLYPHS: [char; 4] = ['█', '▒', '◆', '·'];

/// Render spans as a text Gantt chart with `rows` rows and a `width`-
/// character time axis spanning `[0, horizon]` (auto-computed from the
/// spans when `None`).
pub fn render_gantt(
    spans: &[GanttSpan],
    rows: usize,
    width: usize,
    horizon: Option<f64>,
    title: &str,
) -> String {
    let width = width.max(10);
    let horizon = horizon
        .unwrap_or_else(|| spans.iter().map(|s| s.end).fold(0.0, f64::max))
        .max(1e-12);
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    let col = |t: f64| -> usize {
        (((t / horizon) * width as f64).floor() as usize).min(width.saturating_sub(1))
    };
    let mut grid = vec![vec![' '; width]; rows];
    for s in spans {
        if s.row >= rows || s.end <= s.start {
            continue;
        }
        let glyph = GLYPHS[s.class % GLYPHS.len()];
        let (c0, c1) = (col(s.start), col(s.end - 1e-12).max(col(s.start)));
        for cell in grid[s.row][c0..=c1].iter_mut() {
            *cell = glyph;
        }
    }
    for (r, row) in grid.iter().enumerate() {
        out.push_str(&format!("{r:>4} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      0{:>w$.6}\n",
        "-".repeat(width),
        horizon,
        w = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_in_their_rows() {
        let spans = [
            GanttSpan {
                row: 0,
                start: 0.0,
                end: 5.0,
                class: 0,
            },
            GanttSpan {
                row: 1,
                start: 5.0,
                end: 10.0,
                class: 1,
            },
        ];
        let s = render_gantt(&spans, 2, 20, Some(10.0), "T");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        let row0 = lines[1];
        let row1 = lines[2];
        assert!(row0.contains('█'));
        assert!(!row0.contains('▒'));
        assert!(row1.contains('▒'));
        // Row 0 busy in the first half only.
        let cells: Vec<char> = row0.chars().skip(6).collect();
        assert_eq!(cells[0], '█');
        assert_eq!(cells[19], ' ');
    }

    #[test]
    fn auto_horizon() {
        let spans = [GanttSpan {
            row: 0,
            start: 0.0,
            end: 42.0,
            class: 0,
        }];
        let s = render_gantt(&spans, 1, 10, None, "");
        assert!(s.contains("42"));
    }

    #[test]
    fn empty_and_out_of_range_spans() {
        let spans = [
            GanttSpan {
                row: 9,
                start: 0.0,
                end: 1.0,
                class: 0,
            }, // beyond rows
            GanttSpan {
                row: 0,
                start: 2.0,
                end: 2.0,
                class: 0,
            }, // empty
        ];
        let s = render_gantt(&spans, 1, 10, Some(5.0), "");
        assert!(!s.contains('█'));
    }

    #[test]
    fn classes_cycle_glyphs() {
        let spans = [
            GanttSpan {
                row: 0,
                start: 0.0,
                end: 1.0,
                class: 0,
            },
            GanttSpan {
                row: 0,
                start: 2.0,
                end: 3.0,
                class: 1,
            },
            GanttSpan {
                row: 0,
                start: 4.0,
                end: 5.0,
                class: 5,
            },
        ];
        let s = render_gantt(&spans, 1, 30, Some(5.0), "");
        assert!(s.contains('█'));
        assert!(s.contains('▒'));
    }
}
