//! Horizontal grouped bar charts (the rendering behind Figures 7–9).

use crate::fmt::format_sig;

/// One group of bars (e.g. one `|V_r|` size with a bar per heuristic).
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// Group label (e.g. `"|V| = 10"`).
    pub label: String,
    /// `(series name, value)` per bar.
    pub bars: Vec<(String, f64)>,
}

/// A horizontal bar chart over groups of labelled series.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    groups: Vec<BarGroup>,
    width: usize,
    log_scale: bool,
}

impl BarChart {
    /// A chart with the given title.
    pub fn new<S: Into<String>>(title: S) -> Self {
        BarChart {
            title: title.into(),
            groups: Vec::new(),
            width: 50,
            log_scale: false,
        }
    }

    /// Bar area width in characters (default 50).
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width.max(4);
        self
    }

    /// Scale bar lengths logarithmically — needed for Figures 7 and 9,
    /// whose series span two orders of magnitude.
    pub fn with_log_scale(mut self) -> Self {
        self.log_scale = true;
        self
    }

    /// Append a group.
    pub fn add_group<S: Into<String>>(&mut self, label: S, bars: Vec<(String, f64)>) -> &mut Self {
        self.groups.push(BarGroup {
            label: label.into(),
            bars,
        });
        self
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let max = self
            .groups
            .iter()
            .flat_map(|g| g.bars.iter().map(|&(_, v)| v))
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        if max <= 0.0 || self.groups.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let name_w = self
            .groups
            .iter()
            .flat_map(|g| g.bars.iter().map(|(n, _)| n.chars().count()))
            .max()
            .unwrap_or(0);
        let scale = |v: f64| -> usize {
            if !v.is_finite() || v <= 0.0 {
                return 0;
            }
            let frac = if self.log_scale {
                // Map [1, max] to (0, 1]; values below 1 get a sliver.
                (v.max(1.0).ln() / max.max(1.0 + 1e-9).ln()).clamp(0.0, 1.0)
            } else {
                v / max
            };
            ((frac * self.width as f64).round() as usize).max(1)
        };
        for g in &self.groups {
            out.push_str(&g.label);
            out.push('\n');
            for (name, v) in &g.bars {
                let bar = "█".repeat(scale(*v));
                out.push_str(&format!("  {name:<name_w$} |{bar} {}\n", format_sig(*v, 5)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scaled_bars() {
        let mut c = BarChart::new("Test").with_width(10);
        c.add_group("g1", vec![("a".into(), 10.0), ("b".into(), 5.0)]);
        let s = c.render();
        let a_len = s
            .lines()
            .find(|l| l.contains("a "))
            .unwrap()
            .matches('█')
            .count();
        let b_len = s
            .lines()
            .find(|l| l.contains("b "))
            .unwrap()
            .matches('█')
            .count();
        assert_eq!(a_len, 10);
        assert_eq!(b_len, 5);
        assert!(s.contains("10"));
    }

    #[test]
    fn log_scale_compresses_ratios() {
        let mut c = BarChart::new("L").with_width(100).with_log_scale();
        c.add_group("g", vec![("big".into(), 10000.0), ("small".into(), 100.0)]);
        let s = c.render();
        let big = s
            .lines()
            .find(|l| l.contains("big"))
            .unwrap()
            .matches('█')
            .count();
        let small = s
            .lines()
            .find(|l| l.contains("small"))
            .unwrap()
            .matches('█')
            .count();
        assert_eq!(big, 100);
        // ln(100)/ln(10000) = 0.5, not 0.01.
        assert!((small as f64 - 50.0).abs() <= 2.0, "small = {small}");
    }

    #[test]
    fn empty_and_zero_data() {
        let c = BarChart::new("E");
        assert!(c.render().contains("no data"));
        let mut c = BarChart::new("Z");
        c.add_group("g", vec![("x".into(), 0.0)]);
        assert!(c.render().contains("no data"));
    }

    #[test]
    fn minimum_one_cell_for_positive_values() {
        let mut c = BarChart::new("M").with_width(10);
        c.add_group("g", vec![("tiny".into(), 0.0001), ("huge".into(), 1.0e6)]);
        let s = c.render();
        let tiny = s
            .lines()
            .find(|l| l.contains("tiny"))
            .unwrap()
            .matches('█')
            .count();
        assert_eq!(tiny, 1);
    }
}
