//! A minimal CSV writer (RFC 4180 quoting) so experiment outputs can be
//! re-plotted externally without pulling a serialisation dependency.

/// Builds CSV text row by row.
#[derive(Debug, Clone, Default)]
pub struct CsvWriter {
    buf: String,
}

impl CsvWriter {
    /// An empty writer.
    pub fn new() -> Self {
        CsvWriter::default()
    }

    /// Append one record of string fields.
    pub fn write_record<S: AsRef<str>, I: IntoIterator<Item = S>>(&mut self, fields: I) {
        let mut first = true;
        for f in fields {
            if !first {
                self.buf.push(',');
            }
            first = false;
            self.buf.push_str(&escape(f.as_ref()));
        }
        self.buf.push('\n');
    }

    /// Append a record of `f64` values after a leading label.
    pub fn write_numeric_record<S: AsRef<str>>(&mut self, label: S, values: &[f64]) {
        let mut fields = vec![label.as_ref().to_string()];
        fields.extend(values.iter().map(|v| format!("{v}")));
        self.write_record(fields);
    }

    /// The CSV text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consume into the CSV text.
    pub fn into_string(self) -> String {
        self.buf
    }
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields() {
        let mut w = CsvWriter::new();
        w.write_record(["a", "b", "c"]);
        w.write_record(["1", "2", "3"]);
        assert_eq!(w.as_str(), "a,b,c\n1,2,3\n");
    }

    #[test]
    fn quoting_rules() {
        let mut w = CsvWriter::new();
        w.write_record(["has,comma", "has\"quote", "has\nnewline", "plain"]);
        assert_eq!(
            w.as_str(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n"
        );
    }

    #[test]
    fn numeric_records() {
        let mut w = CsvWriter::new();
        w.write_numeric_record("MaTCH", &[1.5, 2.0]);
        assert_eq!(w.as_str(), "MaTCH,1.5,2\n");
    }

    #[test]
    fn into_string_consumes() {
        let mut w = CsvWriter::new();
        w.write_record(["x"]);
        assert_eq!(w.into_string(), "x\n");
    }
}
