//! Terminal rendering for experiment reports.
//!
//! The benchmark harness regenerates every table and figure of the paper
//! as text: aligned tables (Tables 1–3), horizontal grouped bar charts
//! (Figures 7–9), matrix heatmaps (Figure 3), and CSV files for external
//! plotting. No plotting dependency — everything renders to `String`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barchart;
pub mod csv;
pub mod fmt;
pub mod gantt;
pub mod heatmap;
pub mod lineplot;
pub mod table;

pub use barchart::{BarChart, BarGroup};
pub use csv::CsvWriter;
pub use fmt::{format_duration_s, format_sig};
pub use gantt::{render_gantt, spans_from_trace, trace_gantt, GanttSpan};
pub use heatmap::render_heatmap;
pub use lineplot::LinePlot;
pub use table::Table;
