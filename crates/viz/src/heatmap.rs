//! Matrix heatmaps in Unicode shade characters — the rendering behind
//! Figure 3's stochastic-matrix evolution.

/// Render a row-major `rows × cols` matrix of values in `[0, 1]` as a
/// shaded grid. Each cell is two characters wide for a roughly square
//  aspect ratio; an optional `title` is printed above.
pub fn render_heatmap(data: &[f64], rows: usize, cols: usize, title: &str) -> String {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    const SHADES: [&str; 5] = ["  ", "░░", "▒▒", "▓▓", "██"];
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    // Column ruler (mod 10) for matrices the paper's Figure 3 size.
    out.push_str("    ");
    for c in 0..cols {
        out.push_str(&format!("{:<2}", c % 10));
    }
    out.push('\n');
    for r in 0..rows {
        out.push_str(&format!("{r:>3} "));
        for c in 0..cols {
            let v = data[r * cols + c].clamp(0.0, 1.0);
            // Any strictly positive mass gets at least the lightest
            // shade, so a uniform stochastic matrix (p = 1/n) does not
            // render blank.
            let idx = if v <= 0.0 {
                0
            } else {
                ((v * (SHADES.len() - 1) as f64).round() as usize).clamp(1, SHADES.len() - 1)
            };
            out.push_str(SHADES[idx]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_shape() {
        let data = vec![0.0, 0.25, 0.5, 1.0];
        let s = render_heatmap(&data, 2, 2, "T");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert_eq!(lines.len(), 4); // title + ruler + 2 rows
        assert!(lines[2].starts_with("  0 "));
    }

    #[test]
    fn extreme_values_use_extreme_shades() {
        let data = vec![0.0, 1.0];
        let s = render_heatmap(&data, 1, 2, "");
        assert!(s.contains("██"));
        // 0.0 renders as blank cells (two spaces within the row).
        let row = s.lines().last().unwrap();
        assert!(row.contains("  ██") || row.ends_with("██"));
    }

    #[test]
    fn values_clamped() {
        let data = vec![-3.0, 7.0];
        let s = render_heatmap(&data, 1, 2, "");
        assert!(s.contains("██"));
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_mismatch_panics() {
        render_heatmap(&[0.5; 3], 2, 2, "");
    }
}
