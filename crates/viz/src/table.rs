//! Aligned text tables (the rendering behind Tables 1–3).

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a caption printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row. Shorter rows are padded with empty cells; longer
    /// rows extend the column count.
    pub fn add_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns, a header rule, and right-aligned
    /// numeric-looking cells.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        let mut widths = vec![0usize; cols];
        #[allow(clippy::needless_range_loop)] // c spans header and all rows
        for c in 0..cols {
            widths[c] = self
                .rows
                .iter()
                .map(|r| cell(r, c).chars().count())
                .chain([cell(&self.header, c).chars().count()])
                .max()
                .unwrap_or(0);
        }
        let is_numeric = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|ch| ch.is_ascii_digit() || ".-+eE%x×".contains(ch))
        };
        let fmt_row = |row: &[String]| -> String {
            let mut out = String::new();
            #[allow(clippy::needless_range_loop)] // c spans row cells and widths
            for c in 0..cols {
                let s = cell(row, c);
                let w = widths[c];
                if c > 0 {
                    out.push_str("  ");
                }
                if is_numeric(s) && c > 0 {
                    out.push_str(&" ".repeat(w.saturating_sub(s.chars().count())));
                    out.push_str(s);
                } else {
                    out.push_str(s);
                    if c + 1 < cols {
                        out.push_str(&" ".repeat(w.saturating_sub(s.chars().count())));
                    }
                }
            }
            out.trim_end().to_string()
        };

        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]).with_title("Demo");
        t.add_row(["alpha", "1"]);
        t.add_row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].starts_with("---"));
        // Numeric column right-aligned: the `1` lines up with `12345`'s end.
        let a = lines[3];
        let b = lines[4];
        assert_eq!(a.find('1').map(|i| i + 1), Some(a.len()));
        assert!(b.ends_with("12345"));
    }

    #[test]
    fn pads_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.add_row(["x", "y", "z"]);
        t.add_row(["only"]);
        let s = t.render();
        assert!(s.contains('z'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_table_renders_header() {
        let t = Table::new(["col1", "col2"]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("col1"));
    }
}
