//! Number formatting helpers.

/// Format `x` with `sig` significant digits (plain decimal notation for
/// the magnitudes the experiments produce).
pub fn format_sig(x: f64, sig: usize) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    let sig = sig.max(1);
    let magnitude = x.abs().log10().floor() as i32;
    let decimals = (sig as i32 - 1 - magnitude).max(0) as usize;
    let s = format!("{x:.decimals$}");
    // Trim trailing zeros after a decimal point (keep integers intact).
    if s.contains('.') {
        let t = s.trim_end_matches('0').trim_end_matches('.');
        t.to_string()
    } else {
        s
    }
}

/// Format a duration in seconds with adaptive precision (`12.3s`,
/// `0.045s`, `1587.75s`).
pub fn format_duration_s(seconds: f64) -> String {
    if !seconds.is_finite() {
        return format!("{seconds}s");
    }
    if seconds >= 100.0 {
        format!("{seconds:.1}s")
    } else if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else {
        format!("{seconds:.4}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_digits() {
        assert_eq!(format_sig(123456.0, 4), "123456");
        assert_eq!(format_sig(1.23456, 3), "1.23");
        assert_eq!(format_sig(0.0012345, 2), "0.0012");
        assert_eq!(format_sig(0.0, 3), "0");
        assert_eq!(format_sig(-42.7, 2), "-43");
        assert_eq!(format_sig(38.618, 5), "38.618");
    }

    #[test]
    fn sig_handles_nonfinite() {
        assert_eq!(format_sig(f64::INFINITY, 3), "inf");
        assert_eq!(format_sig(f64::NAN, 3), "NaN");
    }

    #[test]
    fn durations() {
        assert_eq!(format_duration_s(1587.754), "1587.8s");
        assert_eq!(format_duration_s(13.62), "13.62s");
        assert_eq!(format_duration_s(0.04567), "0.0457s");
    }
}
