//! End-to-end tests driving the actual `matchctl` binary.

use std::path::PathBuf;
use std::process::Command;

fn matchctl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_matchctl"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matchctl-bin-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero() {
    let out = matchctl().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
}

#[test]
fn no_args_exits_nonzero_with_hint() {
    let out = matchctl().output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no command"), "stderr: {err}");
}

#[test]
fn unknown_command_reports_error() {
    let out = matchctl().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn full_pipeline_through_the_binary() {
    let dir = tmpdir("pipeline");
    let tig = dir.join("tig.txt");
    let plat = dir.join("platform.txt");
    let mapping = dir.join("mapping.txt");

    let out = matchctl()
        .args([
            "gen",
            "--size",
            "8",
            "--seed",
            "5",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(tig.exists() && plat.exists());

    let out = matchctl()
        .args([
            "solve",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
            "--algo",
            "hill",
            "--out",
            mapping.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ET ="));

    let out = matchctl()
        .args([
            "simulate",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
            "--mapping",
            mapping.to_str().unwrap(),
            "--rounds",
            "2",
            "--link",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("LinkContention"), "{text}");

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn solve_is_deterministic_across_invocations() {
    let dir = tmpdir("determinism");
    let tig = dir.join("tig.txt");
    let plat = dir.join("platform.txt");
    matchctl()
        .args([
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let run = || {
        let out = matchctl()
            .args([
                "solve",
                "--tig",
                tig.to_str().unwrap(),
                "--platform",
                plat.to_str().unwrap(),
                "--algo",
                "greedy",
            ])
            .output()
            .unwrap();
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let a = run();
    let b = run();
    // Strip the MT line (wall time varies); everything else matches.
    let strip = |s: &str| {
        s.lines()
            .map(|l| l.split("MT =").next().unwrap_or(l).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a), strip(&b));
    std::fs::remove_dir_all(dir).ok();
}
