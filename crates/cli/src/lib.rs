//! Library backing the `matchctl` command-line tool.
//!
//! `matchctl` makes the workspace usable without writing Rust:
//!
//! ```text
//! matchctl gen --size 20 --seed 7 --out-tig tig.txt --out-platform platform.txt
//! matchctl info --tig tig.txt --platform platform.txt
//! matchctl solve --tig tig.txt --platform platform.txt --algo match --seed 1 --out mapping.txt
//! matchctl simulate --tig tig.txt --platform platform.txt --mapping mapping.txt --rounds 10
//! ```
//!
//! Instances use the plain-text format of `match_graph::io`; mappings
//! are one `task resource` pair per line. Argument parsing is
//! hand-rolled ([`args`]) to keep the workspace dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod mapping_io;

pub use args::{Args, CliError};
pub use commands::{run, Command};
