//! Text I/O for mappings: one `task resource` pair per line, `#`
//! comments allowed.

use match_core::Mapping;

/// Serialise a mapping.
pub fn mapping_to_text(m: &Mapping) -> String {
    let mut s = String::from("# matchkit mapping v1: task resource\n");
    for (t, &r) in m.as_slice().iter().enumerate() {
        s.push_str(&format!("{t} {r}\n"));
    }
    s
}

/// Parse a mapping produced by [`mapping_to_text`]. Tasks may appear in
/// any order but must be dense `0..n` with no duplicates.
pub fn mapping_from_text(input: &str) -> Result<Mapping, String> {
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let t: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| format!("line {}: expected task index", lineno + 1))?;
        let r: usize = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| format!("line {}: expected resource index", lineno + 1))?;
        pairs.push((t, r));
    }
    let n = pairs.len();
    let mut assign = vec![usize::MAX; n];
    for (t, r) in pairs {
        if t >= n {
            return Err(format!("task {t} out of range (found {n} lines)"));
        }
        if assign[t] != usize::MAX {
            return Err(format!("task {t} assigned twice"));
        }
        assign[t] = r;
    }
    Ok(Mapping::new(assign))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Mapping::new(vec![2, 0, 1, 4, 3]);
        let text = mapping_to_text(&m);
        assert_eq!(mapping_from_text(&text).unwrap(), m);
    }

    #[test]
    fn order_independent() {
        let m = mapping_from_text("2 5\n0 1\n1 3\n").unwrap();
        assert_eq!(m.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn rejects_gaps_and_duplicates() {
        assert!(mapping_from_text("0 1\n0 2\n").is_err());
        assert!(mapping_from_text("0 1\n5 2\n").is_err());
        assert!(mapping_from_text("zero 1\n").is_err());
    }

    #[test]
    fn empty_mapping() {
        let m = mapping_from_text("# nothing\n").unwrap();
        assert!(m.is_empty());
    }
}
