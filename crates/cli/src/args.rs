//! Minimal `--flag value` argument parsing.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional token).
    pub command: String,
    /// `--key value` pairs (keys without the leading dashes).
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches (no value).
    pub switches: Vec<String>,
    /// Bare tokens after the subcommand (e.g. `report trace.jsonl`).
    pub positionals: Vec<String>,
}

/// CLI failures, printable to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A required option is missing.
    MissingOption(String),
    /// An option's value failed to parse.
    BadValue(String, String),
    /// File or parse errors, pre-formatted.
    Io(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::NoCommand => write!(f, "no command given; try `matchctl help`"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}; try `matchctl help`"),
            CliError::MissingOption(o) => write!(f, "missing required option --{o}"),
            CliError::BadValue(o, v) => write!(f, "bad value {v:?} for --{o}"),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parse a raw token list (excluding the program name).
    ///
    /// Tokens starting with `--` become options when followed by a
    /// non-`--` token, otherwise switches. The first bare token is the
    /// subcommand; later bare tokens not consumed as option values are
    /// positionals.
    pub fn parse<S: AsRef<str>, I: IntoIterator<Item = S>>(tokens: I) -> Result<Args, CliError> {
        let tokens: Vec<String> = tokens.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.options.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                if args.command.is_empty() {
                    args.command = tok.clone();
                } else {
                    args.positionals.push(tok.clone());
                }
                i += 1;
            }
        }
        if args.command.is_empty() {
            return Err(CliError::NoCommand);
        }
        Ok(args)
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::MissingOption(key.to_string()))
    }

    /// An optional string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// A parsed option with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::BadValue(key.to_string(), v.clone())),
        }
    }

    /// True when `--flag` was given.
    pub fn has_switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_switches() {
        let a = Args::parse(["solve", "--size", "20", "--blocking", "--seed", "7"]).unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.required("size").unwrap(), "20");
        assert_eq!(a.parse_or::<u64>("seed", 0).unwrap(), 7);
        assert!(a.has_switch("blocking"));
        assert!(!a.has_switch("quiet"));
    }

    #[test]
    fn missing_and_default_options() {
        let a = Args::parse(["gen"]).unwrap();
        assert!(matches!(
            a.required("size"),
            Err(CliError::MissingOption(_))
        ));
        assert_eq!(a.get_or("algo", "match"), "match");
        assert_eq!(a.parse_or::<usize>("rounds", 5).unwrap(), 5);
    }

    #[test]
    fn bad_value_reported() {
        let a = Args::parse(["gen", "--size", "twenty"]).unwrap();
        assert!(matches!(
            a.parse_or::<usize>("size", 1),
            Err(CliError::BadValue(_, _))
        ));
    }

    #[test]
    fn empty_is_no_command() {
        assert_eq!(Args::parse(Vec::<String>::new()), Err(CliError::NoCommand));
        assert_eq!(Args::parse(["--flag"]).unwrap_err(), CliError::NoCommand);
    }

    #[test]
    fn trailing_flag_is_switch() {
        let a = Args::parse(["sim", "--trace"]).unwrap();
        assert!(a.has_switch("trace"));
    }

    #[test]
    fn positionals_are_captured() {
        let a = Args::parse(["report", "trace.jsonl", "--top", "3", "extra"]).unwrap();
        assert_eq!(a.command, "report");
        assert_eq!(a.positionals, vec!["trace.jsonl", "extra"]);
        assert_eq!(a.required("top").unwrap(), "3");
    }
}
