//! `matchctl` — command-line front end of the MaTCH reproduction.
//!
//! Run `matchctl help` for usage.

use match_cli::{run, Args};

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match Args::parse(tokens).and_then(|args| run(&args)) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("matchctl: {e}");
            std::process::exit(2);
        }
    }
}
