//! The `matchctl` subcommands.

use crate::args::{Args, CliError};
use crate::mapping_io::{mapping_from_text, mapping_to_text};
use match_baselines::{
    FastMapScheme, GreedyMapper, HillClimber, PolishedMatcher, RandomSearch, RecursiveBisection,
    RoundRobin, SimulatedAnnealing,
};
use match_core::{analyze, bijective_lower_bound, IslandMatcher, Mapper, MappingInstance, Matcher};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::overset::OversetConfig;
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::io::{from_text, to_dot, to_text};
use match_graph::{ResourceGraph, TaskGraph};
use match_sim::{SimConfig, SimMode, Simulator};
use match_telemetry::{read_trace_file, JsonlRecorder, NullRecorder, TraceSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The supported subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Generate an instance pair to text files.
    Gen,
    /// Print instance statistics.
    Info,
    /// Solve an instance with a chosen heuristic.
    Solve,
    /// Execute a mapping in the discrete-event simulator.
    Simulate,
    /// Summarise a JSONL solver trace.
    Report,
    /// Export an instance to Graphviz DOT.
    Dot,
    /// Print usage.
    Help,
}

impl Command {
    fn from_name(name: &str) -> Result<Command, CliError> {
        match name {
            "gen" => Ok(Command::Gen),
            "info" => Ok(Command::Info),
            "solve" => Ok(Command::Solve),
            "simulate" | "sim" => Ok(Command::Simulate),
            "report" => Ok(Command::Report),
            "dot" => Ok(Command::Dot),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(CliError::UnknownCommand(other.to_string())),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
matchctl — task mapping on heterogeneous platforms (MaTCH reproduction)

USAGE:
  matchctl gen      --size N [--family paper|overset] [--seed S]
                    [--out-tig FILE] [--out-platform FILE]
  matchctl info     --tig FILE --platform FILE
  matchctl solve    --tig FILE --platform FILE [--algo ALGO] [--seed S] [--out FILE]
                    [--trace FILE.jsonl]
  matchctl simulate --tig FILE --platform FILE --mapping FILE
                    [--rounds N] [--blocking | --link] [--trace FILE.jsonl]
  matchctl report   TRACE.jsonl
  matchctl dot      --tig FILE (or --platform FILE)
  matchctl help

ALGO: match (default) | islands | polish | ga | fastmap | bisect | greedy
      | hill | sa | random | roundrobin
      (--solver is accepted as an alias for --algo; so are the solver
       names fastmap-ga for ga and hillclimb for hill)

--trace streams per-iteration telemetry (JSONL, one event per line);
feed the file to `matchctl report` for a convergence summary.
";

/// Run a parsed command line; returns the text to print.
pub fn run(args: &Args) -> Result<String, CliError> {
    match Command::from_name(&args.command)? {
        Command::Help => Ok(USAGE.to_string()),
        Command::Gen => cmd_gen(args),
        Command::Info => cmd_info(args),
        Command::Solve => cmd_solve(args),
        Command::Simulate => cmd_simulate(args),
        Command::Report => cmd_report(args),
        Command::Dot => cmd_dot(args),
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("reading {path}: {e}")))
}

fn write(path: &str, content: &str) -> Result<(), CliError> {
    std::fs::write(path, content).map_err(|e| CliError::Io(format!("writing {path}: {e}")))
}

fn load_instance(args: &Args) -> Result<MappingInstance, CliError> {
    let tig_text = read(args.required("tig")?)?;
    let platform_text = read(args.required("platform")?)?;
    let tig = TaskGraph::new(
        from_text(&tig_text).map_err(|e| CliError::Io(format!("parsing TIG: {e}")))?,
    )
    .map_err(|e| CliError::Io(format!("invalid TIG: {e}")))?;
    let platform = ResourceGraph::new(
        from_text(&platform_text).map_err(|e| CliError::Io(format!("parsing platform: {e}")))?,
    )
    .map_err(|e| CliError::Io(format!("invalid platform: {e}")))?;
    Ok(MappingInstance::new(&tig, &platform))
}

fn cmd_gen(args: &Args) -> Result<String, CliError> {
    let size: usize = args.parse_or("size", 0)?;
    if size == 0 {
        return Err(CliError::MissingOption("size".into()));
    }
    let seed: u64 = args.parse_or("seed", 2005)?;
    let family = args.get_or("family", "paper");
    let mut rng = StdRng::seed_from_u64(seed);
    let pair = match family {
        "paper" => PaperFamilyConfig::new(size).generate(&mut rng),
        "overset" => OversetConfig::new(size).generate(&mut rng),
        other => return Err(CliError::BadValue("family".into(), other.into())),
    };
    let out_tig = args.get_or("out-tig", "tig.txt");
    let out_platform = args.get_or("out-platform", "platform.txt");
    write(out_tig, &to_text(pair.tig.graph()))?;
    write(out_platform, &to_text(pair.resources.graph()))?;
    Ok(format!(
        "generated {family} instance: {size} tasks -> {out_tig}, {size} resources -> {out_platform} (seed {seed})\n"
    ))
}

fn cmd_info(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args)?;
    let mut out = String::new();
    out.push_str(&format!(
        "tasks: {}   resources: {}   square: {}\n",
        inst.n_tasks(),
        inst.n_resources(),
        inst.is_square()
    ));
    let total_comp: f64 = (0..inst.n_tasks()).map(|t| inst.computation(t)).sum();
    let interactions = inst.adjacency_len() / 2;
    out.push_str(&format!(
        "total computation: {total_comp}   interactions: {interactions}\n"
    ));
    let tig_text = read(args.required("tig")?)?;
    if let Ok(g) = from_text(&tig_text) {
        let s = match_graph::metrics::summarize(&g);
        out.push_str(&format!(
            "TIG: diameter {}  density {:.3}  degrees {}..{} (mean {:.2})  components {}\n",
            s.diameter, s.density, s.min_degree, s.max_degree, s.mean_degree, s.components
        ));
    }
    out.push_str(&format!(
        "lower bound on ET (any mapping): {:.2}\n",
        match_core::lower_bound(&inst)
    ));
    if inst.is_square() {
        out.push_str(&format!(
            "lower bound on ET (bijective): {:.2}\n",
            bijective_lower_bound(&inst)
        ));
    }
    Ok(out)
}

fn build_mapper(name: &str) -> Result<Box<dyn Mapper>, CliError> {
    Ok(match name {
        "match" => Box::new(Matcher::default()),
        "islands" => Box::new(IslandMatcher::default()),
        "ga" | "fastmap-ga" => Box::new(FastMapGa::new(GaConfig::paper_default())),
        "greedy" => Box::new(GreedyMapper),
        "hill" | "hillclimb" => Box::new(HillClimber::default()),
        "sa" => Box::new(SimulatedAnnealing::default()),
        "random" => Box::new(RandomSearch::new(100_000)),
        "roundrobin" => Box::new(RoundRobin),
        "polish" => Box::new(PolishedMatcher::default()),
        "bisect" => Box::new(RecursiveBisection::default()),
        "fastmap" => Box::new(FastMapScheme::new(
            FastMapGa::new(GaConfig::paper_default()),
        )),
        other => return Err(CliError::BadValue("algo".into(), other.into())),
    })
}

/// The `--trace FILE` option; a bare `--trace` switch is an error.
fn trace_path(args: &Args) -> Result<Option<&str>, CliError> {
    match args.options.get("trace") {
        Some(p) => Ok(Some(p.as_str())),
        None if args.has_switch("trace") => Err(CliError::MissingOption("trace FILE".into())),
        None => Ok(None),
    }
}

fn cmd_solve(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args)?;
    // --solver is an alias for --algo (and wins when both are given).
    let algo = args
        .options
        .get("solver")
        .map(String::as_str)
        .unwrap_or_else(|| args.get_or("algo", "match"));
    let seed: u64 = args.parse_or("seed", 1)?;
    let mapper = build_mapper(algo)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace_note = String::new();
    let out = match trace_path(args)? {
        Some(path) => {
            let mut rec = JsonlRecorder::create(std::path::Path::new(path))
                .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
            let out = mapper.map_traced(&inst, &mut rng, &mut rec);
            let lines = rec.lines();
            rec.finish()
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            trace_note = format!("trace: {lines} events -> {path}\n");
            out
        }
        None => mapper.map(&inst, &mut rng),
    };
    out.mapping
        .validate(&inst)
        .map_err(|e| CliError::Io(format!("{algo} produced an invalid mapping: {e}")))?;
    let q = analyze(&inst, out.mapping.as_slice());
    let mut text = format!(
        "{}: ET = {:.2} units, MT = {:.3}s, {} evaluations, {} iterations\n\
         load imbalance: {:.3}   bottleneck comm fraction: {:.1}%\n",
        mapper.name(),
        out.cost,
        out.elapsed.as_secs_f64(),
        out.evaluations,
        out.iterations,
        q.imbalance,
        100.0 * q.comm_fraction_bottleneck,
    );
    if inst.is_square() {
        let lb = bijective_lower_bound(&inst);
        if lb > 0.0 {
            text.push_str(&format!(
                "optimality gap vs lower bound: {:.2}x\n",
                out.cost / lb
            ));
        }
    }
    if let Some(path) = args.options.get("out") {
        write(path, &mapping_to_text(&out.mapping))?;
        text.push_str(&format!("mapping written to {path}\n"));
    }
    text.push_str(&trace_note);
    Ok(text)
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args)?;
    let mapping = mapping_from_text(&read(args.required("mapping")?)?).map_err(CliError::Io)?;
    mapping
        .validate(&inst)
        .map_err(|e| CliError::Io(format!("mapping does not fit the instance: {e}")))?;
    let rounds: usize = args.parse_or("rounds", 1)?;
    let mode = if args.has_switch("link") {
        SimMode::LinkContention
    } else if args.has_switch("blocking") {
        SimMode::BlockingReceives
    } else {
        SimMode::PaperSerial
    };
    let sim = Simulator::new(
        &inst,
        SimConfig {
            rounds,
            mode,
            trace: false,
        },
    );
    let mut trace_note = String::new();
    let rep = match trace_path(args)? {
        Some(path) => {
            let mut rec = JsonlRecorder::create(std::path::Path::new(path))
                .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
            let rep = sim.run_traced(&mapping, &mut rec);
            let lines = rec.lines();
            rec.finish()
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            trace_note = format!("trace: {lines} events -> {path}\n");
            rep
        }
        None => sim.run_traced(&mapping, &mut NullRecorder),
    };
    let mut text = format!(
        "simulated {rounds} round(s), mode {mode:?}\nmakespan: {:.2} units   events: {} (peak queue {})\n",
        rep.makespan, rep.events, rep.peak_queue_depth
    );
    text.push_str(&format!(
        "mean utilisation: {:.1}%\n",
        100.0 * rep.mean_utilization()
    ));
    for (s, b) in rep.busy.iter().enumerate() {
        text.push_str(&format!("  resource {s}: busy {b:.2}\n"));
    }
    text.push_str(&trace_note);
    Ok(text)
}

fn cmd_report(args: &Args) -> Result<String, CliError> {
    // Path comes as a positional (`matchctl report out.jsonl`) or via
    // `--trace` for symmetry with solve/simulate.
    let path = match args.positionals.first().map(String::as_str) {
        Some(p) => p,
        None => trace_path(args)?
            .ok_or_else(|| CliError::MissingOption("trace file argument".into()))?,
    };
    let events = read_trace_file(std::path::Path::new(path))
        .map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    if events.is_empty() {
        return Err(CliError::Io(format!("{path}: trace contains no events")));
    }
    Ok(TraceSummary::from_events(&events).render())
}

fn cmd_dot(args: &Args) -> Result<String, CliError> {
    if let Some(path) = args.options.get("tig") {
        let g = from_text(&read(path)?).map_err(|e| CliError::Io(format!("parsing: {e}")))?;
        Ok(to_dot(&g, "tig"))
    } else if let Some(path) = args.options.get("platform") {
        let g = from_text(&read(path)?).map_err(|e| CliError::Io(format!("parsing: {e}")))?;
        Ok(to_dot(&g, "platform"))
    } else {
        Err(CliError::MissingOption("tig (or platform)".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "matchctl-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_tokens(tokens: &[&str]) -> Result<String, CliError> {
        run(&Args::parse(tokens.iter().copied()).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let s = run_tokens(&["help"]).unwrap();
        assert!(s.contains("matchctl"));
        assert!(s.contains("solve"));
    }

    #[test]
    fn unknown_command_rejected() {
        let a = Args::parse(["frobnicate"]).unwrap();
        assert!(matches!(run(&a), Err(CliError::UnknownCommand(_))));
    }

    #[test]
    fn full_pipeline_gen_info_solve_simulate() {
        let dir = tmpdir();
        let tig = dir.join("tig.txt");
        let platform = dir.join("platform.txt");
        let mapping = dir.join("mapping.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = platform.to_str().unwrap();
        let map_s = mapping.to_str().unwrap();

        let s = run_tokens(&[
            "gen",
            "--size",
            "8",
            "--seed",
            "3",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        assert!(s.contains("generated"));

        let s = run_tokens(&["info", "--tig", tig_s, "--platform", plat_s]).unwrap();
        assert!(s.contains("tasks: 8"));
        assert!(s.contains("lower bound"));

        let s = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "greedy",
            "--out",
            map_s,
        ])
        .unwrap();
        assert!(s.contains("Greedy: ET ="));
        assert!(s.contains("mapping written"));

        let s = run_tokens(&[
            "simulate",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--mapping",
            map_s,
            "--rounds",
            "3",
        ])
        .unwrap();
        assert!(s.contains("makespan"));
        assert!(s.contains("resource 7"));

        let s = run_tokens(&["dot", "--tig", tig_s]).unwrap();
        assert!(s.starts_with("graph tig {"));

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_with_matcher_on_generated_instance() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        let s = run_tokens(&[
            "solve",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
            "--algo",
            "match",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(s.contains("MaTCH: ET ="));
        assert!(s.contains("optimality gap"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_trace_and_report_roundtrip_all_solvers() {
        use match_telemetry::Event;
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        for solver in ["match", "fastmap-ga", "sa", "hillclimb", "islands"] {
            let trace = dir.join(format!("{solver}.jsonl"));
            let trace_s = trace.to_str().unwrap();
            let s = run_tokens(&[
                "solve",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--solver",
                solver,
                "--seed",
                "3",
                "--trace",
                trace_s,
            ])
            .unwrap();
            assert!(s.contains("trace:"), "{solver}: {s}");
            // Every line parses and at least one per-iteration record
            // exists between run_start and run_end.
            let events = read_trace_file(&trace).unwrap();
            assert!(
                matches!(events.first(), Some(Event::RunStart { .. })),
                "{solver} trace must open with run_start"
            );
            assert!(
                matches!(events.last(), Some(Event::RunEnd { .. })),
                "{solver} trace must close with run_end"
            );
            assert!(
                events.iter().any(|e| matches!(e, Event::Iter(_))),
                "{solver} trace has no iter events"
            );
            let report = run_tokens(&["report", trace_s]).unwrap();
            assert!(report.contains("iterations"), "{solver}: {report}");
            assert!(report.contains("best cost"), "{solver}: {report}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn traced_solve_matches_untraced_solve() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let trace = dir.join("out.jsonl");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        let plain = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "sa",
            "--seed",
            "9",
        ])
        .unwrap();
        let traced = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "sa",
            "--seed",
            "9",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        // Identical ET (the wall-clock MT field legitimately differs):
        // tracing must not perturb the RNG stream.
        let et = |s: &str| s.split(" units").next().unwrap().to_string();
        assert_eq!(et(&plain), et(&traced));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_trace_and_report() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let map = dir.join("m.txt");
        let trace = dir.join("sim.jsonl");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "8",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "greedy",
            "--out",
            map.to_str().unwrap(),
        ])
        .unwrap();
        let s = run_tokens(&[
            "simulate",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--mapping",
            map.to_str().unwrap(),
            "--rounds",
            "40",
            "--blocking",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("peak queue"));
        assert!(s.contains("trace:"));
        let report = run_tokens(&["report", trace.to_str().unwrap()]).unwrap();
        assert!(report.contains("sim_items"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn report_rejects_garbage() {
        let dir = tmpdir();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let r = run_tokens(&["report", bad.to_str().unwrap()]);
        assert!(matches!(r, Err(CliError::Io(_))));
        let r = run_tokens(&["report"]);
        assert!(matches!(r, Err(CliError::MissingOption(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bad_algo_reported() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        run_tokens(&[
            "gen",
            "--size",
            "4",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        let r = run_tokens(&[
            "solve",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
            "--algo",
            "quantum",
        ]);
        assert!(matches!(r, Err(CliError::BadValue(_, _))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_files_reported() {
        let r = run_tokens(&[
            "info",
            "--tig",
            "/nonexistent/a",
            "--platform",
            "/nonexistent/b",
        ]);
        assert!(matches!(r, Err(CliError::Io(_))));
    }

    #[test]
    fn overset_family_generates() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let s = run_tokens(&[
            "gen",
            "--size",
            "7",
            "--family",
            "overset",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("overset"));
        let s = run_tokens(&[
            "info",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("tasks: 7"));
        std::fs::remove_dir_all(dir).ok();
    }
}
