//! The `matchctl` subcommands.

use crate::args::{Args, CliError};
use crate::mapping_io::{mapping_from_text, mapping_to_text};
use match_baselines::{
    FastMapScheme, GreedyMapper, HillClimber, PolishedMatcher, RandomSearch, RecursiveBisection,
    RoundRobin, SimulatedAnnealing,
};
use match_core::{
    analyze, bijective_lower_bound, CapacityModel, EvalBackend, IslandMatcher, Mapper,
    MapperOutcome, MappingInstance, MatchConfig, Matcher, MultilevelConfig, RemapConfig,
    SamplerMode,
};
use match_ga::{FastMapGa, GaConfig};
use match_graph::gen::large::LargeFamilyConfig;
use match_graph::gen::overset::OversetConfig;
use match_graph::gen::paper::PaperFamilyConfig;
use match_graph::gen::topology::{CapacitySpec, TopologyConfig, TopologyKind};
use match_graph::io::{from_text, to_dot, to_text};
use match_graph::{ResourceGraph, TaskGraph};
use match_multilevel::MultilevelMapper;
use match_serve::{Client, RemapRequest, Request, Response, ServeConfig, Server, SolveRequest};
use match_sim::{run_dynamic, DynamicConfig, SimConfig, SimMode, Simulator};
use match_telemetry::{read_trace_file, JsonlRecorder, NullRecorder, TraceSummary};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The supported subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Generate an instance pair to text files.
    Gen,
    /// Print instance statistics.
    Info,
    /// Solve an instance with a chosen heuristic.
    Solve,
    /// Execute a mapping in the discrete-event simulator.
    Simulate,
    /// Summarise a JSONL solver trace.
    Report,
    /// Export an instance to Graphviz DOT.
    Dot,
    /// Run the mapping-service daemon.
    Serve,
    /// Run the consistent-hashing router over several daemons.
    Router,
    /// Submit work to a running daemon.
    Submit,
    /// Fetch one Prometheus metrics snapshot from a daemon.
    Metrics,
    /// Poll a daemon's metrics and render a live dashboard.
    Top,
    /// Run the differential/metamorphic/golden-trajectory harness.
    Verify,
    /// Print usage.
    Help,
}

impl Command {
    fn from_name(name: &str) -> Result<Command, CliError> {
        match name {
            "gen" => Ok(Command::Gen),
            "info" => Ok(Command::Info),
            "solve" => Ok(Command::Solve),
            "simulate" | "sim" => Ok(Command::Simulate),
            "report" => Ok(Command::Report),
            "dot" => Ok(Command::Dot),
            "serve" => Ok(Command::Serve),
            "router" => Ok(Command::Router),
            "submit" => Ok(Command::Submit),
            "metrics" => Ok(Command::Metrics),
            "top" => Ok(Command::Top),
            "verify" => Ok(Command::Verify),
            "help" | "--help" | "-h" => Ok(Command::Help),
            other => Err(CliError::UnknownCommand(other.to_string())),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
matchctl — task mapping on heterogeneous platforms (MaTCH reproduction)

USAGE:
  matchctl gen      --size N [--family paper|overset|large
                    |grid|torus|fattree|dragonfly] [--seed S]
                    [--out-tig FILE] [--out-platform FILE] [--out-caps FILE]
  matchctl info     --tig FILE --platform FILE
  matchctl solve    --tig FILE --platform FILE [--algo ALGO] [--seed S] [--out FILE]
                    [--threads N] [--sampler auto|sequential|batched]
                    [--backend auto|scalar|simd]
                    [--coarsen-target N] [--refine-passes N]
                    [--caps FILE] [--cap-gamma G]
                    [--trace FILE.jsonl]
  matchctl simulate --tig FILE --platform FILE --mapping FILE
                    [--rounds N] [--blocking | --link] [--trace FILE.jsonl]
  matchctl simulate --tig FILE --platform FILE --dynamic
                    [--epochs N] [--events N] [--mu M] [--seed S]
                    [--trace FILE.jsonl]
  matchctl report   TRACE.jsonl [--gantt] [--request ID]
  matchctl report   --diff A.jsonl B.jsonl   (side-by-side comparison)
  matchctl dot      --tig FILE (or --platform FILE)
  matchctl serve    [--addr HOST:PORT] [--workers N] [--io-threads N]
                    [--queue-cap N] [--cache-cap N] [--trace FILE.jsonl]
                    [--addr-file FILE] [--metrics-addr HOST:PORT]
                    [--metrics-addr-file FILE] [--shard LABEL]
                    [--warm-alpha A] [--warm-store FILE] [--warm-cap N]
                    [--solver-threads N] [--drain-deadline-ms MS]
  matchctl router   --backends ADDR1,ADDR2,... [--addr HOST:PORT]
                    [--addr-file FILE] [--health-interval-ms MS]
  matchctl submit   [--addr HOST:PORT] --tig FILE --platform FILE
                    [--algo ALGO] [--seed S] [--deadline-ms MS] [--id ID]
                    [--backend auto|scalar|simd]
                    [--count N] [--concurrency C] [--trace-out FILE.jsonl]
                    [--remap-prior FILE [--mu N]]
  matchctl submit   [--addr HOST:PORT] --batch FILE   (lines: TIG PLATFORM
                    [ALGO [SEED [DEADLINE_MS]]])
  matchctl submit   [--addr HOST:PORT] --stats | --shutdown
  matchctl metrics  [--addr HOST:PORT | --http HOST:PORT]
  matchctl top      [--addr HOST:PORT] [--interval-ms MS] [--count N]
                    [--no-clear]
  matchctl verify   [--corpus smoke|ci|full] [--seed S] [--fixtures DIR]
                    [--update-golden]
  matchctl help

ALGO: match (default) | multilevel | islands | polish | ga | fastmap
      | bisect | greedy | hill | sa | random | roundrobin
      (--solver is accepted as an alias for --algo; so are the solver
       names fastmap-ga for ga and hillclimb for hill; --threads,
       --sampler and --backend apply to match and ga; --threads,
       --backend, --coarsen-target and --refine-passes apply to
       multilevel, which scales past n ≈ 50 by
       coarsening to paper scale, solving with batched CE and refining
       back up — use `gen --family large` for sparse large-n instances;
       submit also accepts match-batched | match-sequential | ga-batched
       | ga-sequential to pin the CE or GA generation pipeline
       daemon-side)

--trace streams per-iteration telemetry (JSONL, one event per line);
feed the file to `matchctl report` for a convergence summary.

`serve --warm-alpha A` (0 < A <= 1) warm-starts CE-family solves from a
persisted stochastic-matrix store keyed by graph *structure* (weights
quantized), seeding P = A*prior + (1-A)*uniform; --warm-store persists
the store across restarts (flushed and fsynced on drain). `router`
consistent-hashes each instance across the backends (bounded remap on
membership change, health-checked). `submit --count N --concurrency C`
expands the request into N jobs (seed base+i) pipelined over C
connections and prints throughput and latency percentiles; --trace-out
appends one JSONL record per response.

`gen --family grid|torus|fattree|dragonfly` builds a topology-aware
platform whose link costs grow monotonically with hop distance;
--out-caps also writes per-resource memory/bandwidth capacities, which
`solve --caps FILE --cap-gamma G` folds into the Eq. 1 objective as a
soft penalty (γ = 0 is bit-neutral; CE solver only). `simulate
--dynamic` streams task arrival/departure events and re-maps
incrementally after every batch (warm-started from the previous epoch,
refinement restricted to the changed subgraph); --mu weighs the
migration-cost term μ·|moved|. `submit --remap-prior FILE` sends one
`remap` request carrying the prior mapping so the daemon re-maps
incrementally instead of solving cold.

`metrics` prints one Prometheus text-format snapshot (over the JSONL
protocol by default, or scraped from the HTTP side port with --http);
`top` polls the same snapshot and renders queue/cache/latency series
with per-frame deltas (--count 0 polls until interrupted). A service
trace recorded with `serve --trace` carries per-request spans named
req:ID#SEQ:stage; `report --request ID` correlates them.
";

/// Run a parsed command line; returns the text to print.
pub fn run(args: &Args) -> Result<String, CliError> {
    match Command::from_name(&args.command)? {
        Command::Help => Ok(USAGE.to_string()),
        Command::Gen => cmd_gen(args),
        Command::Info => cmd_info(args),
        Command::Solve => cmd_solve(args),
        Command::Simulate => cmd_simulate(args),
        Command::Report => cmd_report(args),
        Command::Dot => cmd_dot(args),
        Command::Serve => cmd_serve(args),
        Command::Router => cmd_router(args),
        Command::Submit => cmd_submit(args),
        Command::Metrics => cmd_metrics(args),
        Command::Top => cmd_top(args),
        Command::Verify => cmd_verify(args),
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("reading {path}: {e}")))
}

fn write(path: &str, content: &str) -> Result<(), CliError> {
    std::fs::write(path, content).map_err(|e| CliError::Io(format!("writing {path}: {e}")))
}

fn load_instance(args: &Args) -> Result<MappingInstance, CliError> {
    let tig_text = read(args.required("tig")?)?;
    let platform_text = read(args.required("platform")?)?;
    let tig = TaskGraph::new(
        from_text(&tig_text).map_err(|e| CliError::Io(format!("parsing TIG: {e}")))?,
    )
    .map_err(|e| CliError::Io(format!("invalid TIG: {e}")))?;
    let platform = ResourceGraph::new(
        from_text(&platform_text).map_err(|e| CliError::Io(format!("parsing platform: {e}")))?,
    )
    .map_err(|e| CliError::Io(format!("invalid platform: {e}")))?;
    Ok(MappingInstance::new(&tig, &platform))
}

fn cmd_gen(args: &Args) -> Result<String, CliError> {
    let size: usize = args.parse_or("size", 0)?;
    if size == 0 {
        return Err(CliError::MissingOption("size".into()));
    }
    let seed: u64 = args.parse_or("seed", 2005)?;
    let family = args.get_or("family", "paper");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut caps_note = String::new();
    let pair = match family {
        "paper" => PaperFamilyConfig::new(size).generate(&mut rng),
        "overset" => OversetConfig::new(size).generate(&mut rng),
        "large" => LargeFamilyConfig::new(size).generate(&mut rng),
        other => match TopologyKind::from_name(other) {
            Some(kind) => {
                let cfg = TopologyConfig::new(kind, size);
                let pair = cfg.generate(&mut rng);
                if let Some(path) = args.options.get("out-caps") {
                    write(path, &cfg.generate_caps(&mut rng).to_text())?;
                    caps_note = format!(", capacities -> {path}");
                }
                pair
            }
            None => return Err(CliError::BadValue("family".into(), other.into())),
        },
    };
    if args.options.contains_key("out-caps") && caps_note.is_empty() {
        // Capacities are a property of the topology families only.
        return Err(CliError::BadValue("out-caps".into(), family.into()));
    }
    let out_tig = args.get_or("out-tig", "tig.txt");
    let out_platform = args.get_or("out-platform", "platform.txt");
    write(out_tig, &to_text(pair.tig.graph()))?;
    write(out_platform, &to_text(pair.resources.graph()))?;
    Ok(format!(
        "generated {family} instance: {size} tasks -> {out_tig}, {size} resources -> {out_platform} (seed {seed}){caps_note}\n"
    ))
}

fn cmd_info(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args)?;
    let mut out = String::new();
    out.push_str(&format!(
        "tasks: {}   resources: {}   square: {}\n",
        inst.n_tasks(),
        inst.n_resources(),
        inst.is_square()
    ));
    let total_comp: f64 = (0..inst.n_tasks()).map(|t| inst.computation(t)).sum();
    let interactions = inst.adjacency_len() / 2;
    out.push_str(&format!(
        "total computation: {total_comp}   interactions: {interactions}\n"
    ));
    let tig_text = read(args.required("tig")?)?;
    if let Ok(g) = from_text(&tig_text) {
        let s = match_graph::metrics::summarize(&g);
        out.push_str(&format!(
            "TIG: diameter {}  density {:.3}  degrees {}..{} (mean {:.2})  components {}\n",
            s.diameter, s.density, s.min_degree, s.max_degree, s.mean_degree, s.components
        ));
    }
    out.push_str(&format!(
        "lower bound on ET (any mapping): {:.2}\n",
        match_core::lower_bound(&inst)
    ));
    if inst.is_square() {
        out.push_str(&format!(
            "lower bound on ET (bijective): {:.2}\n",
            bijective_lower_bound(&inst)
        ));
    }
    Ok(out)
}

/// The `--sampler auto|sequential|batched` option (CE solvers only).
fn sampler_mode(args: &Args) -> Result<SamplerMode, CliError> {
    Ok(match args.options.get("sampler").map(String::as_str) {
        None | Some("auto") => SamplerMode::Auto,
        Some("sequential") => SamplerMode::Sequential,
        Some("batched") => SamplerMode::Batched,
        Some(other) => return Err(CliError::BadValue("sampler".into(), other.into())),
    })
}

/// The `--backend auto|scalar|simd` option (batched pipelines only;
/// both kernels are bit-identical, so this is a throughput knob).
fn backend_mode(args: &Args) -> Result<EvalBackend, CliError> {
    match args.options.get("backend") {
        None => Ok(EvalBackend::Auto),
        Some(name) => EvalBackend::parse(name)
            .ok_or_else(|| CliError::BadValue("backend".into(), name.clone())),
    }
}

fn build_mapper(
    name: &str,
    threads: Option<usize>,
    sampler: SamplerMode,
    backend: EvalBackend,
    multilevel: MultilevelConfig,
) -> Result<Box<dyn Mapper>, CliError> {
    Ok(match name {
        "multilevel" => Box::new(MultilevelMapper::new(multilevel)),
        "match" => Box::new(Matcher::new(MatchConfig {
            threads: threads.unwrap_or_else(match_par::default_threads),
            sampler,
            backend,
            ..MatchConfig::default()
        })),
        "islands" => Box::new(IslandMatcher::default()),
        // The GA honours the same --threads/--sampler pair as `match`:
        // Auto resolves to the batched pipeline when threads > 1 and the
        // instance reaches SamplerMode::AUTO_BATCH_MIN_TASKS, and
        // `--sampler sequential` pins the historical per-individual loop
        // (bit-exact with pre-batching releases).
        "ga" | "fastmap-ga" => Box::new(FastMapGa::new(GaConfig {
            threads: threads.unwrap_or_else(match_par::default_threads),
            sampler,
            backend,
            ..GaConfig::paper_default()
        })),
        "greedy" => Box::new(GreedyMapper),
        "hill" | "hillclimb" => Box::new(HillClimber::default()),
        "sa" => Box::new(SimulatedAnnealing::default()),
        "random" => Box::new(RandomSearch::new(100_000)),
        "roundrobin" => Box::new(RoundRobin),
        "polish" => Box::new(PolishedMatcher::default()),
        "bisect" => Box::new(RecursiveBisection::default()),
        "fastmap" => Box::new(FastMapScheme::new(
            FastMapGa::new(GaConfig::paper_default()),
        )),
        other => return Err(CliError::BadValue("algo".into(), other.into())),
    })
}

/// The `--coarsen-target/--refine-passes` pair (multilevel solver only);
/// `--threads` is shared with the CE/GA solvers and reused here.
fn multilevel_config(
    args: &Args,
    threads: Option<usize>,
    backend: EvalBackend,
) -> Result<MultilevelConfig, CliError> {
    let defaults = MultilevelConfig::default();
    let coarsen_target: usize = args.parse_or("coarsen-target", defaults.coarsen_target)?;
    if coarsen_target < 2 {
        return Err(CliError::BadValue(
            "coarsen-target".into(),
            coarsen_target.to_string(),
        ));
    }
    Ok(MultilevelConfig {
        coarsen_target,
        refine_passes: args.parse_or("refine-passes", defaults.refine_passes)?,
        threads: threads.unwrap_or(defaults.threads),
        refine_candidates: defaults.refine_candidates,
        backend,
    })
}

/// The `--trace FILE` option; a bare `--trace` switch is an error.
fn trace_path(args: &Args) -> Result<Option<&str>, CliError> {
    match args.options.get("trace") {
        Some(p) => Ok(Some(p.as_str())),
        None if args.has_switch("trace") => Err(CliError::MissingOption("trace FILE".into())),
        None => Ok(None),
    }
}

fn cmd_solve(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args)?;
    // --solver is an alias for --algo (and wins when both are given).
    let algo = args
        .options
        .get("solver")
        .map(String::as_str)
        .unwrap_or_else(|| args.get_or("algo", "match"));
    let seed: u64 = args.parse_or("seed", 1)?;
    let threads = match args.options.get("threads") {
        Some(_) => {
            let t: usize = args.parse_or("threads", 1)?;
            if t == 0 {
                return Err(CliError::BadValue("threads".into(), "0".into()));
            }
            Some(t)
        }
        None => None,
    };
    let backend = backend_mode(args)?;
    // --caps FILE folds per-resource memory/bandwidth capacities into
    // the objective as a soft penalty weighted by --cap-gamma (γ = 0 is
    // bit-neutral). The capacitated objective lives on the CE solver.
    let caps = match args.options.get("caps") {
        None => None,
        Some(path) => {
            if algo != "match" {
                return Err(CliError::BadValue("caps".into(), algo.into()));
            }
            let gamma: f64 = args.parse_or("cap-gamma", 1.0)?;
            let spec = CapacitySpec::from_text(&read(path)?)
                .map_err(|e| CliError::Io(format!("parsing {path}: {e}")))?;
            Some(CapacityModel::from_spec(&spec, gamma))
        }
    };
    let mapper = build_mapper(
        algo,
        threads,
        sampler_mode(args)?,
        backend,
        multilevel_config(args, threads, backend)?,
    )?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace_note = String::new();
    let out = if let Some(model) = &caps {
        let matcher = Matcher::new(MatchConfig {
            threads: threads.unwrap_or_else(match_par::default_threads),
            sampler: sampler_mode(args)?,
            backend,
            ..MatchConfig::default()
        });
        let o = match trace_path(args)? {
            Some(path) => {
                let mut rec = JsonlRecorder::create(std::path::Path::new(path))
                    .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
                let o = matcher.run_capacitated_controlled(
                    &inst,
                    model,
                    &mut rng,
                    &mut rec,
                    &match_core::StopToken::never(),
                );
                let lines = rec.lines();
                rec.finish()
                    .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
                trace_note = format!("trace: {lines} events -> {path}\n");
                o
            }
            None => matcher.run_capacitated(&inst, model, &mut rng),
        };
        MapperOutcome {
            mapping: o.mapping,
            cost: o.cost,
            evaluations: o.evaluations,
            iterations: o.iterations,
            elapsed: o.elapsed,
        }
    } else {
        match trace_path(args)? {
            Some(path) => {
                let mut rec = JsonlRecorder::create(std::path::Path::new(path))
                    .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
                let out = mapper.map_traced(&inst, &mut rng, &mut rec);
                let lines = rec.lines();
                rec.finish()
                    .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
                trace_note = format!("trace: {lines} events -> {path}\n");
                out
            }
            None => mapper.map(&inst, &mut rng),
        }
    };
    out.mapping
        .validate(&inst)
        .map_err(|e| CliError::Io(format!("{algo} produced an invalid mapping: {e}")))?;
    let q = analyze(&inst, out.mapping.as_slice());
    let mut text = format!(
        "{}: ET = {:.2} units, MT = {:.3}s, {} evaluations, {} iterations\n\
         load imbalance: {:.3}   bottleneck comm fraction: {:.1}%\n",
        mapper.name(),
        out.cost,
        out.elapsed.as_secs_f64(),
        out.evaluations,
        out.iterations,
        q.imbalance,
        100.0 * q.comm_fraction_bottleneck,
    );
    if inst.is_square() {
        let lb = bijective_lower_bound(&inst);
        if lb > 0.0 {
            text.push_str(&format!(
                "optimality gap vs lower bound: {:.2}x\n",
                out.cost / lb
            ));
        }
    }
    if let Some(path) = args.options.get("out") {
        write(path, &mapping_to_text(&out.mapping))?;
        text.push_str(&format!("mapping written to {path}\n"));
    }
    text.push_str(&trace_note);
    Ok(text)
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let inst = load_instance(args)?;
    if args.has_switch("dynamic") {
        return simulate_dynamic(args, &inst);
    }
    let mapping = mapping_from_text(&read(args.required("mapping")?)?).map_err(CliError::Io)?;
    mapping
        .validate(&inst)
        .map_err(|e| CliError::Io(format!("mapping does not fit the instance: {e}")))?;
    let rounds: usize = args.parse_or("rounds", 1)?;
    let mode = if args.has_switch("link") {
        SimMode::LinkContention
    } else if args.has_switch("blocking") {
        SimMode::BlockingReceives
    } else {
        SimMode::PaperSerial
    };
    let sim = Simulator::new(
        &inst,
        SimConfig {
            rounds,
            mode,
            trace: false,
        },
    );
    let mut trace_note = String::new();
    let rep = match trace_path(args)? {
        Some(path) => {
            let mut rec = JsonlRecorder::create(std::path::Path::new(path))
                .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
            let rep = sim.run_traced(&mapping, &mut rec);
            let lines = rec.lines();
            rec.finish()
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            trace_note = format!("trace: {lines} events -> {path}\n");
            rep
        }
        None => sim.run_traced(&mapping, &mut NullRecorder),
    };
    let mut text = format!(
        "simulated {rounds} round(s), mode {mode:?}\nmakespan: {:.2} units   events: {} (peak queue {})\n",
        rep.makespan, rep.events, rep.peak_queue_depth
    );
    text.push_str(&format!(
        "mean utilisation: {:.1}%\n",
        100.0 * rep.mean_utilization()
    ));
    for (s, b) in rep.busy.iter().enumerate() {
        text.push_str(&format!("  resource {s}: busy {b:.2}\n"));
    }
    text.push_str(&trace_note);
    Ok(text)
}

/// `simulate --dynamic`: stream task arrival/departure events over the
/// instance and re-map incrementally after each batch, warm-starting
/// from the previous epoch's mapping with refinement restricted to the
/// changed subgraph. `--mu` weighs the migration-cost term μ·|moved|.
fn simulate_dynamic(args: &Args, inst: &MappingInstance) -> Result<String, CliError> {
    let epochs: usize = args.parse_or("epochs", 5)?;
    if epochs == 0 {
        return Err(CliError::BadValue("epochs".into(), "0".into()));
    }
    let events: usize = args.parse_or("events", 3)?;
    let mu: f64 = args.parse_or("mu", 0.0)?;
    if !mu.is_finite() || mu < 0.0 {
        return Err(CliError::BadValue("mu".into(), mu.to_string()));
    }
    let seed: u64 = args.parse_or("seed", 1)?;
    let cfg = DynamicConfig {
        epochs,
        events_per_epoch: events,
        remap: RemapConfig {
            mu,
            ..RemapConfig::default()
        },
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace_note = String::new();
    let rep = match trace_path(args)? {
        Some(path) => {
            let mut rec = JsonlRecorder::create(std::path::Path::new(path))
                .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
            let rep = run_dynamic(inst, &cfg, &mut rng, &mut rec);
            let lines = rec.lines();
            rec.finish()
                .map_err(|e| CliError::Io(format!("writing {path}: {e}")))?;
            trace_note = format!("trace: {lines} events -> {path}\n");
            rep
        }
        None => run_dynamic(inst, &cfg, &mut rng, &mut NullRecorder),
    };
    let mut text = format!(
        "dynamic workload: {} tasks, {epochs} epoch(s), {events} event(s)/epoch, mu = {mu}\n",
        inst.n_tasks()
    );
    for ep in &rep.epochs {
        let o = &ep.outcome;
        text.push_str(&format!(
            "  epoch {}: {} events, {} tasks changed, {} active | ET {:.2} + migration {:.2} \
             = {:.2} ({} moved, {}, {} evaluations)\n",
            ep.epoch,
            ep.events,
            ep.changed,
            ep.active,
            o.cost,
            o.migration_cost,
            o.total,
            o.migrated,
            if o.warm { "warm" } else { "cold" },
            o.evaluations,
        ));
    }
    text.push_str(&format!("total migrations: {}\n", rep.total_migrations()));
    text.push_str(&trace_note);
    Ok(text)
}

/// Read a JSONL trace and summarise it, with path context on errors.
fn load_summary(path: &str) -> Result<TraceSummary, CliError> {
    let events = read_trace_file(std::path::Path::new(path))
        .map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    if events.is_empty() {
        return Err(CliError::Io(format!("{path}: trace contains no events")));
    }
    Ok(TraceSummary::from_events(&events))
}

fn cmd_report(args: &Args) -> Result<String, CliError> {
    // `--diff A.jsonl B.jsonl` renders two traces side by side; the
    // first file is the option value, the second the next positional.
    if args.has_switch("diff") {
        return Err(CliError::MissingOption("diff A.jsonl B.jsonl".into()));
    }
    if let Some(a_path) = args.options.get("diff") {
        let b_path = args
            .positionals
            .first()
            .map(String::as_str)
            .ok_or_else(|| CliError::MissingOption("second trace for --diff".into()))?;
        let a = load_summary(a_path)?;
        let b = load_summary(b_path)?;
        return Ok(match_telemetry::render_diff(&a, a_path, &b, b_path));
    }
    // Path comes as a positional (`matchctl report out.jsonl`) or via
    // `--trace` for symmetry with solve/simulate.
    let path = match args.positionals.first().map(String::as_str) {
        Some(p) => p,
        None => trace_path(args)?
            .ok_or_else(|| CliError::MissingOption("trace file argument".into()))?,
    };
    let events = read_trace_file(std::path::Path::new(path))
        .map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    if events.is_empty() {
        return Err(CliError::Io(format!("{path}: trace contains no events")));
    }
    if args.has_switch("request") {
        return Err(CliError::MissingOption("request ID".into()));
    }
    if let Some(wanted) = args.options.get("request") {
        return render_request_report(path, &events, wanted);
    }
    let mut text = TraceSummary::from_events(&events).render();
    if args.has_switch("gantt") {
        match match_viz::trace_gantt(&events, 72, "\nschedule timeline (█ busy, ▒ idle):") {
            Some(chart) => text.push_str(&chart),
            None => text.push_str("\n(no schedule spans in this trace — run `matchctl simulate --trace` to record one)\n"),
        }
    }
    Ok(text)
}

/// `report --request ID`: correlate the per-request spans that
/// `match-serve --trace` records as `req:ID#SEQ:stage`. `ID` may be
/// the full trace id (`alpha#0`) or just the job id (`alpha`).
fn render_request_report(
    path: &str,
    events: &[match_telemetry::Event],
    wanted: &str,
) -> Result<String, CliError> {
    let mut by_tid: std::collections::BTreeMap<String, Vec<(String, u64)>> = Default::default();
    for e in events {
        if let match_telemetry::Event::Span(s) = e {
            if let Some(rest) = s.name.strip_prefix("req:") {
                if let Some((tid, stage)) = rest.rsplit_once(':') {
                    by_tid
                        .entry(tid.to_string())
                        .or_default()
                        .push((stage.to_string(), s.wall_ns));
                }
            }
        }
    }
    if by_tid.is_empty() {
        return Err(CliError::Io(format!(
            "{path}: no request-scoped spans (req:ID#SEQ:stage) — record a \
             service trace with `matchctl serve --trace FILE.jsonl`"
        )));
    }
    let hits: Vec<(&String, &Vec<(String, u64)>)> = by_tid
        .iter()
        .filter(|(tid, _)| *tid == wanted || tid.starts_with(&format!("{wanted}#")))
        .collect();
    if hits.is_empty() {
        let known: Vec<&str> = by_tid.keys().take(8).map(String::as_str).collect();
        return Err(CliError::Io(format!(
            "{path}: no request matches {wanted:?}; trace ids include {}",
            known.join(", ")
        )));
    }
    let mut out = format!("requests matching {wanted:?} in {path}:\n");
    for (tid, stages) in hits {
        let total: u64 = stages.iter().map(|(_, ns)| *ns).sum();
        out.push_str(&format!("  {tid}  (total {:.3}ms)\n", total as f64 / 1e6));
        for (stage, ns) in stages {
            out.push_str(&format!("    {stage:<12} {:>10.3}ms\n", *ns as f64 / 1e6));
        }
    }
    Ok(out)
}

fn cmd_dot(args: &Args) -> Result<String, CliError> {
    if let Some(path) = args.options.get("tig") {
        let g = from_text(&read(path)?).map_err(|e| CliError::Io(format!("parsing: {e}")))?;
        Ok(to_dot(&g, "tig"))
    } else if let Some(path) = args.options.get("platform") {
        let g = from_text(&read(path)?).map_err(|e| CliError::Io(format!("parsing: {e}")))?;
        Ok(to_dot(&g, "platform"))
    } else {
        Err(CliError::MissingOption("tig (or platform)".into()))
    }
}

fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let defaults = ServeConfig::default();
    let warm_alpha: f64 = args.parse_or("warm-alpha", defaults.warm_alpha)?;
    if !(0.0..=1.0).contains(&warm_alpha) {
        return Err(CliError::BadValue(
            "warm-alpha".into(),
            warm_alpha.to_string(),
        ));
    }
    let solver_threads = match args.options.get("solver-threads") {
        Some(_) => {
            let t: usize = args.parse_or("solver-threads", 1)?;
            if t == 0 {
                return Err(CliError::BadValue("solver-threads".into(), "0".into()));
            }
            Some(t)
        }
        None => None,
    };
    let drain_deadline = match args.options.get("drain-deadline-ms") {
        Some(_) => Some(std::time::Duration::from_millis(
            args.parse_or("drain-deadline-ms", 0)?,
        )),
        None => None,
    };
    let config = ServeConfig {
        addr: args.get_or("addr", &defaults.addr).to_string(),
        workers: args.parse_or("workers", defaults.workers)?,
        io_threads: args.parse_or("io-threads", defaults.io_threads)?,
        queue_cap: args.parse_or("queue-cap", defaults.queue_cap)?,
        cache_cap: args.parse_or("cache-cap", defaults.cache_cap)?,
        trace: trace_path(args)?.map(std::path::PathBuf::from),
        metrics_addr: args.options.get("metrics-addr").cloned(),
        shard: args.get_or("shard", &defaults.shard).to_string(),
        warm_alpha,
        warm_store: args.options.get("warm-store").map(std::path::PathBuf::from),
        warm_cap: args.parse_or("warm-cap", defaults.warm_cap)?,
        solver_threads,
        drain_deadline,
    };
    let trace_file = config.trace.clone();
    let handle = Server::start(config.clone())
        .map_err(|e| CliError::Io(format!("starting server on {}: {e}", config.addr)))?;
    let addr = handle.local_addr();
    // `:0` binds an ephemeral port; scripts discover it via --addr-file.
    if let Some(path) = args.options.get("addr-file") {
        write(path, &format!("{addr}\n"))?;
    }
    if let Some(path) = args.options.get("metrics-addr-file") {
        match handle.metrics_addr() {
            Some(maddr) => write(path, &format!("{maddr}\n"))?,
            None => {
                return Err(CliError::MissingOption(
                    "metrics-addr (required by --metrics-addr-file)".into(),
                ))
            }
        }
    }
    // Announce readiness on stdout immediately: `run` only prints its
    // return value, and the daemon blocks here until a client sends
    // `shutdown`.
    let metrics_note = match handle.metrics_addr() {
        Some(maddr) => format!(", metrics on http://{maddr}/metrics"),
        None => String::new(),
    };
    let warm_note = if config.warm_alpha > 0.0 {
        format!(", warm starts at alpha {}", config.warm_alpha)
    } else {
        String::new()
    };
    println!(
        "match-serve listening on {addr} (shard {}, {} workers, {} io threads, queue cap {}, \
         cache cap {}{warm_note}{metrics_note})",
        config.shard, config.workers, config.io_threads, config.queue_cap, config.cache_cap
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let summary = handle
        .wait()
        .map_err(|e| CliError::Io(format!("shutting down: {e}")))?;
    let s = &summary.stats;
    let mut text = format!(
        "match-serve stopped after {:.1}s: {} jobs ({} cache hits, {} misses, {} warm hits), \
         {} rejected, {} cancelled\n",
        summary.wall.as_secs_f64(),
        s.jobs,
        s.cache_hits,
        s.cache_misses,
        summary.warm_hits,
        s.rejected,
        s.cancelled,
    );
    if let (Some(lines), Some(path)) = (summary.trace_lines, trace_file) {
        text.push_str(&format!("trace: {lines} events -> {}\n", path.display()));
    }
    Ok(text)
}

fn cmd_router(args: &Args) -> Result<String, CliError> {
    let defaults = match_serve::RouterConfig::default();
    let backends: Vec<String> = args
        .required("backends")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err(CliError::MissingOption("backends".into()));
    }
    let config = match_serve::RouterConfig {
        addr: args.get_or("addr", &defaults.addr).to_string(),
        backends,
        health_interval: std::time::Duration::from_millis(
            args.parse_or("health-interval-ms", 500)?,
        ),
    };
    let n_backends = config.backends.len();
    let handle = match_serve::Router::start(config.clone())
        .map_err(|e| CliError::Io(format!("starting router on {}: {e}", config.addr)))?;
    let addr = handle.local_addr();
    if let Some(path) = args.options.get("addr-file") {
        write(path, &format!("{addr}\n"))?;
    }
    let up = handle.healthy().iter().filter(|&&h| h).count();
    println!(
        "matchctl router listening on {addr} ({up}/{n_backends} backends healthy: {})",
        config.backends.join(", ")
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let summary = handle
        .wait()
        .map_err(|e| CliError::Io(format!("shutting down router: {e}")))?;
    Ok(format!(
        "router stopped after {:.1}s: {} solves routed, {} errors\n",
        summary.wall.as_secs_f64(),
        summary.routed,
        summary.errors,
    ))
}

/// Render one daemon response as user-facing text.
fn format_response(resp: &Response) -> String {
    match resp {
        Response::Solved(r) => {
            let mut flags = String::new();
            if r.cached {
                flags.push_str(" [cached]");
            }
            if r.cancelled {
                flags.push_str(" [cancelled]");
            }
            if r.warm {
                flags.push_str(&format!(" [warm, saved {} iters]", r.iterations_saved));
            }
            if r.migrated_tasks > 0 {
                flags.push_str(&format!(" [migrated {}]", r.migrated_tasks));
            }
            let mapping = r
                .mapping
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            format!(
                "{}: {} ET = {:.2} units (seed {}, backend {}, {} evaluations, wait {:.1}ms, \
                 solve {:.1}ms){flags}\n  mapping: {mapping}\n",
                r.id,
                r.algo,
                r.cost,
                r.seed,
                r.backend,
                r.evaluations,
                r.queue_wait_ns as f64 / 1e6,
                r.solve_ns as f64 / 1e6,
            )
        }
        Response::Rejected {
            id,
            queue_depth,
            queue_cap,
        } => format!("{id}: rejected — queue full ({queue_depth}/{queue_cap})\n"),
        Response::Error { id, error } if id.is_empty() => format!("error: {error}\n"),
        Response::Error { id, error } => format!("{id}: error — {error}\n"),
        Response::Stats(s) => format!(
            "jobs: {} (cache {} hits / {} misses)   rejected: {}   cancelled: {}\n\
             queue: {}/{}   workers: {}\n",
            s.jobs,
            s.cache_hits,
            s.cache_misses,
            s.rejected,
            s.cancelled,
            s.queue_depth,
            s.queue_cap,
            s.workers,
        ),
        Response::Metrics { text } => text.clone(),
        Response::Bye => "server acknowledged shutdown\n".to_string(),
    }
}

/// Build the solve requests for `matchctl submit`: either one from
/// `--tig/--platform`, or one per line of `--batch FILE`.
fn submit_requests(args: &Args) -> Result<Vec<SolveRequest>, CliError> {
    let default_algo = args
        .options
        .get("solver")
        .map(String::as_str)
        .unwrap_or_else(|| args.get_or("algo", "match"));
    let default_seed: u64 = args.parse_or("seed", 1)?;
    let deadline_ms: Option<u64> = match args.options.get("deadline-ms") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| CliError::BadValue("deadline-ms".into(), v.clone()))?,
        ),
    };
    // Validate client-side so a typo fails before anything is sent; the
    // daemon re-validates at admission.
    let backend: Option<String> = match args.options.get("backend") {
        None => None,
        Some(name) => {
            EvalBackend::parse(name)
                .ok_or_else(|| CliError::BadValue("backend".into(), name.clone()))?;
            Some(name.clone())
        }
    };
    if let Some(batch) = args.options.get("batch") {
        let mut reqs = Vec::new();
        for (lineno, line) in read(batch)?.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 2 {
                return Err(CliError::Io(format!(
                    "{batch}:{}: expected `TIG PLATFORM [ALGO [SEED [DEADLINE_MS]]]`",
                    lineno + 1
                )));
            }
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| CliError::Io(format!("{batch}:{}: bad number {v:?}", lineno + 1)))
            };
            reqs.push(SolveRequest {
                id: format!("job-{}", reqs.len()),
                algo: fields.get(2).unwrap_or(&default_algo).to_string(),
                seed: match fields.get(3) {
                    Some(v) => parse_u64(v)?,
                    None => default_seed,
                },
                deadline_ms: match fields.get(4) {
                    Some(v) => Some(parse_u64(v)?),
                    None => deadline_ms,
                },
                backend: backend.clone(),
                tig: read(fields[0])?,
                platform: read(fields[1])?,
            });
        }
        if reqs.is_empty() {
            return Err(CliError::Io(format!("{batch}: no requests in batch file")));
        }
        Ok(reqs)
    } else {
        Ok(vec![SolveRequest {
            id: args.get_or("id", "job-0").to_string(),
            algo: default_algo.to_string(),
            seed: default_seed,
            deadline_ms,
            backend,
            tig: read(args.required("tig")?)?,
            platform: read(args.required("platform")?)?,
        }])
    }
}

/// The id a daemon response carries, for submission-order sorting.
fn response_id(resp: &Response) -> &str {
    match resp {
        Response::Solved(s) => s.id.as_str(),
        Response::Rejected { id, .. } | Response::Error { id, .. } => id.as_str(),
        _ => "",
    }
}

/// One JSONL record per response for `submit --trace-out`.
fn response_trace_line(resp: &Response) -> String {
    match resp {
        Response::Solved(r) => format!(
            "{{\"id\":\"{}\",\"algo\":\"{}\",\"seed\":{},\"cost\":{},\"cached\":{},\
             \"warm\":{},\"iterations\":{},\"iterations_saved\":{},\"evaluations\":{},\
             \"queue_wait_ns\":{},\"solve_ns\":{}}}",
            r.id,
            r.algo,
            r.seed,
            r.cost,
            r.cached,
            r.warm,
            r.iterations,
            r.iterations_saved,
            r.evaluations,
            r.queue_wait_ns,
            r.solve_ns,
        ),
        Response::Rejected { id, .. } => format!("{{\"id\":\"{id}\",\"rejected\":true}}"),
        Response::Error { id, error } => format!(
            "{{\"id\":\"{id}\",\"error\":\"{}\"}}",
            error.replace('\\', "\\\\").replace('"', "\\\"")
        ),
        _ => "{}".to_string(),
    }
}

/// Pipeline `reqs` over `concurrency` connections (round-robin), each
/// sending its share up front and then draining the replies.
fn submit_concurrent(
    addr: &str,
    reqs: &[SolveRequest],
    concurrency: usize,
) -> Result<Vec<Response>, CliError> {
    let lanes = concurrency.min(reqs.len()).max(1);
    let chunks: Vec<Vec<SolveRequest>> = (0..lanes)
        .map(|lane| {
            reqs.iter()
                .skip(lane)
                .step_by(lanes)
                .cloned()
                .collect::<Vec<_>>()
        })
        .collect();
    let workers: Vec<_> = chunks
        .into_iter()
        .map(|chunk| {
            let addr = addr.to_string();
            std::thread::spawn(move || -> std::io::Result<Vec<Response>> {
                let mut client = Client::connect(&addr)?;
                for req in &chunk {
                    client.send(&Request::Solve(req.clone()))?;
                }
                (0..chunk.len()).map(|_| client.recv()).collect()
            })
        })
        .collect();
    let mut resps = Vec::with_capacity(reqs.len());
    for worker in workers {
        let lane = worker
            .join()
            .map_err(|_| CliError::Io("submit worker panicked".into()))?
            .map_err(|e| CliError::Io(format!("talking to {addr}: {e}")))?;
        resps.extend(lane);
    }
    Ok(resps)
}

fn cmd_submit(args: &Args) -> Result<String, CliError> {
    let addr = args.get_or("addr", "127.0.0.1:7117");
    let mut client =
        Client::connect(addr).map_err(|e| CliError::Io(format!("connecting to {addr}: {e}")))?;
    let net = |e: std::io::Error| CliError::Io(format!("talking to {addr}: {e}"));
    let mut out = String::new();
    let solving = args.options.contains_key("tig") || args.options.contains_key("batch");
    if let Some(prior_path) = args.options.get("remap-prior") {
        // One incremental re-map: wrap the single solve request with the
        // prior mapping and the migration weight μ.
        let mut base = submit_requests(args)?;
        if base.len() != 1 {
            return Err(CliError::BadValue(
                "remap-prior".into(),
                "re-mapping takes a single --tig/--platform request".into(),
            ));
        }
        let prior = mapping_from_text(&read(prior_path)?).map_err(CliError::Io)?;
        let mu: u64 = args.parse_or("mu", 0)?;
        let resp = client
            .call(&Request::Remap(RemapRequest {
                solve: base.pop().expect("one request"),
                prior: prior.as_slice().to_vec(),
                mu,
            }))
            .map_err(net)?;
        out.push_str(&format_response(&resp));
    } else if solving {
        let count: u64 = args.parse_or("count", 1)?;
        let concurrency: usize = args.parse_or("concurrency", 1)?;
        if count == 0 {
            return Err(CliError::BadValue("count".into(), "0".into()));
        }
        if concurrency == 0 {
            return Err(CliError::BadValue("concurrency".into(), "0".into()));
        }
        let base = submit_requests(args)?;
        // --count N cycles the base request(s) with distinct seeds and
        // suffixed ids, so every job is real solver work.
        let reqs: Vec<SolveRequest> = if count > 1 {
            (0..count)
                .map(|i| {
                    let template = &base[(i % base.len() as u64) as usize];
                    let mut req = template.clone();
                    req.id = format!("{}-{i}", template.id);
                    req.seed = template.seed.wrapping_add(i);
                    req
                })
                .collect()
        } else {
            base
        };
        let started = std::time::Instant::now();
        let mut resps = if concurrency > 1 {
            submit_concurrent(addr, &reqs, concurrency)?
        } else {
            // Pipeline on the single connection: send everything, then
            // drain the same number of responses.
            for req in &reqs {
                client.send(&Request::Solve(req.clone())).map_err(net)?;
            }
            (0..reqs.len())
                .map(|_| client.recv().map_err(net))
                .collect::<Result<Vec<_>, _>>()?
        };
        let wall = started.elapsed();
        // The daemon replies out of completion order, so re-sort by
        // submission order for stable output.
        let order: std::collections::HashMap<&str, usize> = reqs
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id.as_str(), i))
            .collect();
        resps.sort_by_key(|r| order.get(response_id(r)).copied().unwrap_or(usize::MAX));
        if let Some(path) = args.options.get("trace-out") {
            let lines: String = resps
                .iter()
                .map(|r| response_trace_line(r) + "\n")
                .collect();
            write(path, &lines)?;
        }
        // Per-response lines stay readable for small batches; large
        // batches report in aggregate only.
        if resps.len() <= 16 {
            for resp in &resps {
                out.push_str(&format_response(resp));
            }
        }
        if count > 1 || concurrency > 1 {
            let mut solved = 0u64;
            let mut rejected = 0u64;
            let mut errors = 0u64;
            let mut warm = 0u64;
            let mut cached = 0u64;
            let mut solve_ns: Vec<u64> = Vec::new();
            for resp in &resps {
                match resp {
                    Response::Solved(r) => {
                        solved += 1;
                        if r.warm {
                            warm += 1;
                        }
                        if r.cached {
                            cached += 1;
                        }
                        solve_ns.push(r.solve_ns);
                    }
                    Response::Rejected { .. } => rejected += 1,
                    _ => errors += 1,
                }
            }
            solve_ns.sort_unstable();
            let pct = |p: f64| -> f64 {
                if solve_ns.is_empty() {
                    return 0.0;
                }
                let idx = ((solve_ns.len() - 1) as f64 * p).round() as usize;
                solve_ns[idx] as f64 / 1e6
            };
            out.push_str(&format!(
                "{} requests over {} connection(s) in {:.2}s ({:.1} req/s): \
                 {solved} solved ({cached} cached, {warm} warm), {rejected} rejected, \
                 {errors} errors\nsolve latency: p50 {:.2}ms  p99 {:.2}ms\n",
                resps.len(),
                concurrency,
                wall.as_secs_f64(),
                resps.len() as f64 / wall.as_secs_f64().max(1e-9),
                pct(0.5),
                pct(0.99),
            ));
        }
    }
    if args.has_switch("stats") {
        out.push_str(&format_response(&client.stats().map_err(net)?));
    }
    if args.has_switch("shutdown") {
        out.push_str(&format_response(&client.shutdown().map_err(net)?));
    }
    if out.is_empty() {
        return Err(CliError::MissingOption(
            "tig/--batch (or --stats / --shutdown)".into(),
        ));
    }
    Ok(out)
}

/// One Prometheus snapshot: over the JSONL protocol (`--addr`, the
/// default), or scraped from the HTTP side port (`--http HOST:PORT`)
/// exactly as an external collector would.
fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    if let Some(http_addr) = args.options.get("http") {
        return match_serve::http_get(http_addr, "/metrics")
            .map_err(|e| CliError::Io(format!("scraping http://{http_addr}/metrics: {e}")));
    }
    let addr = args.get_or("addr", "127.0.0.1:7117");
    let mut client =
        Client::connect(addr).map_err(|e| CliError::Io(format!("connecting to {addr}: {e}")))?;
    match client
        .metrics()
        .map_err(|e| CliError::Io(format!("talking to {addr}: {e}")))?
    {
        Response::Metrics { text } => Ok(text),
        other => Err(CliError::Io(format!(
            "unexpected reply to metrics request: {}",
            format_response(&other).trim_end()
        ))),
    }
}

/// Parse Prometheus text exposition into `series -> value`, keyed by
/// `name{labels}` exactly as rendered (comments and blanks skipped).
fn parse_exposition(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut series = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Label values never contain spaces (our renderer escapes
        // nothing that introduces one), so the value is the last field.
        if let Some((key, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                series.insert(key.to_string(), v);
            }
        }
    }
    series
}

/// Split `name{...,quantile="Q"}` into the series without the quantile
/// label and `Q`; `None` for non-quantile series. The renderer always
/// appends `quantile` after the user labels, so it is the last label.
fn split_quantile(series: &str) -> Option<(String, String)> {
    let i = series.find("quantile=\"")?;
    let q = series[i + 10..].split('"').next()?.to_string();
    let mut base = series[..i].to_string();
    if base.ends_with(',') {
        base.pop();
        base.push('}');
    } else if base.ends_with('{') {
        base.pop();
    }
    Some((base, q))
}

/// Render one `top` frame: gauges, latency summaries, counters (with
/// per-frame deltas once a previous frame exists).
fn render_top_frame(
    addr: &str,
    frame: u64,
    interval_ms: u64,
    cur: &std::collections::BTreeMap<String, f64>,
    prev: Option<&std::collections::BTreeMap<String, f64>>,
) -> String {
    let mut gauges: Vec<(&str, f64)> = Vec::new();
    let mut counters: Vec<(&str, f64)> = Vec::new();
    // base series -> [(quantile, value)]
    let mut latency: std::collections::BTreeMap<String, Vec<(String, f64)>> = Default::default();
    for (key, &v) in cur {
        if let Some((base, q)) = split_quantile(key) {
            latency.entry(base).or_default().push((q, v));
        } else if key.contains("_total") {
            counters.push((key, v));
        } else if !key.contains("_sum") && !key.contains("_count") {
            gauges.push((key, v));
        }
    }
    let mut out = format!("match-serve top — {addr} (frame {frame}, every {interval_ms}ms)\n");
    if !gauges.is_empty() {
        out.push_str("  gauges:\n");
        for (key, v) in gauges {
            out.push_str(&format!("    {key:<44} {v:>12}\n"));
        }
    }
    if !latency.is_empty() {
        out.push_str("  latency (ms):\n");
        for (base, qs) in &latency {
            // `name{labels}` -> `name_count{labels}` for the sample count.
            let count_key = match base.find('{') {
                Some(i) => format!("{}_count{}", &base[..i], &base[i..]),
                None => format!("{base}_count"),
            };
            let n = cur.get(&count_key).copied().unwrap_or(0.0);
            let fmt = |q: &str| {
                qs.iter()
                    .find(|(quant, _)| quant == q)
                    .map(|(_, v)| format!("{:.3}", v / 1e6))
                    .unwrap_or_else(|| "-".into())
            };
            out.push_str(&format!(
                "    {base:<44} p50 {} / p90 {} / p99 {}  (n={n})\n",
                fmt("0.5"),
                fmt("0.9"),
                fmt("0.99"),
            ));
        }
    }
    if !counters.is_empty() {
        out.push_str("  counters (total, Δ/frame):\n");
        for (key, v) in counters {
            match prev.and_then(|p| p.get(key)) {
                Some(old) => out.push_str(&format!("    {key:<44} {v:>12} {:>+8}\n", v - old)),
                None => out.push_str(&format!("    {key:<44} {v:>12}\n")),
            }
        }
    }
    out
}

/// Poll a daemon's metrics snapshot and render frames until `--count`
/// frames are shown (0 = until interrupted or the daemon goes away).
/// All frames but the last print directly (preceded by a clear-screen
/// escape unless `--no-clear`); the last is returned like any command.
fn cmd_top(args: &Args) -> Result<String, CliError> {
    let addr = args.get_or("addr", "127.0.0.1:7117");
    let interval_ms: u64 = args.parse_or("interval-ms", 1000)?;
    let count: u64 = args.parse_or("count", 0)?;
    let clear = !args.has_switch("no-clear");
    let mut client =
        Client::connect(addr).map_err(|e| CliError::Io(format!("connecting to {addr}: {e}")))?;
    let net = |e: std::io::Error| CliError::Io(format!("talking to {addr}: {e}"));
    let mut prev: Option<std::collections::BTreeMap<String, f64>> = None;
    let mut frame = 0u64;
    loop {
        frame += 1;
        let text = match client.metrics().map_err(net)? {
            Response::Metrics { text } => text,
            other => {
                return Err(CliError::Io(format!(
                    "unexpected reply to metrics request: {}",
                    format_response(&other).trim_end()
                )))
            }
        };
        let cur = parse_exposition(&text);
        let rendered = render_top_frame(addr, frame, interval_ms, &cur, prev.as_ref());
        if count != 0 && frame >= count {
            return Ok(rendered);
        }
        if clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{rendered}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        prev = Some(cur);
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn cmd_verify(args: &Args) -> Result<String, CliError> {
    let corpus_name = args.get_or("corpus", "ci");
    let corpus = match_verify::CorpusKind::from_name(corpus_name)
        .ok_or_else(|| CliError::BadValue("corpus".to_string(), corpus_name.to_string()))?;
    let opts = match_verify::VerifyOptions {
        corpus,
        fixtures_dir: args.options.get("fixtures").map(std::path::PathBuf::from),
        update_golden: args.has_switch("update-golden"),
        master_seed: args.parse_or("seed", match_verify::DEFAULT_MASTER_SEED)?,
    };
    let report = match_verify::run_verify(&opts);
    let text = report.render();
    if report.passed() {
        Ok(text)
    } else {
        // The report *is* the error message; the binary exits nonzero.
        Err(CliError::Io(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "matchctl-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_tokens(tokens: &[&str]) -> Result<String, CliError> {
        run(&Args::parse(tokens.iter().copied()).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let s = run_tokens(&["help"]).unwrap();
        assert!(s.contains("matchctl"));
        assert!(s.contains("solve"));
    }

    #[test]
    fn unknown_command_rejected() {
        let a = Args::parse(["frobnicate"]).unwrap();
        assert!(matches!(run(&a), Err(CliError::UnknownCommand(_))));
    }

    #[test]
    fn full_pipeline_gen_info_solve_simulate() {
        let dir = tmpdir();
        let tig = dir.join("tig.txt");
        let platform = dir.join("platform.txt");
        let mapping = dir.join("mapping.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = platform.to_str().unwrap();
        let map_s = mapping.to_str().unwrap();

        let s = run_tokens(&[
            "gen",
            "--size",
            "8",
            "--seed",
            "3",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        assert!(s.contains("generated"));

        let s = run_tokens(&["info", "--tig", tig_s, "--platform", plat_s]).unwrap();
        assert!(s.contains("tasks: 8"));
        assert!(s.contains("lower bound"));

        let s = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "greedy",
            "--out",
            map_s,
        ])
        .unwrap();
        assert!(s.contains("Greedy: ET ="));
        assert!(s.contains("mapping written"));

        let s = run_tokens(&[
            "simulate",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--mapping",
            map_s,
            "--rounds",
            "3",
        ])
        .unwrap();
        assert!(s.contains("makespan"));
        assert!(s.contains("resource 7"));

        let s = run_tokens(&["dot", "--tig", tig_s]).unwrap();
        assert!(s.starts_with("graph tig {"));

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_with_matcher_on_generated_instance() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        let s = run_tokens(&[
            "solve",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
            "--algo",
            "match",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(s.contains("MaTCH: ET ="));
        assert!(s.contains("optimality gap"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn multilevel_solve_on_large_family_instance() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        let s = run_tokens(&[
            "gen",
            "--size",
            "96",
            "--family",
            "large",
            "--seed",
            "2",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        assert!(s.contains("generated large instance"), "{s}");
        let s = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "multilevel",
            "--seed",
            "5",
            "--coarsen-target",
            "24",
            "--refine-passes",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(s.contains("multilevel: ET ="), "{s}");
        assert!(s.contains("optimality gap"), "{s}");
        let bad = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "multilevel",
            "--coarsen-target",
            "1",
        ]);
        assert!(matches!(bad, Err(CliError::BadValue(_, _))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_sampler_and_threads_flags() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        for sampler in ["auto", "sequential", "batched"] {
            let s = run_tokens(&[
                "solve",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--seed",
                "5",
                "--threads",
                "2",
                "--sampler",
                sampler,
            ])
            .unwrap();
            assert!(s.contains("MaTCH: ET ="), "sampler {sampler}");
        }
        let bad = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--sampler",
            "psychic",
        ]);
        assert!(bad.is_err(), "unknown sampler must be refused");
        let zero = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--threads",
            "0",
        ]);
        assert!(zero.is_err(), "zero threads must be refused");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_backend_flag_is_bit_neutral() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "12",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        // Same batched run under all three backends: the kernels are
        // bit-identical, so everything but the wall clock (the `MT`
        // field) must not change at all.
        let solve = |algo: &str, backend: &str| {
            let s = run_tokens(&[
                "solve",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--seed",
                "5",
                "--threads",
                "2",
                "--sampler",
                "batched",
                "--algo",
                algo,
                "--backend",
                backend,
            ])
            .unwrap();
            let first = s.lines().next().unwrap();
            let (head, tail) = first.split_once(", MT = ").unwrap();
            let timeless = tail.split_once(", ").unwrap().1;
            format!("{head}, {timeless}")
        };
        for algo in ["match", "ga", "multilevel"] {
            let auto = solve(algo, "auto");
            assert_eq!(auto, solve(algo, "scalar"), "{algo}");
            assert_eq!(auto, solve(algo, "simd"), "{algo}");
        }
        let bad = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--backend",
            "avx512",
        ]);
        assert!(bad.is_err(), "unknown backend must be refused");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ga_sampler_flags_and_diff_report() {
        use match_telemetry::Event;
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let seq_trace = dir.join("seq.jsonl");
        let bat_trace = dir.join("bat.jsonl");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        let seq_s = seq_trace.to_str().unwrap();
        let bat_s = bat_trace.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        // The GA accepts the same --threads/--sampler pair as `match`.
        for (sampler, threads, trace) in [("sequential", "1", seq_s), ("batched", "2", bat_s)] {
            let s = run_tokens(&[
                "solve",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--algo",
                "ga",
                "--seed",
                "3",
                "--sampler",
                sampler,
                "--threads",
                threads,
                "--trace",
                trace,
            ])
            .unwrap();
            assert!(s.contains("FastMap-GA: ET ="), "sampler {sampler}: {s}");
        }
        // The batched trace carries the delta-mutation counters.
        let events = read_trace_file(&bat_trace).unwrap();
        let has_counter = |name: &str| {
            events
                .iter()
                .any(|e| matches!(e, Event::Counter { name: n, .. } if n == name))
        };
        assert!(has_counter("full_evaluations"));
        assert!(has_counter("delta_swaps"));

        let diff = run_tokens(&["report", "--diff", seq_s, bat_s]).unwrap();
        assert!(diff.contains("A = "), "{diff}");
        assert!(diff.contains("final best"), "{diff}");
        assert!(diff.contains("convergence B"), "{diff}");
        assert!(diff.contains("phase budgets"), "{diff}");
        // --diff without a second trace is refused, as is a bare switch.
        assert!(run_tokens(&["report", "--diff", seq_s]).is_err());
        assert!(run_tokens(&["report", seq_s, "--diff"]).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solve_trace_and_report_roundtrip_all_solvers() {
        use match_telemetry::Event;
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        for solver in ["match", "fastmap-ga", "sa", "hillclimb", "islands"] {
            let trace = dir.join(format!("{solver}.jsonl"));
            let trace_s = trace.to_str().unwrap();
            let s = run_tokens(&[
                "solve",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--solver",
                solver,
                "--seed",
                "3",
                "--trace",
                trace_s,
            ])
            .unwrap();
            assert!(s.contains("trace:"), "{solver}: {s}");
            // Every line parses and at least one per-iteration record
            // exists between run_start and run_end.
            let events = read_trace_file(&trace).unwrap();
            assert!(
                matches!(events.first(), Some(Event::RunStart { .. })),
                "{solver} trace must open with run_start"
            );
            assert!(
                matches!(events.last(), Some(Event::RunEnd { .. })),
                "{solver} trace must close with run_end"
            );
            assert!(
                events.iter().any(|e| matches!(e, Event::Iter(_))),
                "{solver} trace has no iter events"
            );
            let report = run_tokens(&["report", trace_s]).unwrap();
            assert!(report.contains("iterations"), "{solver}: {report}");
            assert!(report.contains("best cost"), "{solver}: {report}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn traced_solve_matches_untraced_solve() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let trace = dir.join("out.jsonl");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        let plain = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "sa",
            "--seed",
            "9",
        ])
        .unwrap();
        let traced = run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "sa",
            "--seed",
            "9",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        // Identical ET (the wall-clock MT field legitimately differs):
        // tracing must not perturb the RNG stream.
        let et = |s: &str| s.split(" units").next().unwrap().to_string();
        assert_eq!(et(&plain), et(&traced));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_trace_and_report() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let map = dir.join("m.txt");
        let trace = dir.join("sim.jsonl");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "8",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--algo",
            "greedy",
            "--out",
            map.to_str().unwrap(),
        ])
        .unwrap();
        let s = run_tokens(&[
            "simulate",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--mapping",
            map.to_str().unwrap(),
            "--rounds",
            "40",
            "--blocking",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("peak queue"));
        assert!(s.contains("trace:"));
        let report = run_tokens(&["report", trace.to_str().unwrap()]).unwrap();
        assert!(report.contains("sim_items"));
        let with_gantt = run_tokens(&["report", trace.to_str().unwrap(), "--gantt"]).unwrap();
        assert!(with_gantt.contains("schedule timeline"), "{with_gantt}");
        assert!(with_gantt.contains('█'), "{with_gantt}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn report_rejects_garbage() {
        let dir = tmpdir();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let r = run_tokens(&["report", bad.to_str().unwrap()]);
        assert!(matches!(r, Err(CliError::Io(_))));
        let r = run_tokens(&["report"]);
        assert!(matches!(r, Err(CliError::MissingOption(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bad_algo_reported() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        run_tokens(&[
            "gen",
            "--size",
            "4",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        let r = run_tokens(&[
            "solve",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
            "--algo",
            "quantum",
        ]);
        assert!(matches!(r, Err(CliError::BadValue(_, _))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_files_reported() {
        let r = run_tokens(&[
            "info",
            "--tig",
            "/nonexistent/a",
            "--platform",
            "/nonexistent/b",
        ]);
        assert!(matches!(r, Err(CliError::Io(_))));
    }

    #[test]
    fn serve_submit_roundtrip() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let addr_file = dir.join("addr.txt");
        let trace = dir.join("serve.jsonl");
        let tig_s = tig.to_str().unwrap().to_string();
        let plat_s = plat.to_str().unwrap().to_string();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            &tig_s,
            "--out-platform",
            &plat_s,
        ])
        .unwrap();

        let addr_file_s = addr_file.to_str().unwrap().to_string();
        let trace_s = trace.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run_tokens(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--addr-file",
                &addr_file_s,
                "--trace",
                &trace_s,
            ])
        });
        // The daemon writes its ephemeral address before accepting.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(std::time::Instant::now() < deadline, "daemon never came up");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let s = run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--algo",
            "greedy",
            "--seed",
            "4",
            "--id",
            "first",
        ])
        .unwrap();
        assert!(s.contains("first: Greedy ET ="), "{s}");
        assert!(s.contains("mapping:"), "{s}");
        assert!(!s.contains("[cached]"), "{s}");

        // Identical resubmission is served from the result cache.
        let s = run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--algo",
            "greedy",
            "--seed",
            "4",
            "--id",
            "again",
            "--stats",
        ])
        .unwrap();
        assert!(s.contains("again: Greedy ET ="), "{s}");
        assert!(s.contains("[cached]"), "{s}");
        assert!(s.contains("cache 1 hits"), "{s}");

        // Batch file: two solvers over the same instance, then shutdown.
        let batch = dir.join("batch.txt");
        std::fs::write(
            &batch,
            format!("# two cells\n{tig_s} {plat_s} sa 7\n{tig_s} {plat_s} hill 7\n"),
        )
        .unwrap();
        let s = run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--batch",
            batch.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("job-0: SimAnneal ET ="), "{s}");
        assert!(s.contains("job-1: HillClimb ET ="), "{s}");

        let s = run_tokens(&["submit", "--addr", &addr, "--shutdown"]).unwrap();
        assert!(s.contains("acknowledged shutdown"), "{s}");

        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("match-serve stopped"), "{summary}");
        assert!(summary.contains("4 jobs"), "{summary}");
        assert!(summary.contains("1 cache hits"), "{summary}");
        assert!(summary.contains("trace:"), "{summary}");

        // The service trace summarises like any solver trace.
        let report = run_tokens(&["report", trace.to_str().unwrap()]).unwrap();
        assert!(report.contains("match-serve"), "{report}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exposition_parser_handles_labels_and_quantiles() {
        let text = "# HELP match_serve_jobs_total jobs\n\
                    # TYPE match_serve_jobs_total counter\n\
                    match_serve_jobs_total 3\n\
                    match_serve_queue_depth 0\n\
                    match_serve_solve_latency_ns{algo=\"hill\",quantile=\"0.5\"} 1000000\n\
                    match_serve_solve_latency_ns{algo=\"hill\",quantile=\"0.99\"} 2000000\n\
                    match_serve_solve_latency_ns_sum{algo=\"hill\"} 3000000\n\
                    match_serve_solve_latency_ns_count{algo=\"hill\"} 3\n";
        let series = parse_exposition(text);
        assert_eq!(series["match_serve_jobs_total"], 3.0);
        assert_eq!(series["match_serve_queue_depth"], 0.0);
        assert_eq!(
            split_quantile("match_serve_solve_latency_ns{algo=\"hill\",quantile=\"0.5\"}"),
            Some((
                "match_serve_solve_latency_ns{algo=\"hill\"}".to_string(),
                "0.5".to_string()
            ))
        );
        assert_eq!(
            split_quantile("queue_wait_ns{quantile=\"0.99\"}"),
            Some(("queue_wait_ns".to_string(), "0.99".to_string()))
        );
        assert_eq!(split_quantile("match_serve_jobs_total"), None);

        let frame = render_top_frame("x:1", 1, 500, &series, None);
        assert!(frame.contains("gauges:"), "{frame}");
        assert!(frame.contains("match_serve_queue_depth"), "{frame}");
        assert!(frame.contains("latency (ms):"), "{frame}");
        assert!(
            frame.contains("p50 1.000 / p90 - / p99 2.000  (n=3)"),
            "{frame}"
        );
        assert!(frame.contains("counters"), "{frame}");
        // Second frame against the first carries counter deltas.
        let mut later = series.clone();
        *later.get_mut("match_serve_jobs_total").unwrap() = 5.0;
        let frame = render_top_frame("x:1", 2, 500, &later, Some(&series));
        assert!(frame.contains("+2"), "{frame}");
    }

    #[test]
    fn metrics_top_and_request_report_against_live_daemon() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let addr_file = dir.join("addr.txt");
        let maddr_file = dir.join("maddr.txt");
        let trace = dir.join("serve.jsonl");
        let tig_s = tig.to_str().unwrap().to_string();
        let plat_s = plat.to_str().unwrap().to_string();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            &tig_s,
            "--out-platform",
            &plat_s,
        ])
        .unwrap();

        let addr_file_s = addr_file.to_str().unwrap().to_string();
        let maddr_file_s = maddr_file.to_str().unwrap().to_string();
        let trace_s = trace.to_str().unwrap().to_string();
        let trace_for_server = trace_s.clone();
        let server = std::thread::spawn(move || {
            run_tokens(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--addr-file",
                &addr_file_s,
                "--metrics-addr",
                "127.0.0.1:0",
                "--metrics-addr-file",
                &maddr_file_s,
                "--trace",
                &trace_for_server,
            ])
        });
        let wait_for = |path: &std::path::Path| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(s) = std::fs::read_to_string(path) {
                    let s = s.trim().to_string();
                    if !s.is_empty() {
                        break s;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "daemon never came up");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let addr = wait_for(&addr_file);
        let maddr = wait_for(&maddr_file);

        run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--algo",
            "greedy",
            "--id",
            "alpha",
        ])
        .unwrap();

        // JSONL-protocol snapshot and HTTP scrape agree on the job count.
        let text = run_tokens(&["metrics", "--addr", &addr]).unwrap();
        assert!(
            text.contains("# TYPE match_serve_jobs_total counter"),
            "{text}"
        );
        assert!(
            text.contains("match_serve_jobs_total{shard=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("match_serve_solve_latency_ns"), "{text}");
        let scraped = run_tokens(&["metrics", "--http", &maddr]).unwrap();
        assert!(
            scraped.contains("match_serve_jobs_total{shard=\"0\"} 1"),
            "{scraped}"
        );

        // One-frame top returns a dashboard with all three sections.
        let frame = run_tokens(&["top", "--addr", &addr, "--count", "1"]).unwrap();
        assert!(frame.contains("match-serve top"), "{frame}");
        assert!(frame.contains("match_serve_queue_depth"), "{frame}");
        assert!(frame.contains("match_serve_jobs_total"), "{frame}");
        // Two frames with a short interval exercise the delta path.
        let frame = run_tokens(&[
            "top",
            "--addr",
            &addr,
            "--count",
            "2",
            "--interval-ms",
            "10",
            "--no-clear",
        ])
        .unwrap();
        assert!(frame.contains("frame 2"), "{frame}");

        run_tokens(&["submit", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();

        // The service trace correlates per-request spans by trace id.
        let report = run_tokens(&["report", &trace_s, "--request", "alpha"]).unwrap();
        assert!(report.contains("alpha#"), "{report}");
        assert!(report.contains("queue_wait"), "{report}");
        assert!(report.contains("solve"), "{report}");
        // Unknown ids fail with a hint; a bare switch is refused.
        assert!(run_tokens(&["report", &trace_s, "--request", "nope"]).is_err());
        assert!(run_tokens(&["report", &trace_s, "--request"]).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn submit_batches_concurrently_and_writes_a_trace() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let addr_file = dir.join("addr.txt");
        let trace_out = dir.join("requests.jsonl");
        let tig_s = tig.to_str().unwrap().to_string();
        let plat_s = plat.to_str().unwrap().to_string();
        run_tokens(&[
            "gen",
            "--size",
            "6",
            "--out-tig",
            &tig_s,
            "--out-platform",
            &plat_s,
        ])
        .unwrap();

        let addr_file_s = addr_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run_tokens(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--addr-file",
                &addr_file_s,
            ])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(std::time::Instant::now() < deadline, "daemon never came up");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let out = run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--algo",
            "greedy",
            "--id",
            "burst",
            "--count",
            "4",
            "--concurrency",
            "2",
            "--trace-out",
            trace_out.to_str().unwrap(),
        ])
        .unwrap();
        // Small batch: per-response lines plus the aggregate summary.
        assert!(out.contains("burst-0"), "{out}");
        assert!(out.contains("burst-3"), "{out}");
        assert!(out.contains("4 requests over 2 connection(s)"), "{out}");
        assert!(out.contains("4 solved"), "{out}");
        assert!(out.contains("p50"), "{out}");
        // The replay trace has one JSONL record per request, in
        // submission order.
        let trace = std::fs::read_to_string(&trace_out).unwrap();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 4, "{trace}");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"id\":\"burst-{i}\"")), "{trace}");
            assert!(line.contains("\"solve_ns\":"), "{trace}");
        }
        // Distinct seeds per expanded request: nothing was cache-served.
        assert!(out.contains("0 cached"), "{out}");

        run_tokens(&["submit", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn submit_without_work_is_an_error() {
        let a = Args::parse(["submit", "--addr", "127.0.0.1:1"]).unwrap();
        // Connection refused (nothing listening) or missing-option —
        // either way it must not hang or panic.
        assert!(run(&a).is_err());
    }

    #[test]
    fn overset_family_generates() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let s = run_tokens(&[
            "gen",
            "--size",
            "7",
            "--family",
            "overset",
            "--out-tig",
            tig.to_str().unwrap(),
            "--out-platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("overset"));
        let s = run_tokens(&[
            "info",
            "--tig",
            tig.to_str().unwrap(),
            "--platform",
            plat.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("tasks: 7"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn verify_smoke_corpus_passes_and_renders_report() {
        let dir = tmpdir().join("verify-fixtures");
        let fix = dir.to_str().unwrap();
        // First pass writes the golden fixtures into a scratch dir…
        let s = run_tokens(&[
            "verify",
            "--corpus",
            "smoke",
            "--fixtures",
            fix,
            "--update-golden",
        ])
        .unwrap();
        assert!(s.contains("fixtures rewritten"), "{s}");
        // …then the same corpus verifies clean against them.
        let s = run_tokens(&["verify", "--corpus", "smoke", "--fixtures", fix]).unwrap();
        assert!(s.contains("all checks passed"), "{s}");
        assert!(s.contains("differential"), "{s}");
        assert!(s.contains("metamorphic"), "{s}");
        assert!(s.contains("golden-trajectory"), "{s}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn verify_rejects_an_unknown_corpus() {
        assert!(matches!(
            run_tokens(&["verify", "--corpus", "bogus"]),
            Err(CliError::BadValue(_, _))
        ));
    }

    #[test]
    fn verify_missing_fixtures_fail_with_regeneration_hint() {
        let dir = tmpdir().join("no-fixtures-here");
        let err = run_tokens(&[
            "verify",
            "--corpus",
            "smoke",
            "--fixtures",
            dir.to_str().unwrap(),
        ])
        .unwrap_err();
        let CliError::Io(report) = err else {
            panic!("expected the report as the error payload");
        };
        assert!(report.contains("FAILED"), "{report}");
        assert!(report.contains("--update-golden"), "{report}");
    }

    #[test]
    fn topology_families_gen_and_solve_roundtrip() {
        let dir = tmpdir();
        for family in ["grid", "torus", "fattree", "dragonfly"] {
            let tig = dir.join(format!("{family}-t.txt"));
            let plat = dir.join(format!("{family}-p.txt"));
            let caps = dir.join(format!("{family}-caps.txt"));
            let s = run_tokens(&[
                "gen",
                "--size",
                "9",
                "--family",
                family,
                "--seed",
                "11",
                "--out-tig",
                tig.to_str().unwrap(),
                "--out-platform",
                plat.to_str().unwrap(),
                "--out-caps",
                caps.to_str().unwrap(),
            ])
            .unwrap();
            assert!(s.contains(family), "{s}");
            assert!(s.contains("capacities"), "{s}");
            // The capacity sidecar parses back.
            let spec = CapacitySpec::from_text(&std::fs::read_to_string(&caps).unwrap()).unwrap();
            assert_eq!(spec.mem_capacity.len(), 9);
            // The default CE solve round-trips on the generated pair.
            let s = run_tokens(&[
                "solve",
                "--tig",
                tig.to_str().unwrap(),
                "--platform",
                plat.to_str().unwrap(),
                "--seed",
                "3",
            ])
            .unwrap();
            assert!(s.contains("ET ="), "{family}: {s}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn capacitated_solve_is_bit_neutral_at_gamma_zero() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let caps = dir.join("caps.txt");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        let caps_s = caps.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "8",
            "--family",
            "grid",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
            "--out-caps",
            caps_s,
        ])
        .unwrap();
        let et = |extra: &[&str]| {
            let mut argv = vec!["solve", "--tig", tig_s, "--platform", plat_s, "--seed", "5"];
            argv.extend_from_slice(extra);
            let s = run_tokens(&argv).unwrap();
            s.split(" units").next().unwrap().to_string()
        };
        // γ = 0 keeps the sampled objective bit-identical to the plain
        // Eq. 2 run; γ > 0 still produces a valid solve.
        assert_eq!(et(&[]), et(&["--caps", caps_s, "--cap-gamma", "0"]));
        assert!(run_tokens(&[
            "solve",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--caps",
            caps_s,
            "--cap-gamma",
            "2.5",
        ])
        .unwrap()
        .contains("ET ="));
        // Capacities only make sense for the CE solver…
        assert!(matches!(
            run_tokens(&[
                "solve",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--algo",
                "greedy",
                "--caps",
                caps_s,
            ]),
            Err(CliError::BadValue(_, _))
        ));
        // …and the sidecar only for topology families.
        assert!(matches!(
            run_tokens(&["gen", "--size", "6", "--out-caps", caps_s]),
            Err(CliError::BadValue(_, _))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn dynamic_simulate_reports_epochs_and_migrations() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let trace = dir.join("dyn.jsonl");
        let tig_s = tig.to_str().unwrap();
        let plat_s = plat.to_str().unwrap();
        run_tokens(&[
            "gen",
            "--size",
            "12",
            "--out-tig",
            tig_s,
            "--out-platform",
            plat_s,
        ])
        .unwrap();
        let s = run_tokens(&[
            "simulate",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--dynamic",
            "--epochs",
            "3",
            "--events",
            "2",
            "--mu",
            "0.5",
            "--seed",
            "7",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("dynamic workload: 12 tasks"), "{s}");
        assert!(s.contains("epoch 0:"), "{s}");
        assert!(s.contains("epoch 2:"), "{s}");
        assert!(s.contains("cold"), "{s}");
        assert!(s.contains("warm"), "{s}");
        assert!(s.contains("total migrations:"), "{s}");
        assert!(s.contains("trace:"), "{s}");
        assert!(std::fs::metadata(&trace).unwrap().len() > 0);
        // Identical seeds replay identically (wall-clock aside).
        let rerun = |_: ()| {
            run_tokens(&[
                "simulate",
                "--tig",
                tig_s,
                "--platform",
                plat_s,
                "--dynamic",
                "--epochs",
                "3",
                "--events",
                "2",
                "--mu",
                "0.5",
                "--seed",
                "7",
            ])
            .unwrap()
        };
        assert_eq!(rerun(()), rerun(()));
        // μ must be a finite non-negative number.
        assert!(run_tokens(&[
            "simulate",
            "--tig",
            tig_s,
            "--platform",
            plat_s,
            "--dynamic",
            "--mu",
            "-1",
        ])
        .is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn submit_remap_against_live_daemon() {
        let dir = tmpdir();
        let tig = dir.join("t.txt");
        let plat = dir.join("p.txt");
        let map = dir.join("m.txt");
        let addr_file = dir.join("addr.txt");
        let tig_s = tig.to_str().unwrap().to_string();
        let plat_s = plat.to_str().unwrap().to_string();
        run_tokens(&[
            "gen",
            "--size",
            "8",
            "--out-tig",
            &tig_s,
            "--out-platform",
            &plat_s,
        ])
        .unwrap();
        // A cold local CE solve provides the prior mapping file.
        run_tokens(&[
            "solve",
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--seed",
            "4",
            "--out",
            map.to_str().unwrap(),
        ])
        .unwrap();

        let addr_file_s = addr_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run_tokens(&[
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--addr-file",
                &addr_file_s,
            ])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(std::time::Instant::now() < deadline, "daemon never came up");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let s = run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--algo",
            "match",
            "--seed",
            "9",
            "--id",
            "re",
            "--remap-prior",
            map.to_str().unwrap(),
            "--mu",
            "1",
        ])
        .unwrap();
        assert!(s.contains("re: MaTCH ET ="), "{s}");
        assert!(s.contains("[warm"), "{s}");
        // Non-CE algorithms are refused daemon-side.
        let s = run_tokens(&[
            "submit",
            "--addr",
            &addr,
            "--tig",
            &tig_s,
            "--platform",
            &plat_s,
            "--algo",
            "hill",
            "--remap-prior",
            map.to_str().unwrap(),
        ])
        .unwrap();
        assert!(s.contains("CE-family"), "{s}");

        run_tokens(&["submit", "--addr", &addr, "--shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(dir).ok();
    }
}
