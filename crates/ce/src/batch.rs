//! Flat-buffer batched sampling: the contract behind the fused parallel
//! sample+evaluate pipeline.
//!
//! [`CeModel::sample`](crate::model::CeModel::sample) heap-allocates one
//! `Vec` per draw, and the driver's classic loop draws all `N` samples on
//! the driver thread before evaluation starts. At the paper's budget of
//! `N = 2|V_r|²` GenPerm draws per iteration, sampling rivals evaluation
//! for wall-clock time and serialises the pipeline.
//!
//! [`FlatSampler`] removes both costs for models whose samples are
//! fixed-width `usize` rows (the permutation and assignment families):
//!
//! * the whole batch lands in **one flat `N × width` buffer** owned by
//!   the driver and reused across iterations — zero per-sample
//!   allocations;
//! * per-iteration **tables** (alias tables per matrix row) are built
//!   once per batch, amortising O(n) preprocessing over `N` O(1) draws;
//! * per-worker **scratch** makes a single draw allocation-free, so the
//!   draw can run *inside* a `match-par` worker, fused with the
//!   evaluation of the same row.
//!
//! The driver entry point is
//! [`minimize_flat`](crate::driver::minimize_flat).

use rand::Rng;

use crate::model::CeModel;

/// A scored batch of fixed-width samples stored row-major in one flat
/// buffer: row `i` is `data[i * width .. (i + 1) * width]`.
#[derive(Debug, Clone, Copy)]
pub struct FlatBatch<'a> {
    width: usize,
    data: &'a [usize],
}

impl<'a> FlatBatch<'a> {
    /// Wrap a flat row-major buffer. `data.len()` must be a multiple of
    /// `width` (a zero `width` requires an empty buffer).
    pub fn new(width: usize, data: &'a [usize]) -> Self {
        if width == 0 {
            assert!(data.is_empty(), "zero-width batch must be empty");
        } else {
            assert_eq!(data.len() % width, 0, "data must be whole rows");
        }
        FlatBatch { width, data }
    }

    /// Entries per sample.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of samples in the batch.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// Sample `i` as a slice.
    pub fn row(&self, i: usize) -> &'a [usize] {
        &self.data[i * self.width..(i + 1) * self.width]
    }
}

/// A [`CeModel`] that can draw fixed-width `usize` samples straight into
/// flat buffers, with batch-level preprocessing and reusable scratch —
/// everything the fused parallel sample+evaluate pipeline needs.
///
/// Determinism contract: [`FlatSampler::sample_flat`] must be a pure
/// function of `(self, tables, rng)` — scratch carries no state between
/// draws — so a batch drawn with per-sample RNGs derived from a single
/// seed is identical for every thread count and chunking.
pub trait FlatSampler: CeModel<Sample = Vec<usize>> + Sync {
    /// Immutable per-batch sampling tables (e.g. one alias table per
    /// stochastic-matrix row), shared read-only across workers.
    type Tables: Send + Sync;
    /// Per-worker mutable scratch for a single draw.
    type Scratch: Send;

    /// Entries per sample (the flat buffer holds `N × width` values).
    fn width(&self) -> usize;

    /// Allocate empty tables, to be populated by
    /// [`FlatSampler::fill_tables`] before each batch.
    fn new_tables(&self) -> Self::Tables;

    /// Rebuild `tables` from the current model parameters, reusing their
    /// allocations. Called once per iteration: the parameters are frozen
    /// while a batch is drawn.
    fn fill_tables(&self, tables: &mut Self::Tables);

    /// Allocate scratch for one worker.
    fn new_scratch(&self) -> Self::Scratch;

    /// Draw one sample into `out` (`out.len() == self.width()`), using
    /// the precomputed `tables`. Must draw the same distribution as
    /// [`CeModel::sample`] (the RNG *stream* may differ — the islands
    /// drive this with a long-lived per-island `StdRng`, the fused
    /// pipeline with one cheap `match_rngutil::SplitMix64` per row).
    fn sample_flat<R: Rng + ?Sized>(
        &self,
        tables: &Self::Tables,
        scratch: &mut Self::Scratch,
        rng: &mut R,
        out: &mut [usize],
    );

    /// [`CeModel::update_from_elites`] reading elite rows (given by index,
    /// in ascending-cost order) out of a flat batch instead of a slice of
    /// `Vec`s. Must tolerate an empty index slice (no-op).
    fn update_from_flat(&mut self, batch: &FlatBatch<'_>, elites: &[usize], zeta: f64);
}

/// Batch scoring of flat sample rows — the evaluation half of the fused
/// pipeline.
///
/// Where [`FlatSampler`] hands the driver whole-batch *production*,
/// `FlatEvaluator` hands it whole-chunk *scoring*: each `match-par`
/// worker calls [`FlatEvaluator::evaluate_rows`] once per chunk, so an
/// implementation can amortise per-call setup (a structure-of-arrays
/// transpose, lane buffers) across many rows instead of paying it per
/// sample. `match-core` plugs in its SIMD-style batch kernel here.
///
/// Determinism contract: evaluation must be a pure function of the rows
/// — same costs for any chunking of the same batch, bit-for-bit — so
/// the driver's outcome stays thread-count invariant.
pub trait FlatEvaluator: Sync {
    /// Per-worker mutable scratch (buffers reused across chunks).
    type Scratch: Send;

    /// Allocate scratch for one worker.
    fn new_scratch(&self) -> Self::Scratch;

    /// Score `costs.len()` rows stored row-major in `rows`
    /// (`rows.len() == costs.len() × width`), writing one cost per row.
    fn evaluate_rows(&self, rows: &[usize], costs: &mut [f64], scratch: &mut Self::Scratch);
}

/// Adapter lifting a per-row scoring closure to a [`FlatEvaluator`]
/// (no batch-level setup, so the chunk call is just a loop). This is
/// what [`minimize_flat`](crate::driver::minimize_flat) wraps its
/// closure argument in.
pub struct RowEval<F>(pub F);

impl<F> FlatEvaluator for RowEval<F>
where
    F: Fn(&[usize]) -> f64 + Sync,
{
    type Scratch = ();

    fn new_scratch(&self) -> Self::Scratch {}

    fn evaluate_rows(&self, rows: &[usize], costs: &mut [f64], _scratch: &mut Self::Scratch) {
        if costs.is_empty() {
            return;
        }
        let width = rows.len() / costs.len();
        debug_assert_eq!(rows.len(), costs.len() * width);
        let mut rest = rows;
        for cost in costs.iter_mut() {
            let (row, tail) = rest.split_at(width);
            rest = tail;
            *cost = (self.0)(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_batch_indexing() {
        let data = vec![0usize, 1, 2, 3, 4, 5];
        let b = FlatBatch::new(3, &data);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.width(), 3);
        assert_eq!(b.row(0), &[0, 1, 2]);
        assert_eq!(b.row(1), &[3, 4, 5]);
    }

    #[test]
    fn zero_width_batch_is_empty() {
        let b = FlatBatch::new(0, &[]);
        assert_eq!(b.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn ragged_batch_rejected() {
        FlatBatch::new(4, &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn row_eval_scores_each_row() {
        let eval = RowEval(|row: &[usize]| row.iter().sum::<usize>() as f64);
        let rows = [1usize, 2, 3, 4, 5, 6];
        let mut costs = [0.0; 2];
        eval.evaluate_rows(&rows, &mut costs, &mut ());
        assert_eq!(costs, [6.0, 15.0]);
    }

    #[test]
    fn row_eval_handles_empty_batch() {
        let eval = RowEval(|_: &[usize]| 1.0);
        eval.evaluate_rows(&[], &mut [], &mut ());
    }
}
