//! Balanced graph bipartition via CE (Rubinstein 2002).
//!
//! Split the nodes into two halves of (near-)equal *node weight* while
//! minimising the edge weight crossing the cut — the partitioning view
//! of the mapping problem that [9, 20] in the paper's related work
//! pursue. The CE formulation penalises imbalance in the objective.

use crate::driver::{minimize, CeConfig, CeOutcome};
use crate::models::bernoulli::BernoulliModel;
use crate::problems::maxcut::cut_weight;
use match_graph::Graph;
use rand::rngs::StdRng;

/// Node-weight imbalance of a bipartition: `|W(S) − W(V∖S)|`.
pub fn imbalance(g: &Graph, side: &[bool]) -> f64 {
    assert_eq!(side.len(), g.node_count(), "side vector length mismatch");
    let mut s = 0.0;
    let mut t = 0.0;
    #[allow(clippy::needless_range_loop)] // u indexes both `side` and the graph
    for u in 0..g.node_count() {
        if side[u] {
            s += g.node_weight(u);
        } else {
            t += g.node_weight(u);
        }
    }
    (s - t).abs()
}

/// Result of a bipartition run.
#[derive(Debug, Clone)]
pub struct BipartitionResult {
    /// Side assignment of the best partition found.
    pub side: Vec<bool>,
    /// Cut weight of that partition.
    pub cut: f64,
    /// Node-weight imbalance of that partition.
    pub imbalance: f64,
    /// The raw CE outcome (penalised objective).
    pub outcome: CeOutcome<Vec<bool>>,
}

/// Minimise `cut + penalty × imbalance` with CE.
pub fn bipartition(
    g: &Graph,
    penalty: f64,
    sample_size: usize,
    rng: &mut StdRng,
) -> BipartitionResult {
    let n = g.node_count();
    let mut model = BernoulliModel::uniform(n);
    let mut cfg = CeConfig::with_sample_size(sample_size.max(2));
    // Cut weights are small integers, so the elite threshold ties for
    // several iterations during genuine progress; a wider gamma window
    // avoids stopping on those coarse plateaus.
    cfg.gamma_window = 15;
    let outcome = minimize(&mut model, &cfg, rng, |s: &Vec<bool>| {
        cut_weight(g, s) + penalty * imbalance(g, s)
    });
    let side = outcome.best_sample.clone();
    BipartitionResult {
        cut: cut_weight(g, &side),
        imbalance: imbalance(g, &side),
        side,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::classic::grid2d_graph;
    use rand::SeedableRng;

    #[test]
    fn imbalance_basics() {
        let mut g = Graph::from_node_weights(vec![1.0, 2.0, 3.0]).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        assert_eq!(imbalance(&g, &[true, true, false]), 0.0);
        assert_eq!(imbalance(&g, &[true, false, false]), 4.0);
    }

    #[test]
    fn two_cliques_with_bridge_split_at_the_bridge() {
        // Two unit-weight triangles joined by a light bridge: the optimal
        // balanced partition cuts only the bridge.
        let mut g = Graph::with_uniform_nodes(6, 1.0);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v, 10.0).unwrap();
        }
        g.add_edge(2, 3, 1.0).unwrap(); // the bridge
        let mut rng = StdRng::seed_from_u64(101);
        let r = bipartition(&g, 100.0, 150, &mut rng);
        assert_eq!(r.cut, 1.0, "should cut only the bridge");
        assert_eq!(r.imbalance, 0.0);
        let side0 = r.side[0];
        assert!(r.side[1] == side0 && r.side[2] == side0);
        assert!(r.side[3] != side0 && r.side[4] != side0 && r.side[5] != side0);
    }

    #[test]
    fn grid_partition_is_balanced() {
        let g = grid2d_graph(4, 4, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(102);
        let r = bipartition(&g, 50.0, 200, &mut rng);
        assert_eq!(r.imbalance, 0.0, "16 unit nodes must split 8/8");
        // Optimal cut of a 4×4 grid split into two 2×4 halves is 4.
        assert!(r.cut <= 6.0, "cut {} too large", r.cut);
    }

    #[test]
    fn zero_penalty_ignores_balance() {
        // Without penalty the all-one-side partition (cut 0) is optimal.
        let mut g = Graph::with_uniform_nodes(4, 1.0);
        g.add_edge(0, 1, 5.0).unwrap();
        g.add_edge(2, 3, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(103);
        let r = bipartition(&g, 0.0, 100, &mut rng);
        assert_eq!(r.cut, 0.0);
    }
}
