//! The travelling-salesman problem via CE over permutations.
//!
//! Rubinstein's CE expositions (the paper's references [22, 24]) treat
//! the TSP as the flagship permutation COP: exactly the model family
//! MaTCH uses for mapping, with a different performance function. Having
//! it here demonstrates that the GenPerm machinery is a general
//! permutation optimiser, not a mapping-specific trick.
//!
//! A tour is a permutation `σ` of the cities; its cost is
//! `Σ_i d(σ_i, σ_{i+1})` cyclically.

use crate::driver::{minimize, CeConfig, CeOutcome};
use crate::models::permutation::PermutationModel;
use rand::rngs::StdRng;
use rand::Rng;

/// A symmetric distance matrix over `n` cities.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Build from a row-major `n × n` matrix. Must be non-negative with
    /// a zero diagonal; symmetry is enforced by averaging.
    pub fn new(n: usize, d: Vec<f64>) -> Self {
        assert_eq!(d.len(), n * n, "matrix shape mismatch");
        assert!(
            d.iter().all(|&x| x >= 0.0 && x.is_finite()),
            "invalid distance"
        );
        let mut m = DistanceMatrix { n, d };
        for i in 0..n {
            m.d[i * n + i] = 0.0;
            for j in (i + 1)..n {
                let avg = (m.d[i * n + j] + m.d[j * n + i]) / 2.0;
                m.d[i * n + j] = avg;
                m.d[j * n + i] = avg;
            }
        }
        m
    }

    /// Euclidean distances over 2-D points.
    pub fn euclidean(points: &[(f64, f64)]) -> Self {
        let n = points.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                d[i * n + j] = (dx * dx + dy * dy).sqrt();
            }
        }
        DistanceMatrix { n, d }
    }

    /// `n` uniformly random points in the unit square.
    pub fn random_euclidean(n: usize, rng: &mut StdRng) -> (Self, Vec<(f64, f64)>) {
        let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.random(), rng.random())).collect();
        (DistanceMatrix::euclidean(&points), points)
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty instance.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between cities `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Cyclic tour length of the permutation `tour`.
    pub fn tour_length(&self, tour: &[usize]) -> f64 {
        assert_eq!(tour.len(), self.n, "tour length mismatch");
        if self.n < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for w in tour.windows(2) {
            total += self.dist(w[0], w[1]);
        }
        total + self.dist(tour[self.n - 1], tour[0])
    }
}

/// Result of a CE TSP run.
#[derive(Debug, Clone)]
pub struct TspResult {
    /// The best tour found.
    pub tour: Vec<usize>,
    /// Its cyclic length.
    pub length: f64,
    /// Raw CE outcome.
    pub outcome: CeOutcome<Vec<usize>>,
}

/// Solve a TSP instance with CE over the GenPerm permutation model.
///
/// Uses the MaTCH-style parameterisation (`N` defaults to `5n²`,
/// `ρ = 0.03`, `ζ = 0.5`) — the TSP landscape rewards a slightly
/// sharper elite than the mapping problem.
pub fn solve_tsp(dm: &DistanceMatrix, sample_size: Option<usize>, rng: &mut StdRng) -> TspResult {
    let n = dm.len();
    let mut model = PermutationModel::uniform(n);
    let mut cfg = CeConfig::with_sample_size(sample_size.unwrap_or((5 * n * n).max(8)));
    cfg.rho = 0.03;
    cfg.zeta = 0.5;
    cfg.max_iters = 400;
    let outcome = minimize(&mut model, &cfg, rng, |tour: &Vec<usize>| {
        dm.tour_length(tour)
    });
    TspResult {
        tour: outcome.best_sample.clone(),
        length: outcome.best_cost,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_rngutil::perm::is_permutation;
    use rand::SeedableRng;

    #[test]
    fn tour_length_square() {
        // Unit square: optimal tour is the perimeter, length 4.
        let dm = DistanceMatrix::euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        assert_eq!(dm.tour_length(&[0, 1, 2, 3]), 4.0);
        // Crossing diagonals is worse.
        let crossing = dm.tour_length(&[0, 2, 1, 3]);
        assert!(crossing > 4.0);
    }

    #[test]
    fn symmetry_enforced() {
        let dm = DistanceMatrix::new(2, vec![0.0, 3.0, 5.0, 0.0]);
        assert_eq!(dm.dist(0, 1), 4.0);
        assert_eq!(dm.dist(1, 0), 4.0);
        assert_eq!(dm.dist(0, 0), 0.0);
    }

    #[test]
    fn ce_finds_square_perimeter() {
        let dm = DistanceMatrix::euclidean(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let r = solve_tsp(&dm, Some(100), &mut rng);
        assert!(is_permutation(&r.tour));
        assert!((r.length - 4.0).abs() < 1e-9, "length {}", r.length);
    }

    #[test]
    fn ce_solves_circle_instance() {
        // Cities on a circle: the optimal tour visits them in angular
        // order, length = perimeter of the regular polygon.
        let n = 9;
        let points: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (a.cos(), a.sin())
            })
            .collect();
        let dm = DistanceMatrix::euclidean(&points);
        let optimal = dm.tour_length(&(0..n).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(2);
        let r = solve_tsp(&dm, None, &mut rng);
        assert!(
            r.length <= optimal * 1.001,
            "CE {} vs optimal {optimal}",
            r.length
        );
    }

    #[test]
    fn ce_beats_random_tours_on_random_instance() {
        let mut rng = StdRng::seed_from_u64(3);
        let (dm, _) = DistanceMatrix::random_euclidean(12, &mut rng);
        let mut acc = 0.0;
        for _ in 0..200 {
            let t = match_rngutil::random_permutation(12, &mut rng);
            acc += dm.tour_length(&t);
        }
        let random_mean = acc / 200.0;
        let r = solve_tsp(&dm, None, &mut rng);
        assert!(
            r.length < 0.7 * random_mean,
            "CE {} vs random mean {random_mean}",
            r.length
        );
    }

    #[test]
    fn degenerate_sizes() {
        let dm = DistanceMatrix::euclidean(&[(0.0, 0.0)]);
        assert_eq!(dm.tour_length(&[0]), 0.0);
        let dm = DistanceMatrix::euclidean(&[(0.0, 0.0), (3.0, 4.0)]);
        assert_eq!(dm.tour_length(&[0, 1]), 10.0); // there and back
    }

    #[test]
    #[should_panic(expected = "invalid distance")]
    fn rejects_negative_distances() {
        DistanceMatrix::new(2, vec![0.0, -1.0, -1.0, 0.0]);
    }
}
