//! Continuous multiextremal benchmark functions, solved with the
//! Gaussian CE model — exercising the "continuous multiextremal
//! optimization" capability §3 attributes to the CE method.

use crate::driver::{minimize, CeConfig, CeOutcome};
use crate::models::gaussian::GaussianModel;
use rand::rngs::StdRng;

/// The sphere function `Σ x_i²` — convex sanity benchmark, minimum 0 at
/// the origin.
pub fn sphere(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// The Rosenbrock banana `Σ 100(x_{i+1} − x_i²)² + (1 − x_i)²` —
/// narrow curved valley, minimum 0 at `(1, …, 1)`.
pub fn rosenbrock(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

/// The Rastrigin function `10n + Σ (x_i² − 10 cos(2π x_i))` — heavily
/// multimodal, minimum 0 at the origin. The paper's claim that CE is a
/// "global search mechanism" is exactly the claim that this function's
/// lattice of local minima does not trap it.
pub fn rastrigin(x: &[f64]) -> f64 {
    10.0 * x.len() as f64
        + x.iter()
            .map(|&v| v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos())
            .sum::<f64>()
}

/// Minimise `f` over `R^n` with Gaussian CE started at
/// `N(0, spread²)^n`.
pub fn minimize_continuous<F: FnMut(&[f64]) -> f64>(
    n: usize,
    spread: f64,
    sample_size: usize,
    max_iters: usize,
    rng: &mut StdRng,
    mut f: F,
) -> CeOutcome<Vec<f64>> {
    let mut model = GaussianModel::isotropic(n, 0.0, spread);
    let mut cfg = CeConfig::with_sample_size(sample_size.max(4));
    cfg.max_iters = max_iters;
    cfg.zeta = 0.7; // continuous CE tolerates aggressive updates
    cfg.stability_tol = 1e-8;
    cfg.gamma_window = 0; // γ rarely ties exactly on continuous costs
    cfg.degeneracy_tol = 1e-9;
    minimize(&mut model, &cfg, rng, |x: &Vec<f64>| f(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn function_values_known() {
        assert_eq!(sphere(&[0.0, 0.0]), 0.0);
        assert_eq!(sphere(&[3.0, 4.0]), 25.0);
        assert_eq!(rosenbrock(&[1.0, 1.0, 1.0]), 0.0);
        assert!(rosenbrock(&[0.0, 0.0]) > 0.0);
        assert!(rastrigin(&[0.0; 4]).abs() < 1e-12);
        // Local minimum near x = 1 (integer lattice) is worse than 0.
        assert!(rastrigin(&[1.0]) > 0.5);
    }

    #[test]
    fn ce_solves_sphere() {
        let mut rng = StdRng::seed_from_u64(5);
        let out = minimize_continuous(5, 3.0, 100, 200, &mut rng, sphere);
        assert!(out.best_cost < 1e-3, "best = {}", out.best_cost);
        for v in &out.best_sample {
            assert!(v.abs() < 0.1);
        }
    }

    #[test]
    fn ce_solves_rosenbrock_2d() {
        let mut rng = StdRng::seed_from_u64(6);
        let out = minimize_continuous(2, 2.0, 200, 400, &mut rng, rosenbrock);
        assert!(out.best_cost < 0.05, "best = {}", out.best_cost);
        assert!((out.best_sample[0] - 1.0).abs() < 0.3);
        assert!((out.best_sample[1] - 1.0).abs() < 0.5);
    }

    #[test]
    fn ce_escapes_rastrigin_local_minima() {
        // A hill climber started at (2, 2) would stall on the lattice;
        // CE from a wide prior should land in the global basin.
        let mut rng = StdRng::seed_from_u64(7);
        let out = minimize_continuous(3, 2.0, 300, 300, &mut rng, rastrigin);
        assert!(out.best_cost < 1.0, "best = {}", out.best_cost);
    }
}
