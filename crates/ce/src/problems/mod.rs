//! Benchmark combinatorial optimization problems from the CE literature.
//!
//! The paper grounds the CE method in Rubinstein's work on "maximal cut
//! and bipartition problems" (the paper's reference 23). These modules implement
//! those two COPs over `match-graph` graphs and solve them with the
//! generic driver, providing an end-to-end validation of the framework
//! that is independent of the task-mapping problem.

pub mod bipartition;
pub mod continuous;
pub mod maxcut;
pub mod tsp;
