//! Max-cut via CE over Bernoulli vectors (Rubinstein 2002).
//!
//! Given a weighted undirected graph, find a bipartition `(S, V∖S)`
//! maximising the total weight of edges crossing the cut. NP-hard in
//! general; CE with the Bernoulli model is the textbook treatment.

use crate::driver::{minimize, CeConfig, CeOutcome};
use crate::models::bernoulli::BernoulliModel;
use match_graph::Graph;
use rand::rngs::StdRng;

/// Total weight of edges crossing the cut defined by `side` (`true` = in
/// `S`).
pub fn cut_weight(g: &Graph, side: &[bool]) -> f64 {
    assert_eq!(side.len(), g.node_count(), "side vector length mismatch");
    g.edges()
        .filter(|&(u, v, _)| side[u] != side[v])
        .map(|(_, _, w)| w)
        .sum()
}

/// Result of a max-cut run.
#[derive(Debug, Clone)]
pub struct MaxCutResult {
    /// Side assignment of the best cut found.
    pub side: Vec<bool>,
    /// Its cut weight.
    pub weight: f64,
    /// The raw CE outcome (costs are negated weights).
    pub outcome: CeOutcome<Vec<bool>>,
}

/// Maximise the cut of `g` with CE. `sample_size` per iteration; other
/// CE parameters follow the paper's defaults.
pub fn max_cut(g: &Graph, sample_size: usize, rng: &mut StdRng) -> MaxCutResult {
    let n = g.node_count();
    let mut model = BernoulliModel::uniform(n);
    let mut cfg = CeConfig::with_sample_size(sample_size.max(2));
    // Cut weights are small integers, so the elite threshold ties for
    // several iterations during genuine progress; a wider gamma window
    // avoids stopping on those coarse plateaus.
    cfg.gamma_window = 15;
    // Minimise the negated cut weight.
    let outcome = minimize(&mut model, &cfg, rng, |s: &Vec<bool>| -cut_weight(g, s));
    MaxCutResult {
        side: outcome.best_sample.clone(),
        weight: -outcome.best_cost,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use match_graph::gen::classic::{complete_graph, ring_graph};
    use rand::SeedableRng;

    #[test]
    fn cut_weight_basics() {
        let mut g = Graph::with_uniform_nodes(3, 1.0);
        g.add_edge(0, 1, 2.0).unwrap();
        g.add_edge(1, 2, 3.0).unwrap();
        assert_eq!(cut_weight(&g, &[true, false, true]), 5.0);
        assert_eq!(cut_weight(&g, &[true, true, true]), 0.0);
        assert_eq!(cut_weight(&g, &[false, true, true]), 2.0);
    }

    #[test]
    fn even_ring_optimal_cut_is_all_edges() {
        // An even cycle is bipartite: the optimal cut takes every edge.
        let g = ring_graph(8, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(91);
        let r = max_cut(&g, 120, &mut rng);
        assert_eq!(r.weight, 8.0, "even ring max cut is |E|");
        // Verify the side vector actually achieves it.
        assert_eq!(cut_weight(&g, &r.side), 8.0);
    }

    #[test]
    fn odd_ring_optimal_cut_is_all_but_one() {
        let g = ring_graph(9, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(92);
        let r = max_cut(&g, 150, &mut rng);
        assert_eq!(r.weight, 8.0, "odd ring max cut is |E| - 1");
    }

    #[test]
    fn complete_graph_cut_is_balanced_product() {
        // K_6 with unit weights: max cut = 3 × 3 = 9.
        let g = complete_graph(6, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(93);
        let r = max_cut(&g, 150, &mut rng);
        assert_eq!(r.weight, 9.0);
    }

    #[test]
    fn edgeless_graph_cut_is_zero() {
        let g = Graph::with_uniform_nodes(4, 1.0);
        let mut rng = StdRng::seed_from_u64(94);
        let r = max_cut(&g, 20, &mut rng);
        assert_eq!(r.weight, 0.0);
    }
}
