//! The [`CeModel`] trait: a parameterised distribution family that the CE
//! driver can sample from and fit to elite samples.

use rand::rngs::StdRng;

/// A distribution family `f(·; v)` over candidate solutions.
///
/// One CE iteration (Figure 2 / Figure 5) calls [`CeModel::sample`] `N`
/// times, selects the elite by cost, and calls
/// [`CeModel::update_from_elites`] with smoothing parameter `ζ`
/// (Eq. 13; `ζ = 1` is the coarse update of Eq. 11).
pub trait CeModel {
    /// One candidate solution.
    type Sample;

    /// Draw one sample from the current parameters.
    ///
    /// The concrete [`StdRng`] (rather than a generic `R: Rng`) keeps the
    /// trait object-safe and lets the driver hand per-worker RNGs to
    /// parallel samplers.
    fn sample(&self, rng: &mut StdRng) -> Self::Sample;

    /// Draw `count` samples into `out` (cleared first), reusing its
    /// allocation across batches.
    ///
    /// The model parameters are frozen for a whole CE iteration, so a
    /// batch is `count` i.i.d. draws; the default simply repeats
    /// [`CeModel::sample`] and therefore consumes the identical RNG
    /// stream. Models with batch-amortisable preprocessing may override
    /// this — flat-buffer samplers get the stronger
    /// [`crate::batch::FlatSampler`] contract instead, which is what the
    /// fused parallel pipeline drives.
    fn sample_batch(&self, rng: &mut StdRng, count: usize, out: &mut Vec<Self::Sample>) {
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            out.push(self.sample(rng));
        }
    }

    /// Fit the parameters to the elite samples (maximum-likelihood count
    /// estimate, Eq. 10/11), then blend with the previous parameters:
    /// `v ← ζ·v̂ + (1 − ζ)·v`.
    ///
    /// Implementations must tolerate an empty elite slice (no-op).
    fn update_from_elites(&mut self, elites: &[Self::Sample], zeta: f64);

    /// True when the distribution has (numerically) collapsed onto a
    /// single sample — the paper's degenerate stochastic matrix.
    fn is_degenerate(&self, tol: f64) -> bool;

    /// The modal (most likely) sample under the current parameters.
    fn mode(&self) -> Self::Sample;

    /// A scalar diagnostic of remaining randomness (e.g. mean row
    /// entropy); used for telemetry only.
    fn entropy(&self) -> f64;

    /// The per-row maxima `μ^i` tracked by the paper's stopping rule
    /// (Eq. 12). Models without a row structure may return a singleton.
    fn stability_signature(&self) -> Vec<f64>;
}
