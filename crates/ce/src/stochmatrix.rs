//! Row-stochastic matrices — the CE parameter object for assignment
//! problems.
//!
//! §4: "By amalgamating these p_ij's we can get a stochastic matrix
//! P = (p_ij) … each of the rows … sum up to 1. This is because the sum
//! total probability of a task being mapped to any resource is obviously
//! 1." The matrix starts uniform (`p_ij = 1/|V_r|`, Figure 5 step 1) and
//! converges to a degenerate 0/1 matrix (Figure 3); row entropy tracks
//! that convergence quantitatively.

/// A dense row-major matrix whose rows are probability distributions.
///
/// ```
/// use match_ce::StochasticMatrix;
///
/// let mut p = StochasticMatrix::uniform(3, 3);
/// assert_eq!(p.get(0, 0), 1.0 / 3.0);
///
/// // Eq. 13 smoothing toward an elite-frequency matrix Q.
/// let q = StochasticMatrix::from_rows(3, 3, vec![
///     1.0, 0.0, 0.0,
///     0.0, 1.0, 0.0,
///     0.0, 0.0, 1.0,
/// ]);
/// p.smooth_toward(&q, 0.3);
/// assert!((p.get(0, 0) - (0.3 + 0.7 / 3.0)).abs() < 1e-12);
/// assert!(!p.is_degenerate(1e-6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl StochasticMatrix {
    /// The uniform matrix: every entry `1 / cols` (Figure 5 step 1).
    pub fn uniform(rows: usize, cols: usize) -> Self {
        assert!(cols > 0, "a row needs at least one column");
        StochasticMatrix {
            rows,
            cols,
            data: vec![1.0 / cols as f64; rows * cols],
        }
    }

    /// Build from raw row-major data, normalising each row. Rows that
    /// sum to zero become uniform.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(cols > 0, "a row needs at least one column");
        let mut m = StochasticMatrix { rows, cols, data };
        m.normalize_rows();
        m
    }

    /// Build from raw row-major data **without** normalising. The
    /// caller asserts the rows are already stochastic — this is the
    /// trusted constructor the warm-start store uses to round-trip a
    /// converged matrix bit-exactly (`from_rows` would divide every
    /// row by its ≈1.0 sum and perturb the mantissas).
    pub fn from_raw(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(cols > 0, "a row needs at least one column");
        StochasticMatrix { rows, cols, data }
    }

    /// Warm-start seed: `α·prior + (1 − α)·uniform`, elementwise.
    ///
    /// Both addends are row-stochastic, so the mix is row-stochastic
    /// by construction — no renormalisation, which keeps `α = 0`
    /// **bit-identical** to [`StochasticMatrix::uniform`] (the cold
    /// path). `α` is clamped to `[0, 1]`.
    pub fn warm_seed(prior: &StochasticMatrix, alpha: f64) -> Self {
        let alpha = alpha.clamp(0.0, 1.0);
        if alpha <= 0.0 {
            return StochasticMatrix::uniform(prior.rows, prior.cols);
        }
        let u = 1.0 / prior.cols as f64;
        let data = prior
            .data
            .iter()
            .map(|&p| alpha * p + (1.0 - alpha) * u)
            .collect();
        StochasticMatrix {
            rows: prior.rows,
            cols: prior.cols,
            data,
        }
    }

    /// Number of rows (tasks).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (resources).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `p_ij`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Overwrite entry `p_ij` (caller must re-normalise afterwards).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Normalise every row to sum 1; all-zero rows become uniform.
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        for i in 0..self.rows {
            let row = &mut self.data[i * cols..(i + 1) * cols];
            let sum: f64 = row.iter().sum();
            if sum > 0.0 && sum.is_finite() {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                for v in row.iter_mut() {
                    *v = 1.0 / cols as f64;
                }
            }
        }
    }

    /// The maximal element of row `i` and its column: `(argmax, μ^i)`.
    /// This is the quantity the paper's stopping rule (Eq. 12) tracks.
    pub fn row_max(&self, i: usize) -> (usize, f64) {
        let row = self.row(i);
        let mut best = (0, row[0]);
        for (j, &v) in row.iter().enumerate().skip(1) {
            if v > best.1 {
                best = (j, v);
            }
        }
        best
    }

    /// Shannon entropy (nats) of row `i`; zero for a degenerate row.
    pub fn row_entropy(&self, i: usize) -> f64 {
        self.row(i)
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }

    /// Mean row entropy — a scalar summary of Figure 3's convergence.
    pub fn mean_entropy(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (0..self.rows).map(|i| self.row_entropy(i)).sum::<f64>() / self.rows as f64
    }

    /// True when every row has a single entry ≥ `1 - tol` ("degenerate
    /// matrix … each task maps to a unique resource with a probability
    /// of 1").
    pub fn is_degenerate(&self, tol: f64) -> bool {
        (0..self.rows).all(|i| self.row_max(i).1 >= 1.0 - tol)
    }

    /// The maximum-probability assignment: `argmax_j p_ij` per row.
    pub fn mode_assignment(&self) -> Vec<usize> {
        (0..self.rows).map(|i| self.row_max(i).0).collect()
    }

    /// Smoothed update (Eq. 13): `P ← ζ·Q + (1 − ζ)·P`.
    ///
    /// `ζ = 1` is the coarse (unsmoothed) update; the paper uses
    /// `ζ = 0.3` "to guard against premature convergence".
    pub fn smooth_toward(&mut self, q: &StochasticMatrix, zeta: f64) {
        assert_eq!(self.rows, q.rows, "row mismatch");
        assert_eq!(self.cols, q.cols, "col mismatch");
        assert!((0.0..=1.0).contains(&zeta), "zeta out of [0,1]");
        for (p, &qv) in self.data.iter_mut().zip(q.data.iter()) {
            *p = zeta * qv + (1.0 - zeta) * *p;
        }
    }

    /// Total-variation distance to `other`, averaged over rows — a
    /// convergence diagnostic.
    pub fn tv_distance(&self, other: &StochasticMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        if self.rows == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..self.rows {
            let d: f64 = self
                .row(i)
                .iter()
                .zip(other.row(i))
                .map(|(a, b)| (a - b).abs())
                .sum();
            total += 0.5 * d;
        }
        total / self.rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn uniform_matrix_rows_sum_to_one() {
        let m = StochasticMatrix::uniform(4, 5);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
        for i in 0..4 {
            assert!(close(m.row(i).iter().sum::<f64>(), 1.0, 1e-12));
            assert!(close(m.get(i, 0), 0.2, 1e-12));
        }
    }

    #[test]
    fn from_rows_normalises() {
        let m = StochasticMatrix::from_rows(2, 2, vec![2.0, 2.0, 0.0, 0.0]);
        assert!(close(m.get(0, 0), 0.5, 1e-12));
        // Zero row falls back to uniform.
        assert!(close(m.get(1, 0), 0.5, 1e-12));
        assert!(close(m.get(1, 1), 0.5, 1e-12));
    }

    #[test]
    fn row_max_and_mode() {
        let m = StochasticMatrix::from_rows(2, 3, vec![0.2, 0.5, 0.3, 0.9, 0.05, 0.05]);
        assert_eq!(m.row_max(0), (1, 0.5));
        assert_eq!(m.row_max(1).0, 0);
        assert_eq!(m.mode_assignment(), vec![1, 0]);
    }

    #[test]
    fn entropy_uniform_is_ln_n() {
        let m = StochasticMatrix::uniform(3, 8);
        assert!(close(m.row_entropy(0), (8.0f64).ln(), 1e-12));
        assert!(close(m.mean_entropy(), (8.0f64).ln(), 1e-12));
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        let m = StochasticMatrix::from_rows(1, 4, vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(m.row_entropy(0), 0.0);
        assert!(m.is_degenerate(1e-9));
    }

    #[test]
    fn degeneracy_detection() {
        let near = StochasticMatrix::from_rows(2, 2, vec![0.999, 0.001, 0.002, 0.998]);
        assert!(near.is_degenerate(0.01));
        assert!(!near.is_degenerate(1e-6));
        assert!(!StochasticMatrix::uniform(2, 2).is_degenerate(0.01));
    }

    #[test]
    fn smoothing_blends_linearly() {
        let mut p = StochasticMatrix::uniform(1, 2); // [0.5, 0.5]
        let q = StochasticMatrix::from_rows(1, 2, vec![1.0, 0.0]);
        p.smooth_toward(&q, 0.3);
        assert!(close(p.get(0, 0), 0.3 * 1.0 + 0.7 * 0.5, 1e-12));
        assert!(close(p.row(0).iter().sum::<f64>(), 1.0, 1e-12));
    }

    #[test]
    fn smoothing_zeta_one_copies_q() {
        let mut p = StochasticMatrix::uniform(2, 3);
        let q = StochasticMatrix::from_rows(2, 3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        p.smooth_toward(&q, 1.0);
        assert_eq!(p, q);
    }

    #[test]
    fn smoothing_zeta_zero_keeps_p() {
        let mut p = StochasticMatrix::uniform(2, 3);
        let before = p.clone();
        let q = StochasticMatrix::from_rows(2, 3, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        p.smooth_toward(&q, 0.0);
        assert_eq!(p, before);
    }

    #[test]
    fn tv_distance_properties() {
        let a = StochasticMatrix::uniform(2, 2);
        let b = StochasticMatrix::from_rows(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        assert_eq!(a.tv_distance(&a), 0.0);
        assert!(close(a.tv_distance(&b), 0.5, 1e-12));
        assert!(close(a.tv_distance(&b), b.tv_distance(&a), 1e-15));
    }

    #[test]
    fn from_raw_does_not_normalise() {
        let data = vec![0.75, 0.25, 0.1 + 0.2, 0.7];
        let m = StochasticMatrix::from_raw(2, 2, data.clone());
        // Bit-exact round-trip: from_rows would divide by the ≈1.0 sum.
        for (got, want) in m.data().iter().zip(data.iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn warm_seed_alpha_zero_is_bitwise_uniform() {
        let prior = StochasticMatrix::from_rows(3, 3, vec![vec![1.0, 0.0, 0.0]; 3].concat());
        let seed = StochasticMatrix::warm_seed(&prior, 0.0);
        let uniform = StochasticMatrix::uniform(3, 3);
        for (a, b) in seed.data().iter().zip(uniform.data().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_seed_mixes_toward_prior() {
        let prior = StochasticMatrix::from_rows(1, 2, vec![1.0, 0.0]);
        let seed = StochasticMatrix::warm_seed(&prior, 0.6);
        assert!(close(seed.get(0, 0), 0.6 * 1.0 + 0.4 * 0.5, 1e-12));
        assert!(close(seed.get(0, 1), 0.4 * 0.5, 1e-12));
        assert!(close(seed.row(0).iter().sum::<f64>(), 1.0, 1e-12));
        // α = 1 copies the prior exactly.
        let copy = StochasticMatrix::warm_seed(&prior, 1.0);
        assert_eq!(copy, prior);
    }

    #[test]
    #[should_panic]
    fn smooth_shape_mismatch_panics() {
        let mut p = StochasticMatrix::uniform(2, 2);
        let q = StochasticMatrix::uniform(2, 3);
        p.smooth_toward(&q, 0.5);
    }
}
