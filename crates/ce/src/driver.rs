//! The iterative CE optimizer (paper Figures 2 and 5, generic form).
//!
//! Per iteration: draw `N` samples from the model, evaluate them, keep
//! the `⌊ρN⌋`-elite (plus ties at the threshold `γ`), update the model
//! parameters with smoothing `ζ` (Eq. 11 + Eq. 13), and stop when the
//! per-row maxima `μ^i` have been stable for `c` consecutive iterations
//! (Eq. 12) or the model has degenerated.
//!
//! Evaluation is pluggable as a *batch* closure so callers can evaluate
//! samples in parallel (the `Matcher` in `match-core` plugs in
//! `match-par`); an observer hook receives the model after each update,
//! which is how Figure 3's matrix snapshots are collected.

use crate::batch::{FlatBatch, FlatEvaluator, FlatSampler, RowEval};
use crate::model::CeModel;
use match_telemetry::{Event, IterEvent, NullRecorder, PoolEvent, Recorder, Span, SpanEvent};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Tunables of the CE loop. Defaults follow the paper where it commits
/// to a value: `ρ = 0.1` (within its 0.01–0.1 band), `ζ = 0.3`, `c = 5`.
/// `sample_size` has no universal default — MaTCH uses `N = 2|V_r|²` —
/// so it is a required field here.
#[derive(Debug, Clone, PartialEq)]
pub struct CeConfig {
    /// Elite fraction `ρ` ("focus parameter", §4).
    pub rho: f64,
    /// Samples per iteration `N`.
    pub sample_size: usize,
    /// Smoothing factor `ζ` of Eq. 13 (`1.0` = coarse update).
    pub zeta: f64,
    /// Hard iteration cap (safety net; the paper relies on Eq. 12 only).
    pub max_iters: usize,
    /// Consecutive-stability window `c` of Eq. 12.
    pub stability_window: usize,
    /// Tolerance for "equal" row maxima in Eq. 12. With smoothing the
    /// maxima converge asymptotically rather than exactly, so exact
    /// float equality would never trigger; the paper's integer-count
    /// updates make equality meaningful there.
    pub stability_tol: f64,
    /// Stop as soon as the model is degenerate within this tolerance.
    pub degeneracy_tol: f64,
    /// Consecutive-stability window for the elite threshold `γ` —
    /// Figure 2's stopping rule (`γ̂_i = γ̂_{i−1} = … = γ̂_{i−k}`).
    /// `0` disables the rule. With smoothing, the per-row maxima of
    /// Eq. 12 converge only asymptotically, so in practice this rule is
    /// the one that fires once the sampled population has collapsed onto
    /// a single cost plateau.
    pub gamma_window: usize,
    /// Relative tolerance for "equal" γ values.
    pub gamma_tol: f64,
}

impl CeConfig {
    /// Paper-style defaults with the given per-iteration sample count.
    pub fn with_sample_size(sample_size: usize) -> Self {
        CeConfig {
            rho: 0.1,
            sample_size,
            zeta: 0.3,
            max_iters: 1000,
            stability_window: 5,
            stability_tol: 1e-4,
            degeneracy_tol: 1e-6,
            gamma_window: 5,
            gamma_tol: 1e-12,
        }
    }

    /// Panic with a clear message on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.rho > 0.0 && self.rho <= 1.0, "rho must be in (0, 1]");
        assert!(self.sample_size >= 1, "need at least one sample");
        assert!((0.0..=1.0).contains(&self.zeta), "zeta must be in [0, 1]");
        assert!(self.max_iters >= 1, "need at least one iteration");
        assert!(self.stability_window >= 1, "stability window >= 1");
    }
}

/// Why the loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Row maxima stable for `c` iterations (Eq. 12).
    MuStable,
    /// Elite threshold `γ` stable for `k` iterations (Figure 2 step 4).
    GammaStable,
    /// The model collapsed to a (near-)degenerate distribution.
    Degenerate,
    /// Iteration cap reached.
    MaxIters,
    /// The caller's stop predicate fired (deadline or external
    /// cancellation); the outcome holds the best sample found so far.
    Cancelled,
}

/// Telemetry of one iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterStats {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Elite threshold `γ_k` (worst cost admitted to the elite).
    pub gamma: f64,
    /// Best sampled cost this iteration.
    pub best: f64,
    /// Mean sampled cost this iteration.
    pub mean: f64,
    /// Worst sampled cost this iteration.
    pub worst: f64,
    /// Number of elite samples (≥ `⌊ρN⌋`, ties included).
    pub elite_count: usize,
    /// Model entropy after the update.
    pub entropy: f64,
}

/// Full run telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CeTelemetry {
    /// One record per iteration, in order.
    pub iters: Vec<IterStats>,
}

impl CeTelemetry {
    /// Best cost seen per iteration (running minimum of `best`).
    pub fn best_curve(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.iters
            .iter()
            .map(|s| {
                best = best.min(s.best);
                best
            })
            .collect()
    }
}

/// Result of a CE run.
#[derive(Debug, Clone)]
pub struct CeOutcome<S> {
    /// The best sample ever evaluated.
    pub best_sample: S,
    /// Its cost.
    pub best_cost: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Total objective evaluations (`iterations × N`).
    pub evaluations: u64,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
    /// Per-iteration statistics.
    pub telemetry: CeTelemetry,
}

/// Minimise `score` over samples of `model`, with per-sample evaluation.
pub fn minimize<M, F>(
    model: &mut M,
    config: &CeConfig,
    rng: &mut StdRng,
    mut score: F,
) -> CeOutcome<M::Sample>
where
    M: CeModel,
    M::Sample: Clone,
    F: FnMut(&M::Sample) -> f64,
{
    minimize_with(
        model,
        config,
        rng,
        |samples| samples.iter().map(&mut score).collect(),
        |_, _| {},
    )
}

/// Minimise with a batch evaluator (enables parallel evaluation) and a
/// per-iteration observer called after each model update with
/// `(iteration, &model)`.
pub fn minimize_with<M, E, O>(
    model: &mut M,
    config: &CeConfig,
    rng: &mut StdRng,
    mut evaluate: E,
    observe: O,
) -> CeOutcome<M::Sample>
where
    M: CeModel,
    M::Sample: Clone,
    E: FnMut(&[M::Sample]) -> Vec<f64>,
    O: FnMut(usize, &M),
{
    minimize_traced(
        model,
        config,
        rng,
        |samples, _recorder| evaluate(samples),
        observe,
        &mut NullRecorder,
    )
}

/// [`minimize_with`] plus live telemetry: per-iteration [`IterEvent`]s
/// (γ, best, mean, elite size, wall time) and `sample`/`evaluate`/
/// `update` spans go to `recorder`. The batch evaluator receives the
/// recorder so it can attach its own events (e.g. `match-par` chunk
/// timings) to the same stream.
///
/// With a [`NullRecorder`] this is exactly `minimize_with`: event
/// construction and clock reads are skipped when
/// [`Recorder::enabled`] is `false`.
pub fn minimize_traced<M, E, O>(
    model: &mut M,
    config: &CeConfig,
    rng: &mut StdRng,
    evaluate: E,
    observe: O,
    recorder: &mut dyn Recorder,
) -> CeOutcome<M::Sample>
where
    M: CeModel,
    M::Sample: Clone,
    E: FnMut(&[M::Sample], &mut dyn Recorder) -> Vec<f64>,
    O: FnMut(usize, &M),
{
    minimize_controlled(model, config, rng, evaluate, observe, recorder, &|| false)
}

/// [`minimize_traced`] with cooperative cancellation: `should_stop` is
/// polled once per iteration (after the incumbent update, so at least
/// one iteration always completes and the outcome always holds a valid
/// best sample). When it fires the loop exits with
/// [`StopReason::Cancelled`].
///
/// The predicate is a plain closure rather than a token type so this
/// crate stays independent of `match-core` (which depends on it);
/// callers thread `StopToken::should_stop` through here. Polling must
/// not consume randomness — an uncancelled run follows exactly the
/// same RNG trajectory as [`minimize_traced`].
#[allow(clippy::too_many_arguments)]
pub fn minimize_controlled<M, E, O>(
    model: &mut M,
    config: &CeConfig,
    rng: &mut StdRng,
    mut evaluate: E,
    mut observe: O,
    recorder: &mut dyn Recorder,
    should_stop: &dyn Fn() -> bool,
) -> CeOutcome<M::Sample>
where
    M: CeModel,
    M::Sample: Clone,
    E: FnMut(&[M::Sample], &mut dyn Recorder) -> Vec<f64>,
    O: FnMut(usize, &M),
{
    config.validate();
    let traced = recorder.enabled();
    let n = config.sample_size;
    let elite_target = ((config.rho * n as f64).floor() as usize).max(1);

    let mut best_sample: Option<M::Sample> = None;
    let mut best_cost = f64::INFINITY;
    let mut telemetry = CeTelemetry::default();
    let mut evaluations: u64 = 0;

    let mut prev_signature: Option<Vec<f64>> = None;
    let mut stable_iters = 0usize;
    let mut prev_gamma: Option<f64> = None;
    let mut gamma_stable = 0usize;
    let mut stop_reason = StopReason::MaxIters;
    let mut iterations = 0usize;
    let mut samples: Vec<M::Sample> = Vec::with_capacity(n);

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let iter_start = traced.then(Instant::now);

        // Step 3 (Fig. 5): draw the sample batch (buffer reused across
        // iterations; the default `sample_batch` keeps the historical
        // per-sample RNG stream bit-identical).
        let span = traced.then(|| Span::start("sample", iter as u64));
        model.sample_batch(rng, n, &mut samples);
        if let Some(span) = span {
            span.finish(recorder);
        }
        let span = traced.then(|| Span::start("evaluate", iter as u64));
        let costs = evaluate(&samples, recorder);
        if let Some(span) = span {
            span.finish(recorder);
        }
        assert_eq!(
            costs.len(),
            samples.len(),
            "evaluator returned wrong length"
        );
        evaluations += n as u64;
        if traced {
            recorder.record(Event::Counter {
                name: "evaluations".into(),
                value: n as u64,
            });
        }

        // Steps 4–5: the ρ-quantile threshold γ and the elite set, in
        // O(N) expected instead of a full sort.
        let selection = select_elites(&costs, elite_target);
        let gamma = selection.gamma;
        let elites: Vec<M::Sample> = selection
            .elites
            .iter()
            .map(|&i| samples[i].clone())
            .collect();
        let elite_count = elites.len();

        // Track the incumbent.
        let first = selection.best;
        // `<` alone would never capture a sample when every cost is +∞
        // (all-infeasible iterations of penalised formulations).
        if best_sample.is_none() || costs[first] < best_cost {
            best_cost = costs[first];
            best_sample = Some(samples[first].clone());
        }

        // Step 6: ML update + smoothing.
        let span = traced.then(|| Span::start("update", iter as u64));
        model.update_from_elites(&elites, config.zeta);
        if let Some(span) = span {
            span.finish(recorder);
        }
        observe(iter, model);

        let mean = costs.iter().sum::<f64>() / n as f64;
        telemetry.iters.push(IterStats {
            iter,
            gamma,
            best: costs[first],
            mean,
            worst: selection.worst,
            elite_count,
            entropy: model.entropy(),
        });
        if let Some(start) = iter_start {
            recorder.record(Event::Iter(IterEvent {
                iter: iter as u64,
                best: costs[first],
                mean,
                gamma: Some(gamma),
                elite_size: elite_count as u64,
                wall_ns: start.elapsed().as_nanos() as u64,
            }));
        }

        // Step 8: μ-stability (Eq. 12), plus degeneracy early-out.
        let signature = model.stability_signature();
        if let Some(prev) = &prev_signature {
            let stable = prev
                .iter()
                .zip(&signature)
                .all(|(a, b)| (a - b).abs() <= config.stability_tol);
            stable_iters = if stable { stable_iters + 1 } else { 0 };
        }
        prev_signature = Some(signature);
        if stable_iters >= config.stability_window {
            stop_reason = StopReason::MuStable;
            break;
        }
        // Figure 2's γ-stability rule.
        if config.gamma_window > 0 {
            if let Some(pg) = prev_gamma {
                let equal = if pg.is_finite() && gamma.is_finite() {
                    (pg - gamma).abs() <= config.gamma_tol * (1.0 + pg.abs())
                } else {
                    pg == gamma
                };
                gamma_stable = if equal { gamma_stable + 1 } else { 0 };
            }
            prev_gamma = Some(gamma);
            if gamma_stable >= config.gamma_window {
                stop_reason = StopReason::GammaStable;
                break;
            }
        }
        if model.is_degenerate(config.degeneracy_tol) {
            stop_reason = StopReason::Degenerate;
            break;
        }
        // Cooperative cancellation, polled last so the incumbent from
        // this iteration is already captured.
        if should_stop() {
            stop_reason = StopReason::Cancelled;
            break;
        }
    }

    CeOutcome {
        best_sample: best_sample.expect("at least one iteration ran"),
        best_cost,
        iterations,
        evaluations,
        stop_reason,
        telemetry,
    }
}

/// The elite set of one iteration, by index into the cost slice.
#[derive(Debug, Clone, PartialEq)]
pub struct EliteSelection {
    /// Elite threshold `γ` — the `⌊ρN⌋`-th smallest cost.
    pub gamma: f64,
    /// Indices with cost `≤ γ` (the indicator of Eq. 11), sorted by
    /// `(cost, index)` — the exact order a stable full sort would give.
    pub elites: Vec<usize>,
    /// Index of the best sample (smallest cost; smallest index on ties).
    pub best: usize,
    /// Worst sampled cost (telemetry).
    pub worst: f64,
}

/// Select the `⌊ρN⌋`-elite plus ties at `γ` in O(N) expected time.
///
/// A quickselect ([`slice::select_nth_unstable_by`]) finds the
/// `elite_target`-th smallest cost — that is `γ` — and a linear sweep
/// admits every sample with `cost ≤ γ`, matching the `S ≤ γ` indicator
/// of Eq. 11 (ties included). Only the elite set (≈ `ρN` entries) is then
/// sorted, so the returned order — and hence the floating-point summation
/// order of the model update and the incumbent choice — is bit-identical
/// to the full stable sort this replaces.
pub fn select_elites(costs: &[f64], elite_target: usize) -> EliteSelection {
    let n = costs.len();
    assert!(
        (1..=n).contains(&elite_target),
        "elite target must be in 1..=N"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let (_, &mut kth, _) =
        idx.select_nth_unstable_by(elite_target - 1, |&a, &b| costs[a].total_cmp(&costs[b]));
    let gamma = costs[kth];
    let mut elites: Vec<usize> = (0..n).filter(|&i| costs[i] <= gamma).collect();
    elites.sort_unstable_by(|&a, &b| costs[a].total_cmp(&costs[b]).then(a.cmp(&b)));
    let best = *elites.first().expect("gamma itself is admitted");
    let worst = costs
        .iter()
        .copied()
        .max_by(f64::total_cmp)
        .expect("n >= 1");
    EliteSelection {
        gamma,
        elites,
        best,
        worst,
    }
}

/// The fused parallel CE loop for [`FlatSampler`] models: per iteration,
/// the `N`-sample batch is split into `match-par` row chunks and each
/// worker **draws and scores its rows in the same pass**, writing into
/// one flat `N × width` buffer — no per-sample allocation, no
/// sample-then-evaluate barrier.
///
/// Determinism: the driver RNG is consumed exactly once per iteration
/// (one `u64` → the iteration seed); sample `i` draws from its own
/// counter-based `match_rngutil::SplitMix64::stream(iter_seed, i)` —
/// two mixes to set up instead of a full `StdRng` key expansion per
/// sample. Results are therefore identical for every `threads` value
/// and chunking — though the stream differs from the sequential
/// [`minimize_controlled`] path.
///
/// When `recorder` is enabled, the fused region still reports separate
/// `sample` / `evaluate` spans: workers accumulate per-phase nanoseconds
/// and the region's wall clock is split proportionally (table builds
/// count as sampling). Per-chunk [`PoolEvent`]s expose dispatch balance.
#[allow(clippy::too_many_arguments)]
pub fn minimize_flat<M, F, O>(
    model: &mut M,
    config: &CeConfig,
    rng: &mut StdRng,
    threads: usize,
    evaluate: F,
    observe: O,
    recorder: &mut dyn Recorder,
    should_stop: &dyn Fn() -> bool,
) -> CeOutcome<Vec<usize>>
where
    M: FlatSampler,
    F: Fn(&[usize]) -> f64 + Sync,
    O: FnMut(usize, &M),
{
    minimize_flat_with(
        model,
        config,
        rng,
        threads,
        &RowEval(evaluate),
        observe,
        recorder,
        should_stop,
    )
}

/// [`minimize_flat`] with a [`FlatEvaluator`] instead of a per-row
/// closure: each worker samples its whole chunk of rows first, then
/// scores the chunk in **one** `evaluate_rows` call — the hook that
/// lets `match-core`'s SIMD-style batch kernel amortise its transpose
/// and lane buffers across a chunk.
///
/// The RNG contract is unchanged from [`minimize_flat`] (one driver
/// draw per iteration, sample `i` from `SplitMix64::stream(iter_seed,
/// i)`), and evaluation is pure, so for a bit-exact evaluator the
/// trajectory is identical to the per-row pipeline — and still
/// thread-count invariant, because chunk boundaries only regroup the
/// evaluator's batches, never reorder any per-sample computation.
#[allow(clippy::too_many_arguments)]
pub fn minimize_flat_with<M, E, O>(
    model: &mut M,
    config: &CeConfig,
    rng: &mut StdRng,
    threads: usize,
    evaluator: &E,
    mut observe: O,
    recorder: &mut dyn Recorder,
    should_stop: &dyn Fn() -> bool,
) -> CeOutcome<Vec<usize>>
where
    M: FlatSampler,
    E: FlatEvaluator,
    O: FnMut(usize, &M),
{
    config.validate();
    let traced = recorder.enabled();
    let n = config.sample_size;
    let width = model.width();
    let elite_target = ((config.rho * n as f64).floor() as usize).max(1);

    let mut best_sample: Option<Vec<usize>> = None;
    let mut best_cost = f64::INFINITY;
    let mut telemetry = CeTelemetry::default();
    let mut evaluations: u64 = 0;

    let mut prev_signature: Option<Vec<f64>> = None;
    let mut stable_iters = 0usize;
    let mut prev_gamma: Option<f64> = None;
    let mut gamma_stable = 0usize;
    let mut stop_reason = StopReason::MaxIters;
    let mut iterations = 0usize;

    let mut tables = model.new_tables();
    let mut data = vec![0usize; n * width];
    let mut costs = vec![0.0f64; n];

    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let iter_start = traced.then(Instant::now);

        // One driver-RNG draw per iteration; everything below is a pure
        // function of (model, iter_seed), independent of thread count.
        let iter_seed: u64 = rng.random();

        let region_start = traced.then(Instant::now);
        model.fill_tables(&mut tables);
        let prep_ns = region_start.map_or(0, |t| t.elapsed().as_nanos() as u64);

        let sample_ns = AtomicU64::new(0);
        let eval_ns = AtomicU64::new(0);
        let tables_ref = &tables;
        let timings = match_par::parallel_fill_rows_chunked(
            &mut data,
            &mut costs,
            width,
            threads,
            || (model.new_scratch(), evaluator.new_scratch()),
            |(scratch, eval_scratch), base, chunk_data, chunk_costs| {
                // Draw every row of the chunk, then score the chunk in
                // one batch call. Sample i's RNG stream depends only on
                // its global index, and evaluation is pure, so chunk
                // boundaries cannot show in the results.
                let t0 = traced.then(Instant::now);
                let mut rest: &mut [usize] = chunk_data;
                for k in 0..chunk_costs.len() {
                    let (row, tail) = rest.split_at_mut(width);
                    rest = tail;
                    let mut srng = match_rngutil::SplitMix64::stream(iter_seed, (base + k) as u64);
                    model.sample_flat(tables_ref, scratch, &mut srng, row);
                }
                let t1 = traced.then(Instant::now);
                evaluator.evaluate_rows(chunk_data, chunk_costs, eval_scratch);
                if let (Some(t0), Some(t1)) = (t0, t1) {
                    let t2 = Instant::now();
                    sample_ns.fetch_add((t1 - t0).as_nanos() as u64, Ordering::Relaxed);
                    eval_ns.fetch_add((t2 - t1).as_nanos() as u64, Ordering::Relaxed);
                }
            },
        );
        evaluations += n as u64;
        if traced {
            recorder.record(Event::Counter {
                name: "evaluations".into(),
                value: n as u64,
            });
        }

        if let Some(start) = region_start {
            // Split the fused region's wall clock between the two logical
            // phases in proportion to the workers' accumulated time, so
            // phase budgets in `matchctl report` stay comparable with the
            // sequential pipeline. Table builds count as sampling.
            let wall = start.elapsed().as_nanos() as u64;
            let s = prep_ns + sample_ns.load(Ordering::Relaxed);
            let e = eval_ns.load(Ordering::Relaxed);
            let total = s + e;
            let sample_share = if total == 0 {
                wall
            } else {
                (wall as u128 * s as u128 / total as u128) as u64
            };
            recorder.record(Event::Span(SpanEvent {
                name: "sample".into(),
                iter: iter as u64,
                wall_ns: sample_share,
            }));
            recorder.record(Event::Span(SpanEvent {
                name: "evaluate".into(),
                iter: iter as u64,
                wall_ns: wall - sample_share,
            }));
            for t in &timings {
                recorder.record(Event::Pool(PoolEvent {
                    iter: iter as u64,
                    chunk: t.chunk,
                    len: t.len,
                    wall_ns: t.wall_ns,
                }));
            }
        }

        // Steps 4–5: γ and the elite set, O(N) expected.
        let selection = select_elites(&costs, elite_target);
        let gamma = selection.gamma;
        let elite_count = selection.elites.len();

        // Track the incumbent.
        let first = selection.best;
        if best_sample.is_none() || costs[first] < best_cost {
            best_cost = costs[first];
            best_sample = Some(data[first * width..(first + 1) * width].to_vec());
        }

        // Step 6: ML update + smoothing, straight off the flat batch.
        let span = traced.then(|| Span::start("update", iter as u64));
        model.update_from_flat(
            &FlatBatch::new(width, &data),
            &selection.elites,
            config.zeta,
        );
        if let Some(span) = span {
            span.finish(recorder);
        }
        observe(iter, model);

        let mean = costs.iter().sum::<f64>() / n as f64;
        telemetry.iters.push(IterStats {
            iter,
            gamma,
            best: costs[first],
            mean,
            worst: selection.worst,
            elite_count,
            entropy: model.entropy(),
        });
        if let Some(start) = iter_start {
            recorder.record(Event::Iter(IterEvent {
                iter: iter as u64,
                best: costs[first],
                mean,
                gamma: Some(gamma),
                elite_size: elite_count as u64,
                wall_ns: start.elapsed().as_nanos() as u64,
            }));
        }

        // Stopping rules: identical to `minimize_controlled`.
        let signature = model.stability_signature();
        if let Some(prev) = &prev_signature {
            let stable = prev
                .iter()
                .zip(&signature)
                .all(|(a, b)| (a - b).abs() <= config.stability_tol);
            stable_iters = if stable { stable_iters + 1 } else { 0 };
        }
        prev_signature = Some(signature);
        if stable_iters >= config.stability_window {
            stop_reason = StopReason::MuStable;
            break;
        }
        if config.gamma_window > 0 {
            if let Some(pg) = prev_gamma {
                let equal = if pg.is_finite() && gamma.is_finite() {
                    (pg - gamma).abs() <= config.gamma_tol * (1.0 + pg.abs())
                } else {
                    pg == gamma
                };
                gamma_stable = if equal { gamma_stable + 1 } else { 0 };
            }
            prev_gamma = Some(gamma);
            if gamma_stable >= config.gamma_window {
                stop_reason = StopReason::GammaStable;
                break;
            }
        }
        if model.is_degenerate(config.degeneracy_tol) {
            stop_reason = StopReason::Degenerate;
            break;
        }
        if should_stop() {
            stop_reason = StopReason::Cancelled;
            break;
        }
    }

    CeOutcome {
        best_sample: best_sample.expect("at least one iteration ran"),
        best_cost,
        iterations,
        evaluations,
        stop_reason,
        telemetry,
    }
}

/// Warm-started [`minimize_flat_with`] for the permutation family: seed
/// the stochastic matrix as `α·prior + (1 − α)·uniform`
/// ([`StochasticMatrix::warm_seed`]) instead of uniform, run the fused
/// flat loop, and return the **converged** matrix alongside the outcome
/// so the caller can persist it as the next request's prior.
///
/// `α = 0` (or a `prior` of the wrong shape) reproduces the cold path
/// bit-for-bit: `warm_seed` returns the exact uniform matrix and the
/// loop below is the same code `minimize_flat_with` runs on a
/// `PermutationModel::uniform` model.
#[allow(clippy::too_many_arguments)]
pub fn minimize_flat_from<E, O>(
    prior: Option<&crate::stochmatrix::StochasticMatrix>,
    alpha: f64,
    n_rows: usize,
    config: &CeConfig,
    rng: &mut StdRng,
    threads: usize,
    evaluator: &E,
    observe: O,
    recorder: &mut dyn Recorder,
    should_stop: &dyn Fn() -> bool,
) -> (CeOutcome<Vec<usize>>, crate::stochmatrix::StochasticMatrix)
where
    E: FlatEvaluator,
    O: FnMut(usize, &crate::models::permutation::PermutationModel),
{
    use crate::models::permutation::PermutationModel;
    use crate::stochmatrix::StochasticMatrix;
    let init = match prior {
        Some(p) if alpha > 0.0 && p.rows() == n_rows && p.cols() == n_rows => {
            StochasticMatrix::warm_seed(p, alpha)
        }
        _ => StochasticMatrix::uniform(n_rows, n_rows),
    };
    let mut model = PermutationModel::from_matrix(init);
    let out = minimize_flat_with(
        &mut model,
        config,
        rng,
        threads,
        evaluator,
        observe,
        recorder,
        should_stop,
    );
    let converged = model.matrix().clone();
    (out, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::bernoulli::BernoulliModel;
    use crate::models::permutation::PermutationModel;
    use rand::SeedableRng;

    /// Cost: number of coordinates that differ from a hidden target.
    fn hamming_cost(target: &[bool]) -> impl Fn(&Vec<bool>) -> f64 + '_ {
        move |s: &Vec<bool>| s.iter().zip(target).filter(|(a, b)| a != b).count() as f64
    }

    #[test]
    fn recovers_hidden_bit_vector() {
        let target = vec![true, false, true, true, false, false, true, false];
        let mut model = BernoulliModel::uniform(target.len());
        let cfg = CeConfig::with_sample_size(100);
        let mut rng = StdRng::seed_from_u64(81);
        let out = minimize(&mut model, &cfg, &mut rng, hamming_cost(&target));
        assert_eq!(out.best_cost, 0.0);
        assert_eq!(out.best_sample, target);
        assert!(out.iterations < 100);
        assert_eq!(
            out.evaluations,
            out.iterations as u64 * cfg.sample_size as u64
        );
    }

    #[test]
    fn recovers_hidden_permutation() {
        let target = vec![3usize, 1, 4, 0, 2, 5];
        let mut model = PermutationModel::uniform(target.len());
        let cfg = CeConfig::with_sample_size(200);
        let mut rng = StdRng::seed_from_u64(82);
        let out = minimize(&mut model, &cfg, &mut rng, |s: &Vec<usize>| {
            s.iter().zip(&target).filter(|(a, b)| a != b).count() as f64
        });
        assert_eq!(out.best_cost, 0.0);
        assert_eq!(out.best_sample, target);
    }

    #[test]
    fn gamma_is_monotone_trending_down() {
        // On a smooth problem the elite threshold should improve overall.
        let target = vec![true; 12];
        let mut model = BernoulliModel::uniform(12);
        let cfg = CeConfig::with_sample_size(80);
        let mut rng = StdRng::seed_from_u64(83);
        let out = minimize(&mut model, &cfg, &mut rng, hamming_cost(&target));
        let first = out.telemetry.iters.first().unwrap().gamma;
        let last = out.telemetry.iters.last().unwrap().gamma;
        assert!(last <= first);
    }

    #[test]
    fn best_curve_is_nonincreasing() {
        let target = vec![
            true, false, true, false, true, false, true, false, true, false,
        ];
        let mut model = BernoulliModel::uniform(10);
        let cfg = CeConfig::with_sample_size(50);
        let mut rng = StdRng::seed_from_u64(84);
        let out = minimize(&mut model, &cfg, &mut rng, hamming_cost(&target));
        let curve = out.telemetry.best_curve();
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn observer_sees_every_iteration() {
        let mut model = BernoulliModel::uniform(4);
        let cfg = CeConfig::with_sample_size(30);
        let mut rng = StdRng::seed_from_u64(85);
        let mut seen = Vec::new();
        let out = minimize_with(
            &mut model,
            &cfg,
            &mut rng,
            |samples| {
                samples
                    .iter()
                    .map(|s| s.iter().filter(|&&b| b).count() as f64)
                    .collect()
            },
            |iter, _m| seen.push(iter),
        );
        assert_eq!(seen.len(), out.iterations);
        assert_eq!(seen, (0..out.iterations).collect::<Vec<_>>());
    }

    #[test]
    fn max_iters_respected() {
        let mut model = BernoulliModel::uniform(64);
        let mut cfg = CeConfig::with_sample_size(10);
        cfg.max_iters = 3;
        // Random objective: no convergence possible.
        let mut rng = StdRng::seed_from_u64(86);
        let mut flip = 0.0;
        let out = minimize(&mut model, &cfg, &mut rng, |_s| {
            flip += 1.0;
            (flip * 7919.0) % 97.0
        });
        assert_eq!(out.iterations, 3);
        assert_eq!(out.stop_reason, StopReason::MaxIters);
    }

    #[test]
    fn stops_on_degeneracy_with_coarse_update() {
        // zeta = 1 and a constant elite: model collapses instantly.
        let mut model = BernoulliModel::uniform(6);
        let mut cfg = CeConfig::with_sample_size(40);
        cfg.zeta = 1.0;
        cfg.stability_window = 50; // keep μ-rule out of the way
        let target = vec![true; 6];
        let mut rng = StdRng::seed_from_u64(87);
        let out = minimize(&mut model, &cfg, &mut rng, hamming_cost(&target));
        assert!(matches!(
            out.stop_reason,
            StopReason::Degenerate | StopReason::MuStable
        ));
        assert!(out.iterations < 50);
    }

    #[test]
    fn handles_infinite_costs() {
        // Infeasible samples score +inf; the driver must still pick the
        // finite ones as elites.
        let mut model = BernoulliModel::uniform(5);
        let cfg = CeConfig::with_sample_size(60);
        let mut rng = StdRng::seed_from_u64(88);
        let out = minimize(&mut model, &cfg, &mut rng, |s: &Vec<bool>| {
            let ones = s.iter().filter(|&&b| b).count();
            if ones == 0 {
                f64::INFINITY
            } else {
                ones as f64
            }
        });
        assert_eq!(out.best_cost, 1.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn invalid_config_panics() {
        let mut model = BernoulliModel::uniform(2);
        let mut cfg = CeConfig::with_sample_size(10);
        cfg.rho = 0.0;
        let mut rng = StdRng::seed_from_u64(89);
        minimize(&mut model, &cfg, &mut rng, |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "zeta must be in [0, 1]")]
    fn invalid_zeta_panics() {
        let mut model = BernoulliModel::uniform(2);
        let mut cfg = CeConfig::with_sample_size(10);
        cfg.zeta = 1.5;
        minimize(&mut model, &cfg, &mut StdRng::seed_from_u64(89), |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn zero_samples_panics() {
        let mut model = BernoulliModel::uniform(2);
        let cfg = CeConfig::with_sample_size(0);
        minimize(&mut model, &cfg, &mut StdRng::seed_from_u64(89), |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one iteration")]
    fn zero_iterations_panics() {
        let mut model = BernoulliModel::uniform(2);
        let mut cfg = CeConfig::with_sample_size(10);
        cfg.max_iters = 0;
        minimize(&mut model, &cfg, &mut StdRng::seed_from_u64(89), |_| 0.0);
    }

    #[test]
    fn cancellation_fires_after_one_iteration() {
        use match_telemetry::NullRecorder;
        // A hostile predicate that is always true still lets one
        // iteration run, so the outcome has a valid incumbent.
        let mut model = BernoulliModel::uniform(16);
        let cfg = CeConfig::with_sample_size(20);
        let mut rng = StdRng::seed_from_u64(91);
        let out = minimize_controlled(
            &mut model,
            &cfg,
            &mut rng,
            |samples, _r| {
                samples
                    .iter()
                    .map(|s| s.iter().filter(|&&b| b).count() as f64)
                    .collect()
            },
            |_, _| {},
            &mut NullRecorder,
            &|| true,
        );
        assert_eq!(out.iterations, 1);
        assert_eq!(out.stop_reason, StopReason::Cancelled);
        assert!(out.best_cost.is_finite());
    }

    #[test]
    fn never_firing_predicate_changes_nothing() {
        // Same seed, with and without a (never-firing) stop predicate:
        // identical trajectories, because polling consumes no RNG.
        use match_telemetry::NullRecorder;
        let target = vec![true, false, true, true, false, false, true, false];
        let cfg = CeConfig::with_sample_size(100);
        let mut m1 = BernoulliModel::uniform(target.len());
        let plain = minimize(
            &mut m1,
            &cfg,
            &mut StdRng::seed_from_u64(81),
            hamming_cost(&target),
        );
        let mut m2 = BernoulliModel::uniform(target.len());
        let cost = hamming_cost(&target);
        let controlled = minimize_controlled(
            &mut m2,
            &cfg,
            &mut StdRng::seed_from_u64(81),
            |samples, _r| samples.iter().map(&cost).collect(),
            |_, _| {},
            &mut NullRecorder,
            &|| false,
        );
        assert_eq!(plain.best_sample, controlled.best_sample);
        assert_eq!(plain.best_cost, controlled.best_cost);
        assert_eq!(plain.iterations, controlled.iterations);
        assert_eq!(plain.stop_reason, controlled.stop_reason);
    }

    #[test]
    fn elite_count_at_least_target_with_ties() {
        let mut model = BernoulliModel::uniform(3);
        let cfg = CeConfig::with_sample_size(50);
        let mut rng = StdRng::seed_from_u64(90);
        // Constant objective: every sample ties at γ, so all are elite.
        let out = minimize(&mut model, &cfg, &mut rng, |_| 1.0);
        assert!(out.telemetry.iters[0].elite_count == 50);
    }

    /// The sorted reference implementation `select_elites` replaced.
    fn select_elites_by_sort(costs: &[f64], elite_target: usize) -> EliteSelection {
        let n = costs.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            costs[a]
                .partial_cmp(&costs[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let gamma = costs[order[elite_target - 1]];
        let elites: Vec<usize> = order
            .iter()
            .copied()
            .take_while(|&i| costs[i] <= gamma)
            .collect();
        EliteSelection {
            gamma,
            best: order[0],
            worst: costs[order[n - 1]],
            elites,
        }
    }

    #[test]
    fn select_elites_matches_sorted_reference() {
        // Pseudo-random and adversarially tie-heavy cost vectors.
        let mut rng = StdRng::seed_from_u64(92);
        for case in 0..200 {
            let n: usize = 1 + (case % 37);
            let costs: Vec<f64> = (0..n)
                .map(|_| {
                    use rand::Rng;
                    match rng.random_range(0..4u32) {
                        // Heavy ties: few distinct plateau levels.
                        0 => rng.random_range(0..3u32) as f64,
                        1 => f64::INFINITY,
                        _ => rng.random::<f64>(),
                    }
                })
                .collect();
            for target in [1, n.div_ceil(10).max(1), n] {
                let fast = select_elites(&costs, target);
                let slow = select_elites_by_sort(&costs, target);
                assert_eq!(fast, slow, "n={n} target={target} costs={costs:?}");
            }
        }
    }

    #[test]
    fn select_elites_admits_ties_beyond_target() {
        let costs = [2.0, 1.0, 1.0, 1.0, 3.0];
        let sel = select_elites(&costs, 2);
        assert_eq!(sel.gamma, 1.0);
        assert_eq!(sel.elites, vec![1, 2, 3]);
        assert_eq!(sel.best, 1);
        assert_eq!(sel.worst, 3.0);
    }

    #[test]
    fn select_elites_all_infinite() {
        let costs = [f64::INFINITY; 4];
        let sel = select_elites(&costs, 1);
        assert_eq!(sel.gamma, f64::INFINITY);
        assert_eq!(sel.elites, vec![0, 1, 2, 3]);
        assert_eq!(sel.best, 0);
    }

    #[test]
    fn flat_recovers_hidden_permutation() {
        let target = vec![3usize, 1, 4, 0, 2, 5];
        let cost = |s: &[usize]| s.iter().zip(&target).filter(|(a, b)| a != b).count() as f64;
        let mut model = PermutationModel::uniform(target.len());
        let cfg = CeConfig::with_sample_size(200);
        let mut rng = StdRng::seed_from_u64(82);
        let out = minimize_flat(
            &mut model,
            &cfg,
            &mut rng,
            1,
            cost,
            |_, _| {},
            &mut NullRecorder,
            &|| false,
        );
        assert_eq!(out.best_cost, 0.0);
        assert_eq!(out.best_sample, target);
    }

    #[test]
    fn flat_outcome_is_thread_count_invariant() {
        let target = vec![2usize, 0, 3, 1, 4];
        let run = |threads: usize| {
            let mut model = PermutationModel::uniform(target.len());
            let cfg = CeConfig::with_sample_size(120);
            let mut rng = StdRng::seed_from_u64(93);
            minimize_flat(
                &mut model,
                &cfg,
                &mut rng,
                threads,
                |s: &[usize]| s.iter().zip(&target).filter(|(a, b)| a != b).count() as f64,
                |_, _| {},
                &mut NullRecorder,
                &|| false,
            )
        };
        let one = run(1);
        for threads in [2, 4, 8] {
            let other = run(threads);
            assert_eq!(one.best_sample, other.best_sample, "threads={threads}");
            assert_eq!(one.best_cost, other.best_cost, "threads={threads}");
            assert_eq!(one.iterations, other.iterations, "threads={threads}");
            assert_eq!(one.telemetry, other.telemetry, "threads={threads}");
        }
    }

    #[test]
    fn flat_with_batch_evaluator_matches_per_row_closure() {
        use crate::batch::FlatEvaluator;

        // A chunk-level evaluator computing the same pure cost as the
        // closure must reproduce the per-row pipeline's trajectory
        // exactly, for every thread count.
        struct SumDistance(Vec<usize>);
        impl FlatEvaluator for SumDistance {
            type Scratch = ();
            fn new_scratch(&self) -> Self::Scratch {}
            fn evaluate_rows(&self, rows: &[usize], costs: &mut [f64], _s: &mut Self::Scratch) {
                let width = self.0.len();
                for (row, cost) in rows.chunks_exact(width).zip(costs.iter_mut()) {
                    *cost = row.iter().zip(&self.0).filter(|(a, b)| a != b).count() as f64;
                }
            }
        }

        let target = vec![2usize, 0, 3, 1, 4];
        let cfg = CeConfig::with_sample_size(120);
        let mut model = PermutationModel::uniform(target.len());
        let per_row = minimize_flat(
            &mut model,
            &cfg,
            &mut StdRng::seed_from_u64(93),
            1,
            |s: &[usize]| s.iter().zip(&target).filter(|(a, b)| a != b).count() as f64,
            |_, _| {},
            &mut NullRecorder,
            &|| false,
        );
        for threads in [1, 2, 8] {
            let mut model = PermutationModel::uniform(target.len());
            let batched = minimize_flat_with(
                &mut model,
                &cfg,
                &mut StdRng::seed_from_u64(93),
                threads,
                &SumDistance(target.clone()),
                |_, _| {},
                &mut NullRecorder,
                &|| false,
            );
            assert_eq!(
                per_row.best_sample, batched.best_sample,
                "threads={threads}"
            );
            assert_eq!(per_row.best_cost, batched.best_cost, "threads={threads}");
            assert_eq!(per_row.iterations, batched.iterations, "threads={threads}");
            assert_eq!(per_row.telemetry, batched.telemetry, "threads={threads}");
        }
    }

    #[test]
    fn flat_emits_sample_and_evaluate_spans() {
        use match_telemetry::MemoryRecorder;
        let mut model = PermutationModel::uniform(4);
        let mut cfg = CeConfig::with_sample_size(40);
        cfg.max_iters = 3;
        let mut rng = StdRng::seed_from_u64(94);
        let mut recorder = MemoryRecorder::default();
        minimize_flat(
            &mut model,
            &cfg,
            &mut rng,
            2,
            |s: &[usize]| s[0] as f64,
            |_, _| {},
            &mut recorder,
            &|| false,
        );
        let mut sample_spans = 0;
        let mut eval_spans = 0;
        let mut update_spans = 0;
        for ev in recorder.events() {
            if let Event::Span(s) = ev {
                match s.name.as_ref() {
                    "sample" => sample_spans += 1,
                    "evaluate" => eval_spans += 1,
                    "update" => update_spans += 1,
                    _ => {}
                }
            }
        }
        assert!(sample_spans >= 1);
        assert_eq!(sample_spans, eval_spans);
        assert_eq!(sample_spans, update_spans);
    }
}
