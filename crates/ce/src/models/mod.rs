//! Concrete CE model families.
//!
//! * [`permutation`] — stochastic-matrix model over bijective assignments
//!   sampled by the paper's GenPerm procedure (Figure 4).
//! * [`assignment`] — stochastic-matrix model with independent rows
//!   (duplicates allowed); the "naive way" §4 describes before
//!   introducing GenPerm, retained for the many-to-one generalisation
//!   and as an ablation.
//! * [`bernoulli`] — independent Bernoulli vector, the classic CE model
//!   for max-cut / bipartition benchmark problems.

pub mod assignment;
pub mod bernoulli;
pub mod gaussian;
pub mod permutation;
