//! Independent Gaussian vector model for continuous CE optimisation.
//!
//! §3 notes the CE method extends to "continuous multiextremal
//! optimization problems" (Rubinstein's program). The standard model is
//! a diagonal Gaussian: per-coordinate mean and standard deviation are
//! refit to the elite samples each iteration; the standard deviations
//! play the role the stochastic matrix's entropy plays in the discrete
//! case, shrinking to zero as the sampler collapses onto an optimum.

use crate::model::CeModel;
use rand::rngs::StdRng;
use rand::Rng;

/// CE model over `R^n` with independent Gaussian coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianModel {
    mean: Vec<f64>,
    std: Vec<f64>,
    /// Standard deviations never shrink below this floor during
    /// updates, preventing premature collapse (the continuous analogue
    /// of smoothing; set to `0.0` to disable).
    std_floor: f64,
}

impl GaussianModel {
    /// A model centred at `mean` with per-coordinate `std`.
    pub fn new(mean: Vec<f64>, std: Vec<f64>) -> Self {
        assert_eq!(mean.len(), std.len(), "mean/std length mismatch");
        assert!(std.iter().all(|&s| s > 0.0), "std must be positive");
        GaussianModel {
            mean,
            std,
            std_floor: 0.0,
        }
    }

    /// An isotropic model: every coordinate `N(centre, spread²)`.
    pub fn isotropic(n: usize, centre: f64, spread: f64) -> Self {
        GaussianModel::new(vec![centre; n], vec![spread.max(1e-12); n])
    }

    /// Set the standard-deviation floor.
    pub fn with_std_floor(mut self, floor: f64) -> Self {
        self.std_floor = floor.max(0.0);
        self
    }

    /// Current means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Current standard deviations.
    pub fn std(&self) -> &[f64] {
        &self.std
    }

    /// Dimension.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True for the empty model.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// One standard normal draw (Box–Muller; one value per call keeps
    /// the stream layout simple and seed-stable).
    fn standard_normal(rng: &mut StdRng) -> f64 {
        loop {
            let u1: f64 = rng.random();
            let u2: f64 = rng.random();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

impl CeModel for GaussianModel {
    type Sample = Vec<f64>;

    fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        self.mean
            .iter()
            .zip(&self.std)
            .map(|(&m, &s)| m + s * Self::standard_normal(rng))
            .collect()
    }

    fn update_from_elites(&mut self, elites: &[Vec<f64>], zeta: f64) {
        if elites.is_empty() {
            return;
        }
        let m = elites.len() as f64;
        for i in 0..self.mean.len() {
            let elite_mean = elites.iter().map(|e| e[i]).sum::<f64>() / m;
            let elite_var = elites
                .iter()
                .map(|e| (e[i] - elite_mean).powi(2))
                .sum::<f64>()
                / m;
            let elite_std = elite_var.sqrt();
            self.mean[i] = zeta * elite_mean + (1.0 - zeta) * self.mean[i];
            self.std[i] = (zeta * elite_std + (1.0 - zeta) * self.std[i]).max(self.std_floor);
        }
    }

    fn is_degenerate(&self, tol: f64) -> bool {
        self.std.iter().all(|&s| s <= tol)
    }

    fn mode(&self) -> Vec<f64> {
        self.mean.clone()
    }

    fn entropy(&self) -> f64 {
        // Differential entropy of a diagonal Gaussian, averaged per
        // coordinate: ½ ln(2πe σ²).
        if self.std.is_empty() {
            return 0.0;
        }
        let c = 0.5 * (2.0 * std::f64::consts::PI * std::f64::consts::E).ln();
        self.std
            .iter()
            .map(|&s| c + s.max(1e-300).ln())
            .sum::<f64>()
            / self.std.len() as f64
    }

    fn stability_signature(&self) -> Vec<f64> {
        self.mean.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_follow_configured_moments() {
        let model = GaussianModel::new(vec![3.0, -1.0], vec![0.5, 2.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sums = [0.0f64; 2];
        let mut sq = [0.0f64; 2];
        for _ in 0..n {
            let s = model.sample(&mut rng);
            for i in 0..2 {
                sums[i] += s[i];
                sq[i] += s[i] * s[i];
            }
        }
        for i in 0..2 {
            let mean = sums[i] / n as f64;
            let var = sq[i] / n as f64 - mean * mean;
            assert!((mean - model.mean()[i]).abs() < 0.05, "mean[{i}] = {mean}");
            assert!(
                (var.sqrt() - model.std()[i]).abs() < 0.05,
                "std[{i}] = {}",
                var.sqrt()
            );
        }
    }

    #[test]
    fn update_moves_toward_elites() {
        let mut model = GaussianModel::isotropic(1, 0.0, 1.0);
        let elites = vec![vec![4.0], vec![6.0]];
        model.update_from_elites(&elites, 1.0);
        assert!((model.mean()[0] - 5.0).abs() < 1e-12);
        assert!((model.std()[0] - 1.0).abs() < 1e-12); // elite std = 1
    }

    #[test]
    fn smoothed_update_blends() {
        let mut model = GaussianModel::isotropic(1, 0.0, 2.0);
        model.update_from_elites(&[vec![10.0]], 0.5);
        assert!((model.mean()[0] - 5.0).abs() < 1e-12);
        // Elite std of a single sample is 0 → std halves.
        assert!((model.std()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn std_floor_prevents_collapse() {
        let mut model = GaussianModel::isotropic(1, 0.0, 1.0).with_std_floor(0.1);
        for _ in 0..100 {
            model.update_from_elites(&[vec![1.0]], 1.0);
        }
        assert_eq!(model.std()[0], 0.1);
        assert!(!model.is_degenerate(0.05));
        assert!(model.is_degenerate(0.2));
    }

    #[test]
    fn entropy_decreases_with_std() {
        let wide = GaussianModel::isotropic(3, 0.0, 2.0);
        let narrow = GaussianModel::isotropic(3, 0.0, 0.1);
        assert!(narrow.entropy() < wide.entropy());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_std() {
        GaussianModel::new(vec![0.0], vec![0.0]);
    }
}
